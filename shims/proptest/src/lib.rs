//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this shim implements the
//! subset of proptest the test suite uses: the [`proptest!`] macro with
//! `name(x: Type, y in strategy)` argument lists, `prop_assert!` /
//! `prop_assert_eq!`, integer-range and string-pattern strategies,
//! `prop::collection::vec`, `prop::sample::select`, and
//! [`test_runner::ProptestConfig`]. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — on failure the
//! panic message carries the generating case number and values so a case
//! can be replayed by inspection.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a random stream.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String patterns (a small regex subset: `\PC`, `[...]` classes, and
    /// a `{lo,hi}` repetition suffix) act as strategies, as in proptest.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — sampling from a type's whole value domain.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix of ordinary magnitudes and full-bit-pattern finite values.
            let raw = rng.next_u64();
            let v = f64::from_bits(raw);
            if v.is_finite() {
                v
            } else {
                (raw >> 11) as f64
            }
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Direct draw used by the `proptest!` macro for `name: Type` params.
    pub fn any_value<T: Arbitrary>(rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod test_runner {
    //! Configuration and the deterministic case generator.

    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each `#[test]` body runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream proptest's default.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test random stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so every test has a stable stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod string {
    //! The tiny regex-ish subset used as string strategies.

    use crate::test_runner::TestRng;

    /// Sample a string from a pattern of the form `ATOM{lo,hi}` where
    /// `ATOM` is `\PC` (any printable char) or a `[...]` character class
    /// (literal members plus `a-z`/`0-9` style ranges and `\[`/`\]`
    /// escapes). A bare atom without repetition yields one char.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let (alphabet, rest) = parse_atom(pattern);
        let (lo, hi) = parse_reps(rest);
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..n)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }

    fn parse_atom(pattern: &str) -> (Vec<char>, &str) {
        if let Some(rest) = pattern.strip_prefix("\\PC") {
            // Printable, non-control: ASCII graphic + space is plenty.
            let mut all: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
            all.push('\u{e9}'); // a little non-ASCII spice
            all.push('\u{3bb}');
            (all, rest)
        } else if let Some(body) = pattern.strip_prefix('[') {
            let close = find_class_end(body);
            let (class, rest) = body.split_at(close);
            (expand_class(class), &rest[1..])
        } else {
            panic!("unsupported string pattern: {pattern}");
        }
    }

    fn find_class_end(body: &str) -> usize {
        let bytes = body.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b']' => return i,
                _ => i += 1,
            }
        }
        panic!("unterminated character class");
    }

    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            // Range like `a-z` (a trailing `-` is a literal).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let end = chars[i + 2];
                for v in c as u32..=end as u32 {
                    out.push(char::from_u32(v).expect("ASCII range"));
                }
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    fn parse_reps(rest: &str) -> (usize, usize) {
        if rest.is_empty() {
            return (1, 1);
        }
        let inner = rest
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition suffix: {rest}"));
        let (lo, hi) = inner.split_once(',').expect("{lo,hi} repetition");
        let lo: usize = lo.trim().parse().expect("repetition lower bound");
        let hi: usize = hi.trim().parse().expect("repetition upper bound");
        assert!(lo <= hi, "bad repetition bounds");
        (lo, hi)
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Vec<S::Value>` with a length range.
        pub struct VecStrategy<S> {
            elem: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.hi - self.lo) as u64 + 1;
                let n = self.lo + rng.below(span) as usize;
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// A vector of `lo..hi` (exclusive) elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy {
                elem,
                lo: len.start,
                hi: len.end - 1,
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit value lists.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Choose uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select(options)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property body; failure reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Bind one `proptest!` parameter list entry. `x in strategy` samples the
/// strategy; `x: Type` draws an arbitrary value of the type.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $case:ident;) => {};
    ($rng:ident, $case:ident; $x:ident in $s:expr) => {
        let $x = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $case.push_str(&format!("{} = {:?}; ", stringify!($x), $x));
    };
    ($rng:ident, $case:ident; $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $case.push_str(&format!("{} = {:?}; ", stringify!($x), $x));
        $crate::__proptest_bind!($rng, $case; $($rest)*);
    };
    ($rng:ident, $case:ident; $x:ident : $t:ty) => {
        let $x: $t = $crate::arbitrary::any_value::<$t>(&mut $rng);
        $case.push_str(&format!("{} = {:?}; ", stringify!($x), $x));
    };
    ($rng:ident, $case:ident; $x:ident : $t:ty, $($rest:tt)*) => {
        let $x: $t = $crate::arbitrary::any_value::<$t>(&mut $rng);
        $case.push_str(&format!("{} = {:?}; ", stringify!($x), $x));
        $crate::__proptest_bind!($rng, $case; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $( #[test] fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            #[test]
            #[allow(unused_mut, unused_variables)]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case_no in 0..__config.cases {
                    let mut __case = String::new();
                    $crate::__proptest_bind!(__rng, __case; $($args)*);
                    let __guard = $crate::CaseReporter {
                        name: stringify!($name),
                        case_no: __case_no,
                        values: &__case,
                    };
                    $body
                    ::core::mem::forget(__guard);
                }
            }
        )*
    };
}

/// The `proptest!` macro: each contained `#[test] fn` runs its body for
/// many generated cases. Supports an optional leading
/// `#![proptest_config(...)]` attribute.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Prints the generating case when a property body panics.
#[doc(hidden)]
pub struct CaseReporter<'a> {
    /// Test name.
    pub name: &'a str,
    /// Zero-based case index.
    pub case_no: u32,
    /// Rendered parameter values.
    pub values: &'a str,
}

impl Drop for CaseReporter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest case failed: {} case #{}: {}",
                self.name, self.case_no, self.values
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_and_in_params_mix(x: u64, y in 1u64..10, flag in any::<bool>()) {
            prop_assert!((1..10).contains(&y));
            let _ = (x, flag);
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(any::<u64>(), 1..8),
                          s in prop::sample::select(vec![1u32, 2, 4, 8])) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!([1, 2, 4, 8].contains(&s));
        }

        #[test]
        fn string_patterns(a in "\\PC{0,40}", b in "[a-z0-9]{1,5}") {
            prop_assert!(a.chars().count() <= 40);
            prop_assert!(!b.is_empty() && b.len() <= 5);
            prop_assert!(b.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(13))]
        #[test]
        fn config_is_respected(_x: u64) {
            // Runs 13 times; nothing to assert beyond not crashing.
        }
    }
}
