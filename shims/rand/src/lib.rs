//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this shim provides
//! the (small) slice of the rand 0.9 API the workload generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms and runs, which is all the
//! workloads require (inputs must be reproducible; they need not match
//! upstream rand's byte streams).

/// Low-level entropy source: a full-period 64-bit generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// Panics if the range is empty, mirroring upstream rand.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening multiply maps a raw 64-bit draw onto `[0, span)` without
/// modulo bias worth caring about for workload generation.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// User-facing sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Sample a value uniformly from its full domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3i64..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_floats_cover_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "draws spread across the unit interval");
    }
}
