//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the `swpf-bench` benches use — groups,
//! throughput annotation, `bench_function`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock harness: a warm-up
//! phase sizes the batch, then a fixed number of timed batches report the
//! minimum, mean, and (with a throughput annotation) elements/second.
//! No statistics, plots, or saved baselines; results print to stdout and
//! can optionally be appended as JSON lines to the file named by the
//! `CRITERION_JSON` environment variable for scripted consumption.

use std::time::{Duration, Instant};

/// Work-per-iteration annotation, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Harness entry point; create via `Criterion::default()`.
#[derive(Debug)]
pub struct Criterion {
    /// Target wall-clock time for the measurement phase of one benchmark.
    measure_for: Duration,
    /// Target wall-clock time for warm-up.
    warm_up_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(900),
            warm_up_for: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            c: self,
            group: name.to_string(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measure one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_for: self.c.warm_up_for,
            measure_for: self.c.measure_for,
            result: None,
        };
        f(&mut b);
        let Some(m) = b.result else {
            println!("  {id}: no measurement (Bencher::iter never called)");
            return;
        };
        let per_iter = m.best_ns;
        let mut line = format!(
            "  {id}: {} /iter (mean {}, {} iters)",
            fmt_ns(per_iter),
            fmt_ns(m.mean_ns),
            m.iters
        );
        let mut rate = None;
        if let Some(t) = self.throughput {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per_iter > 0.0 {
                let per_sec = n as f64 * 1e9 / per_iter;
                rate = Some(per_sec);
                line.push_str(&format!(" — {} {unit}/s", fmt_count(per_sec)));
            }
        }
        println!("{line}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let record = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"mean_ns_per_iter\":{:.1},\"rate_per_s\":{}}}\n",
                self.group,
                id,
                per_iter,
                m.mean_ns,
                rate.map_or("null".to_string(), |r| format!("{r:.0}")),
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
        }
    }

    /// End the group (printing is immediate; this is for API parity).
    pub fn finish(self) {}
}

struct Measurement {
    best_ns: f64,
    mean_ns: f64,
    iters: u64,
}

/// Runs and times the measured closure.
pub struct Bencher {
    warm_up_for: Duration,
    measure_for: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Time `f`, which is executed many times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: also discovers the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_for || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size batches so one batch is ~1/8 of the measurement budget.
        let batch = ((self.measure_for.as_secs_f64() / 8.0 / per_iter.max(1e-9)) as u64).max(1);
        let deadline = Instant::now() + self.measure_for;
        let mut best = f64::INFINITY;
        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        let mut batches = 0u32;
        while batches < 3 || (Instant::now() < deadline && batches < 1000) {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64;
            best = best.min(ns / batch as f64);
            total_ns += ns;
            total_iters += batch;
            batches += 1;
        }
        self.result = Some(Measurement {
            best_ns: best,
            mean_ns: total_ns / total_iters as f64,
            iters: total_iters,
        });
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_count(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.3}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.3}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.3}K", n / 1e3)
    } else {
        format!("{n:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(20),
            warm_up_for: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
