//! Property tests for the recorder and exporter: arbitrary span
//! programs executed through the real API must come back balanced and
//! in nesting order per thread, counters must sum across threads, and
//! the chrome export must carry one `B`/`E` pair per completed span.
//!
//! (JSON well-formedness of the export is property-tested from
//! `swpf-bench`, which owns the workspace's JSON parser — this crate
//! is dependency-free by design.)

use proptest::prelude::*;
use std::sync::Mutex;
use swpf_obs as obs;

/// The recorder is process-global; every test body serialises here and
/// resets around itself.
static GUARD: Mutex<()> = Mutex::new(());

/// Interpret one op stream through the real API on the calling thread,
/// returning the expected (name, is_begin) event skeleton.
fn run_ops(label: u64, ops: &[u8]) -> Vec<(String, bool)> {
    let mut guards = Vec::new();
    let mut expected = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op % 3 {
            0 => {
                let name = format!("t{label}.s{i}");
                guards.push(obs::span(name.clone()));
                expected.push((name, true));
            }
            1 => {
                if guards.pop().is_some() {
                    expected.push((String::new(), false));
                }
            }
            _ => obs::count(format!("t{label}.ctr"), u64::from(*op) + 1),
        }
    }
    while guards.pop().is_some() {
        expected.push((String::new(), false));
    }
    expected
}

fn skeleton(track: &obs::ThreadTrack) -> Vec<(String, bool)> {
    track
        .events
        .iter()
        .map(|ev| match ev {
            obs::TrackEvent::Begin { name, .. } => (name.clone(), true),
            obs::TrackEvent::End { .. } => (String::new(), false),
        })
        .collect()
}

proptest! {
    // Concurrent span programs: per-thread streams stay balanced, in
    // program order, and never interleave records across threads.
    #[test]
    fn concurrent_span_programs_export_balanced_ordered_tracks(
        ops in prop::collection::vec(0u8..=255, 0..120),
    ) {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        obs::reset();
        obs::enable();

        let mut streams: Vec<Vec<u8>> = Vec::new();
        for t in 0..3usize {
            let mut s = ops.clone();
            s.rotate_left(t.min(ops.len()));
            streams.push(s);
        }
        let mut expected: Vec<Vec<(String, bool)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = streams
                .iter()
                .enumerate()
                .map(|(t, s)| {
                    scope.spawn(move || {
                        obs::name_thread(&format!("prop-{t}"));
                        run_ops(t as u64, s)
                    })
                })
                .collect();
            for h in handles {
                expected.push(h.join().expect("worker panicked"));
            }
        });
        obs::disable();
        let profile = obs::snapshot();

        let mut expected_counters = std::collections::BTreeMap::new();
        for (t, s) in streams.iter().enumerate() {
            for op in s.iter().filter(|op| *op % 3 == 2) {
                *expected_counters
                    .entry(format!("t{t}.ctr"))
                    .or_insert(0u64) += u64::from(*op) + 1;
            }
        }
        prop_assert_eq!(&profile.counters, &expected_counters);

        for (t, want) in expected.iter().enumerate() {
            let name = format!("prop-{t}");
            let track = profile
                .threads
                .iter()
                .find(|tr| tr.name == name);
            if want.is_empty() {
                // A thread that recorded nothing may be absent.
                if let Some(track) = track {
                    prop_assert!(track.events.is_empty());
                }
                continue;
            }
            let track = track.expect("recorded thread has a track");
            prop_assert_eq!(track.dropped, 0);
            prop_assert_eq!(&skeleton(track), want);
            let mut depth = 0i64;
            for (_, is_begin) in skeleton(track) {
                depth += if is_begin { 1 } else { -1 };
                prop_assert!(depth >= 0, "an end never precedes its begin");
            }
            prop_assert_eq!(depth, 0, "every begin has an end");
        }
    }

    // The chrome export emits exactly one B and one E per span of each
    // thread, and timestamps are non-decreasing per track.
    #[test]
    fn chrome_export_counts_match_recorded_spans(n_spans in 0usize..40) {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        obs::reset();
        obs::enable();
        for i in 0..n_spans {
            let _outer = obs::span(format!("outer{i}"));
            let _inner = obs::span("inner");
        }
        obs::disable();
        let profile = obs::snapshot();
        let text = profile.to_chrome_json();
        let begins = text.matches("\"ph\": \"B\"").count();
        let ends = text.matches("\"ph\": \"E\"").count();
        prop_assert_eq!(begins, 2 * n_spans);
        prop_assert_eq!(ends, 2 * n_spans);
        for track in &profile.threads {
            let mut last = 0u64;
            for ev in &track.events {
                let ns = match ev {
                    obs::TrackEvent::Begin { ns, .. } | obs::TrackEvent::End { ns } => *ns,
                };
                prop_assert!(ns >= last, "timestamps are monotone per track");
                last = ns;
            }
        }
    }

    // Summary self-time never exceeds total, and total of a parent
    // covers its children.
    #[test]
    fn summary_self_time_is_consistent(depth in 1usize..12) {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        obs::reset();
        obs::enable();
        {
            let mut guards = Vec::new();
            for d in 0..depth {
                guards.push(obs::span(format!("level{d}")));
            }
        }
        obs::disable();
        let summary = obs::snapshot().summary();
        prop_assert_eq!(summary.rows.len(), depth);
        for (i, (name, row)) in summary.rows.iter().enumerate() {
            prop_assert!(row.self_ns <= row.total_ns, "{}: self > total", name);
            if i > 0 {
                prop_assert!(
                    summary.rows[i - 1].1.total_ns >= row.total_ns,
                    "rows sort by descending total"
                );
            }
        }
    }
}
