//! # swpf-obs — hierarchical spans, counters, and chrome-trace export
//!
//! A thread-aware instrumentation layer for the whole workspace: RAII
//! [`span`] guards write begin/end events into per-thread bounded
//! buffers, [`count`] bumps monotonic counters, and [`record`] feeds
//! power-of-two histograms. A [`snapshot`] merges every thread's data
//! into a [`Profile`], which exports either as Chrome trace-event JSON
//! ([`Profile::to_chrome_json`], loadable in `chrome://tracing` or
//! Perfetto with one track per thread) or as a human-readable summary
//! table ([`Profile::summary`], self/total time per phase plus counter
//! values).
//!
//! ## Disabled-path cost contract
//!
//! Profiling is off by default. While off, every public recording entry
//! point ([`span`], [`count`], [`record`]) performs exactly one relaxed
//! atomic load and returns — no thread-local access, no lock, no
//! allocation, no timestamp. Dropping the no-op guard a disabled
//! [`span`] returns is a branch on a plain bool. The `bench_gate`
//! profiling gate holds the simulator hot path to this contract.
//!
//! Enabling ([`enable`]) is process-global; the experiment drivers flip
//! it at startup so a whole run is captured, and `SWPF_PROFILE=<path>`
//! (or `--profile <path>`) additionally writes the chrome-trace file at
//! exit.
//!
//! ## Span model
//!
//! Spans strictly nest per thread: the guard records `End` on the
//! thread that opened it (guards are `!Send`), and a snapshot closes
//! any still-open span at capture time so exported streams are always
//! balanced. Each thread's buffer is bounded ([`EVENT_CAP`] begins);
//! once full, *new* spans are dropped whole — begin and matching end
//! together, counted in [`ThreadTrack::dropped`] — so the records that
//! were kept never interleave or lose their nesting.
//!
//! This crate deliberately depends on nothing but `std`, so every other
//! crate in the workspace (including `swpf-ir` at the bottom of the
//! stack) can use it.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Span, counter, and histogram names: `&'static str` in the common
/// case, owned when built dynamically (`pass:{name}`).
pub type Name = Cow<'static, str>;

/// Maximum recorded span begins per thread before new spans are
/// dropped (whole — see the crate docs on balance).
pub const EVENT_CAP: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Arc<ThreadSlot>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Is profiling globally enabled? One relaxed atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on process-wide.
pub fn enable() {
    // Anchor the clock before the first event so timestamps are small.
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn recording off process-wide. Open spans still record their end
/// events (balance outlives the flag).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Nanoseconds since the process-wide clock anchor (first [`enable`] or
/// first call of this function).
#[must_use]
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---- recording ----------------------------------------------------------

#[derive(Debug, Clone)]
enum RawEv {
    Begin { name: Name, ns: u64 },
    End { ns: u64 },
}

#[derive(Debug, Default)]
struct SlotState {
    events: Vec<RawEv>,
    /// Spans dropped whole because the buffer was full.
    dropped: u64,
    /// Depth of currently-open dropped spans; their ends are skipped
    /// so the kept records stay balanced.
    suppressed: u32,
    counters: BTreeMap<Name, u64>,
    hists: BTreeMap<Name, Hist>,
}

#[derive(Debug)]
struct ThreadSlot {
    tid: u64,
    name: Mutex<String>,
    state: Mutex<SlotState>,
}

thread_local! {
    static SLOT: Arc<ThreadSlot> = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_string);
        let slot = Arc::new(ThreadSlot {
            tid,
            name: Mutex::new(name),
            state: Mutex::new(SlotState::default()),
        });
        REGISTRY.lock().expect("obs registry poisoned").push(Arc::clone(&slot));
        slot
    };
}

/// Name the calling thread's track in exports (defaults to the std
/// thread name, or `thread-N`).
pub fn name_thread(name: &str) {
    SLOT.with(|s| {
        *s.name.lock().expect("obs name poisoned") = name.to_string();
    });
}

/// An RAII span: records a begin event now and the matching end event
/// when dropped, on the same thread (`!Send`).
#[must_use = "a span measures the scope that holds its guard"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let ns = now_ns();
        SLOT.with(|s| {
            let mut st = s.state.lock().expect("obs state poisoned");
            if st.suppressed > 0 {
                st.suppressed -= 1;
            } else {
                st.events.push(RawEv::End { ns });
            }
        });
    }
}

/// Open a hierarchical span named `name`. No-op (and near-free) while
/// profiling is disabled.
#[inline]
pub fn span(name: impl Into<Name>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: false,
            _not_send: PhantomData,
        };
    }
    span_slow(name.into())
}

#[cold]
fn span_slow(name: Name) -> SpanGuard {
    let ns = now_ns();
    SLOT.with(|s| {
        let mut st = s.state.lock().expect("obs state poisoned");
        // A span is dropped whole when the buffer is full — or when an
        // ancestor was dropped, so recorded nesting stays faithful.
        if st.suppressed > 0 || st.events.len() >= EVENT_CAP {
            st.dropped += 1;
            st.suppressed += 1;
        } else {
            st.events.push(RawEv::Begin { name, ns });
        }
    });
    SpanGuard {
        active: true,
        _not_send: PhantomData,
    }
}

/// Add `delta` to the monotonic counter `name` on this thread
/// (summed across threads at export). No-op while disabled.
#[inline]
pub fn count(name: impl Into<Name>, delta: u64) {
    if !enabled() {
        return;
    }
    count_slow(name.into(), delta);
}

#[cold]
fn count_slow(name: Name, delta: u64) {
    SLOT.with(|s| {
        let mut st = s.state.lock().expect("obs state poisoned");
        *st.counters.entry(name).or_insert(0) += delta;
    });
}

/// Record `value` into the power-of-two histogram `name` (merged
/// across threads at export). No-op while disabled.
#[inline]
pub fn record(name: impl Into<Name>, value: u64) {
    if !enabled() {
        return;
    }
    record_slow(name.into(), value);
}

#[cold]
fn record_slow(name: Name, value: u64) {
    SLOT.with(|s| {
        let mut st = s.state.lock().expect("obs state poisoned");
        st.hists.entry(name).or_default().add(value);
    });
}

/// Drop all recorded events, counters, and histograms on every thread.
/// Call only while no spans are open (e.g. at driver startup or between
/// tests); open guards from before a reset would otherwise record
/// orphan ends, which snapshots discard.
pub fn reset() {
    let registry = REGISTRY.lock().expect("obs registry poisoned");
    for slot in registry.iter() {
        let mut st = slot.state.lock().expect("obs state poisoned");
        *st = SlotState::default();
    }
}

// ---- snapshot model -----------------------------------------------------

/// A power-of-two histogram: bucket `k` counts values with bit-width
/// `k` (bucket 0 holds zeros, bucket 64 the top half of `u64`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bit-width counts.
    pub buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Hist {
    /// Record one value.
    pub fn add(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[(64 - value.leading_zeros()) as usize] += 1;
    }

    /// Fold another histogram in (cross-thread merge).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Mean of the recorded values, 0 on an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One begin/end event on a thread track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackEvent {
    /// A span opened.
    Begin {
        /// Span name.
        name: String,
        /// Nanoseconds since the clock anchor.
        ns: u64,
    },
    /// The innermost open span closed.
    End {
        /// Nanoseconds since the clock anchor.
        ns: u64,
    },
}

/// One thread's span stream, balanced and strictly nested.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrack {
    /// Stable per-process thread id (registration order).
    pub tid: u64,
    /// Display name.
    pub name: String,
    /// Balanced begin/end events in timestamp order.
    pub events: Vec<TrackEvent>,
    /// Spans dropped whole because the buffer was full.
    pub dropped: u64,
}

/// A merged capture of every thread's spans, counters, and histograms.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Capture timestamp (ns since the clock anchor); open spans are
    /// closed at this instant.
    pub captured_ns: u64,
    /// Per-thread span tracks, sorted by `tid`.
    pub threads: Vec<ThreadTrack>,
    /// Counters summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// Histograms merged across threads.
    pub histograms: BTreeMap<String, Hist>,
}

/// Capture everything recorded so far into a [`Profile`]. Spans still
/// open are closed at the capture timestamp (the live guard will later
/// record its real end for any later snapshot).
#[must_use]
pub fn snapshot() -> Profile {
    let captured_ns = now_ns();
    let mut threads = Vec::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Hist> = BTreeMap::new();
    let registry = REGISTRY.lock().expect("obs registry poisoned");
    for slot in registry.iter() {
        let name = slot.name.lock().expect("obs name poisoned").clone();
        let st = slot.state.lock().expect("obs state poisoned");
        let mut events = Vec::with_capacity(st.events.len());
        let mut depth = 0u64;
        for ev in &st.events {
            match ev {
                RawEv::Begin { name, ns } => {
                    depth += 1;
                    events.push(TrackEvent::Begin {
                        name: name.to_string(),
                        ns: *ns,
                    });
                }
                RawEv::End { ns } => {
                    // Orphan ends (reset raced an open guard) are
                    // dropped so the track stays balanced.
                    if depth > 0 {
                        depth -= 1;
                        events.push(TrackEvent::End { ns: *ns });
                    }
                }
            }
        }
        for _ in 0..depth {
            events.push(TrackEvent::End { ns: captured_ns });
        }
        for (k, v) in &st.counters {
            *counters.entry(k.to_string()).or_insert(0) += v;
        }
        for (k, h) in &st.hists {
            histograms.entry(k.to_string()).or_default().merge(h);
        }
        threads.push(ThreadTrack {
            tid: slot.tid,
            name,
            events,
            dropped: st.dropped,
        });
    }
    drop(registry);
    threads.sort_by_key(|t| t.tid);
    threads.retain(|t| !t.events.is_empty() || t.dropped > 0);
    Profile {
        captured_ns,
        threads,
        counters,
        histograms,
    }
}

// ---- chrome trace-event export ------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nanoseconds → the microsecond `ts` field, with sub-µs precision.
fn push_ts_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

impl Profile {
    /// Serialise as Chrome trace-event JSON (the "JSON array format"
    /// wrapped in an object), loadable in `chrome://tracing` and
    /// Perfetto: one `tid` track per recorded thread (named by `M`
    /// thread-name metadata events), `B`/`E` pairs per span, and one
    /// `C` counter sample per counter at the capture timestamp.
    ///
    /// The chrome format has no histogram event, so each non-empty
    /// histogram is flattened into a reserved counter series —
    /// `hist:{name}:count`, `:sum`, `:min`, `:max`, and `:b{i}` for
    /// every non-zero bucket — which viewers chart like any counter
    /// and `swpf-bench`'s profile reader reassembles into a [`Hist`].
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"traceEvents\": [");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n  ");
        };
        for t in &self.threads {
            sep(&mut out);
            out.push_str("{\"ph\": \"M\", \"pid\": 1, \"tid\": ");
            let _ = write!(out, "{}", t.tid);
            out.push_str(", \"name\": \"thread_name\", \"args\": {\"name\": ");
            push_json_str(&mut out, &t.name);
            out.push_str("}}");
            for ev in &t.events {
                sep(&mut out);
                match ev {
                    TrackEvent::Begin { name, ns } => {
                        out.push_str("{\"ph\": \"B\", \"pid\": 1, \"tid\": ");
                        let _ = write!(out, "{}", t.tid);
                        out.push_str(", \"ts\": ");
                        push_ts_us(&mut out, *ns);
                        out.push_str(", \"name\": ");
                        push_json_str(&mut out, name);
                        out.push('}');
                    }
                    TrackEvent::End { ns } => {
                        out.push_str("{\"ph\": \"E\", \"pid\": 1, \"tid\": ");
                        let _ = write!(out, "{}", t.tid);
                        out.push_str(", \"ts\": ");
                        push_ts_us(&mut out, *ns);
                        out.push('}');
                    }
                }
            }
        }
        let counter = |out: &mut String, first: &mut bool, name: &str, value: u64| {
            if *first {
                *first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n  {\"ph\": \"C\", \"pid\": 1, \"tid\": 0, \"ts\": ");
            push_ts_us(out, self.captured_ns);
            out.push_str(", \"name\": ");
            push_json_str(out, name);
            out.push_str(", \"args\": {\"value\": ");
            let _ = write!(out, "{value}");
            out.push_str("}}");
        };
        for (name, value) in &self.counters {
            counter(&mut out, &mut first, name, *value);
        }
        for (name, h) in &self.histograms {
            if h.count == 0 {
                continue;
            }
            counter(&mut out, &mut first, &format!("hist:{name}:count"), h.count);
            counter(&mut out, &mut first, &format!("hist:{name}:sum"), h.sum);
            counter(&mut out, &mut first, &format!("hist:{name}:min"), h.min);
            counter(&mut out, &mut first, &format!("hist:{name}:max"), h.max);
            for (i, b) in h.buckets.iter().enumerate() {
                if *b > 0 {
                    counter(&mut out, &mut first, &format!("hist:{name}:b{i}"), *b);
                }
            }
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        out
    }

    /// Aggregate spans into per-phase rows and render alongside the
    /// counter/histogram catalogue.
    #[must_use]
    pub fn summary(&self) -> Summary {
        let mut rows: BTreeMap<String, SummaryRow> = BTreeMap::new();
        let mut dropped = 0u64;
        for t in &self.threads {
            dropped += t.dropped;
            // (name, begin_ns, child_ns) per open frame.
            let mut stack: Vec<(&str, u64, u64)> = Vec::new();
            for ev in &t.events {
                match ev {
                    TrackEvent::Begin { name, ns } => stack.push((name, *ns, 0)),
                    TrackEvent::End { ns } => {
                        let (name, begin, child) = stack.pop().expect("tracks are balanced");
                        let total = ns.saturating_sub(begin);
                        let row = rows.entry(name.to_string()).or_default();
                        row.count += 1;
                        row.total_ns += total;
                        row.self_ns += total.saturating_sub(child);
                        if let Some(parent) = stack.last_mut() {
                            parent.2 += total;
                        }
                    }
                }
            }
        }
        let mut rows: Vec<(String, SummaryRow)> = rows.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        Summary {
            rows,
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
            dropped,
        }
    }
}

/// Aggregated wall time for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryRow {
    /// Number of completed spans.
    pub count: u64,
    /// Wall time including children.
    pub total_ns: u64,
    /// Wall time excluding child spans.
    pub self_ns: u64,
}

/// A rendered-table-ready aggregation of a [`Profile`].
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Per-phase rows sorted by descending total time.
    pub rows: Vec<(String, SummaryRow)>,
    /// Counters summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// Histograms merged across threads.
    pub histograms: BTreeMap<String, Hist>,
    /// Spans dropped to buffer caps, summed across threads.
    pub dropped: u64,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Summary {
    /// Render the human-readable table (`prof_report`'s output).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once("phase".len()))
            .max()
            .unwrap_or(5)
            .max(5);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>12}  {:>12}",
            "phase", "count", "total", "self"
        );
        let _ = writeln!(out, "{}", "-".repeat(name_w + 38));
        for (name, row) in &self.rows {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>8}  {:>12}  {:>12}",
                name,
                row.count,
                fmt_ns(row.total_ns),
                fmt_ns(row.self_ns)
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            let cw = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<cw$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: count {} min {} mean {:.1} max {}",
                    h.count,
                    if h.count == 0 { 0 } else { h.min },
                    h.mean(),
                    h.max
                );
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "\n({} spans dropped to buffer caps)", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global recorder is process-wide state, so the unit tests
    /// serialise on one lock and reset around each body.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        enable();
        g
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = exclusive();
        disable();
        {
            let _s = span("ghost");
            count("ghost.counter", 1);
            record("ghost.hist", 7);
        }
        let p = snapshot();
        assert!(p.counters.is_empty());
        assert!(p.histograms.is_empty());
        assert!(p.threads.iter().all(|t| t.events.is_empty()));
    }

    #[test]
    fn spans_nest_and_aggregate_self_time() {
        let _g = exclusive();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        disable();
        let p = snapshot();
        let s = p.summary();
        let outer = s.rows.iter().find(|(n, _)| n == "outer").unwrap().1;
        let inner = s.rows.iter().find(|(n, _)| n == "inner").unwrap().1;
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    }

    #[test]
    fn open_spans_are_closed_at_capture_time() {
        let _g = exclusive();
        let held = span("held");
        let p = snapshot();
        drop(held);
        disable();
        let track = p
            .threads
            .iter()
            .find(|t| {
                t.events
                    .iter()
                    .any(|e| matches!(e, TrackEvent::Begin { name, .. } if name == "held"))
            })
            .expect("the open span is visible");
        let mut depth = 0i64;
        for ev in &track.events {
            match ev {
                TrackEvent::Begin { .. } => depth += 1,
                TrackEvent::End { .. } => depth -= 1,
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "snapshot closes open spans");
    }

    #[test]
    fn counters_and_histograms_merge_across_threads() {
        let _g = exclusive();
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                scope.spawn(move || {
                    count("merge.hits", i + 1);
                    record("merge.sizes", 1 << i);
                });
            }
        });
        disable();
        let p = snapshot();
        assert_eq!(p.counters.get("merge.hits"), Some(&(1 + 2 + 3 + 4)));
        let h = p.histograms.get("merge.sizes").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1 + 2 + 4 + 8);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 8);
    }

    #[test]
    fn hist_buckets_by_bit_width() {
        let mut h = Hist::default();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(u64::MAX);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[64], 1);
    }

    #[test]
    fn chrome_export_contains_tracks_and_counters() {
        let _g = exclusive();
        name_thread("unit-test");
        {
            let _s = span("phase.a");
        }
        count("c.x", 3);
        disable();
        let text = snapshot().to_chrome_json();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"unit-test\""));
        assert!(text.contains("\"phase.a\""));
        assert!(text.contains("\"c.x\""));
        assert!(text.contains("\"ph\": \"B\""));
        assert!(text.contains("\"ph\": \"E\""));
        assert!(text.contains("\"ph\": \"C\""));
    }

    #[test]
    fn buffer_cap_drops_whole_spans_and_stays_balanced() {
        let _g = exclusive();
        // A private check of the suppression logic via the public API
        // would need EVENT_CAP spans; exercise the state machine
        // directly instead.
        let mut st = SlotState::default();
        st.events.extend((0..4).map(|_| RawEv::Begin {
            name: Name::from("x"),
            ns: 0,
        }));
        st.events.extend((0..4).map(|_| RawEv::End { ns: 1 }));
        st.suppressed = 2;
        st.dropped = 2;
        // Ends while suppressed decrement instead of recording.
        for _ in 0..2 {
            if st.suppressed > 0 {
                st.suppressed -= 1;
            } else {
                st.events.push(RawEv::End { ns: 2 });
            }
        }
        assert_eq!(st.suppressed, 0);
        assert_eq!(st.events.len(), 8);
    }

    #[test]
    fn summary_renders_a_table() {
        let _g = exclusive();
        {
            let _s = span("render.phase");
        }
        count("render.counter", 2);
        record("render.hist", 5);
        disable();
        let text = snapshot().summary().render();
        assert!(text.contains("phase"));
        assert!(text.contains("render.phase"));
        assert!(text.contains("render.counter"));
        assert!(text.contains("render.hist"));
    }
}
