//! Behavioural tests for the prefetch-generation pass: filters, code
//! shape, semantic preservation, and fault avoidance near loop bounds.

use swpf_core::{icc_like, run_on_module, PassConfig, SkipReason};
use swpf_ir::interp::{CountingObserver, Interp, NullObserver, RtVal};
use swpf_ir::prelude::*;
use swpf_ir::verifier::verify_module;

/// Build the canonical indirect kernel:
/// `for (i = 0; i < n; i++) sum += a[b[i]];` with array args.
fn indirect_sum_module() -> (Module, FuncId) {
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        let sum2 = b.add(sum, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(sum));
    }
    verify_module(&m).unwrap();
    (m, fid)
}

/// Run `kernel(a, b, n)` where `b` is a permutation-ish index array.
fn run_indirect(m: &Module, fid: FuncId, n: u64) -> (Option<RtVal>, CountingObserver) {
    let mut interp = Interp::new();
    let a = interp.alloc_array(n, 8).unwrap();
    let b = interp.alloc_array(n, 8).unwrap();
    for i in 0..n {
        interp.mem().write(a + i * 8, 8, i * 3).unwrap();
        interp.mem().write(b + i * 8, 8, (i * 7 + 3) % n).unwrap();
    }
    let mut counts = CountingObserver::default();
    let r = interp
        .run(
            m,
            fid,
            &[
                RtVal::Int(a as i64),
                RtVal::Int(b as i64),
                RtVal::Int(n as i64),
            ],
            &mut counts,
        )
        .unwrap();
    (r, counts)
}

#[test]
fn pass_preserves_semantics_and_adds_prefetches() {
    let (mut m, fid) = indirect_sum_module();
    let (before, counts_before) = run_indirect(&m, fid, 256);
    assert_eq!(counts_before.prefetches, 0);

    let report = run_on_module(&mut m, &PassConfig::default());
    verify_module(&m).expect("pass output verifies");
    assert_eq!(report.functions[0].prefetches.len(), 1);
    let rec = &report.functions[0].prefetches[0];
    assert_eq!(rec.chain_len, 2);
    assert_eq!(rec.offsets, vec![64, 32], "c and c/2 per eq. (1)");

    let (after, counts_after) = run_indirect(&m, fid, 256);
    assert_eq!(before, after, "prefetching must not change results");
    // One stride + one indirect prefetch per iteration.
    assert_eq!(counts_after.prefetches, 2 * 256);
    // The indirect prefetch adds one real intermediate load per iteration.
    assert_eq!(counts_after.loads, counts_before.loads + 256);
}

#[test]
fn no_faults_near_loop_end_with_clamping() {
    // With n = 8 and look-ahead 64, every prefetch overshoots: the clamp
    // must keep all intermediate loads in bounds (§4.2).
    let (mut m, fid) = indirect_sum_module();
    run_on_module(&mut m, &PassConfig::default());
    let (r, _) = run_indirect(&m, fid, 8);
    assert!(r.is_some(), "execution completed without memory faults");
}

#[test]
fn stride_companion_can_be_disabled() {
    let (mut m, fid) = indirect_sum_module();
    let cfg = PassConfig {
        stride_companion: false,
        ..PassConfig::default()
    };
    let report = run_on_module(&mut m, &cfg);
    assert_eq!(report.functions[0].prefetches[0].offsets, vec![32]);
    let (_, counts) = run_indirect(&m, fid, 64);
    assert_eq!(counts.prefetches, 64, "only the indirect prefetch remains");
}

#[test]
fn look_ahead_constant_scales_offsets() {
    let (mut m, _) = indirect_sum_module();
    let report = run_on_module(&mut m, &PassConfig::with_look_ahead(16));
    assert_eq!(report.functions[0].prefetches[0].offsets, vec![16, 8]);
}

#[test]
fn pure_stride_load_is_left_to_hardware() {
    // for (i) sum += a[i]; — no indirect access, no prefetches.
    let mut m = Module::new("t");
    let fid = m.declare_function("stride", &[Type::Ptr, Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, n) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let g = b.gep(a, i, 8);
        let v = b.load(Type::I64, g);
        let sum2 = b.add(sum, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(sum));
    }
    let report = run_on_module(&mut m, &PassConfig::default());
    assert!(report.functions[0].prefetches.is_empty());
    assert!(report.functions[0]
        .skipped
        .iter()
        .any(|s| s.reason == SkipReason::StrideOnly));
}

/// Kernel with a call in the address chain: `a[f(b[i])]`.
fn call_in_chain_module(purity: swpf_ir::function::Purity) -> Module {
    let mut m = Module::new("t");
    let hash = m.declare_function_with_purity("hash", &[Type::I64], Type::I64, purity);
    {
        let mut b = FunctionBuilder::new(m.function_mut(hash));
        let x = b.arg(0);
        let k = b.const_i64(0x9E37);
        let h = b.mul(x, k);
        let s = b.const_i64(4);
        let h2 = b.lshr(h, s);
        let h3 = b.xor(h, h2);
        let mask = b.const_i64(0xFF);
        let h4 = b.and(h3, mask);
        b.ret(Some(h4));
    }
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let hashed = b.call(hash, &[idx], Some(Type::I64));
        let ga = b.gep(a, hashed, 8);
        let v = b.load(Type::I64, ga);
        let sum2 = b.add(sum, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(sum));
    }
    verify_module(&m).unwrap();
    m
}

#[test]
fn calls_in_chain_are_rejected_by_default() {
    let mut m = call_in_chain_module(swpf_ir::function::Purity::Pure);
    let report = run_on_module(&mut m, &PassConfig::default());
    let kernel = &report.functions[1];
    assert!(kernel.prefetches.is_empty());
    assert!(kernel
        .skipped
        .iter()
        .any(|s| s.reason == SkipReason::ContainsCall));
}

#[test]
fn pure_calls_allowed_with_extension_flag() {
    let mut m = call_in_chain_module(swpf_ir::function::Purity::Pure);
    let cfg = PassConfig {
        allow_pure_calls: true,
        ..PassConfig::default()
    };
    let report = run_on_module(&mut m, &cfg);
    let kernel = &report.functions[1];
    assert_eq!(
        kernel.prefetches.len(),
        1,
        "pure-call extension admits the chain: {kernel:?}"
    );
    verify_module(&m).unwrap();
}

#[test]
fn store_to_index_array_rejects_candidate() {
    // for (i) { a[b[i]] += 1; b[i] = 0; } — b is both read for address
    // generation and stored to: look-ahead would read clobbered data.
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        let v2 = b.add(v, one);
        b.store(v2, ga);
        b.store(zero, gb); // clobbers the index array
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    verify_module(&m).unwrap();
    let report = run_on_module(&mut m, &PassConfig::default());
    assert!(report.functions[0].prefetches.is_empty());
    assert!(report.functions[0]
        .skipped
        .iter()
        .any(|s| s.reason == SkipReason::MayAliasStore));
}

#[test]
fn store_to_target_array_is_fine() {
    // IS-like: a[b[i]]++ — the store hits the *target* array (whose clone
    // is a prefetch), not the index array; prefetching must proceed.
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        let v2 = b.add(v, one);
        b.store(v2, ga);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    verify_module(&m).unwrap();
    let report = run_on_module(&mut m, &PassConfig::default());
    assert_eq!(report.functions[0].prefetches.len(), 1, "{report}");
}

#[test]
fn conditional_intermediate_load_is_rejected() {
    // The indirect load only happens when a loop-variant flag says so:
    // prefetch code cannot be placed without new control flow.
    let mut m = Module::new("t");
    let fid = m.declare_function(
        "kernel",
        &[Type::Ptr, Type::Ptr, Type::Ptr, Type::I64],
        None,
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, flags, n) = (b.arg(0), b.arg(1), b.arg(2), b.arg(3));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let taken = b.create_block("t");
        let latch = b.create_block("l");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gf = b.gep(flags, i, 8);
        let flag = b.load(Type::I64, gf);
        let fc = b.icmp(Pred::Ne, flag, zero);
        b.cond_br(fc, taken, latch);
        b.switch_to(taken);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        let v2 = b.add(v, one);
        b.store(v2, ga);
        b.br(latch);
        b.switch_to(latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    verify_module(&m).unwrap();
    let report = run_on_module(&mut m, &PassConfig::default());
    assert!(
        report.functions[0].prefetches.is_empty(),
        "conditional chain must be rejected: {report}"
    );
    assert!(report.functions[0]
        .skipped
        .iter()
        .any(|s| s.reason == SkipReason::Conditional));
}

#[test]
fn icc_like_handles_simple_stride_indirect() {
    // The bare a[b[i]] pattern in a straight-line loop is exactly what
    // the ICC-like baseline handles (paper: it catches IS and CG).
    let (mut m1, _) = indirect_sum_module();
    let icc = icc_like::run_on_module(&mut m1, &PassConfig::default());
    assert_eq!(icc.total_prefetches(), 2);
    verify_module(&m1).unwrap();

    // Same kernel with locally allocated arrays also fires.
    let mut m2 = Module::new("t");
    let fid = m2.declare_function("kernel", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m2.function_mut(fid));
        let n = b.arg(0);
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let a = b.alloc(n, 8);
        let bp = b.alloc(n, 8);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        let sum2 = b.add(sum, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(sum));
    }
    verify_module(&m2).unwrap();
    let icc = icc_like::run_on_module(&mut m2, &PassConfig::default());
    assert_eq!(icc.total_prefetches(), 2);
    verify_module(&m2).unwrap();
}

#[test]
fn icc_like_misses_hash_computation() {
    // a[(b[i] * k) & mask] — RA/HJ-style hashing. The full pass takes it;
    // the ICC-like baseline must not (paper §6.1).
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::I64], Type::I64);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let n = b.arg(0);
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let a = b.alloc(n, 8);
        let bp = b.alloc(n, 8);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let k = b.const_i64(2654435761);
        let h1 = b.mul(idx, k);
        let mask = b.const_i64(1023);
        let h2 = b.and(h1, mask);
        let ga = b.gep(a, h2, 8);
        let v = b.load(Type::I64, ga);
        let sum2 = b.add(sum, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(sum));
    }
    verify_module(&m).unwrap();

    let mut icc_m = m.clone();
    let icc = icc_like::run_on_module(&mut icc_m, &PassConfig::default());
    assert_eq!(icc.total_prefetches(), 0, "ICC-like must miss hashing");

    let full = run_on_module(&mut m, &PassConfig::default());
    assert_eq!(
        full.functions[0].prefetches.len(),
        1,
        "full pass handles hashing: {full}"
    );
    verify_module(&m).unwrap();
}

#[test]
fn icc_like_refuses_branching_loops() {
    // a[b[i]] with a data-dependent branch in the loop body — the
    // Graph500 failure mode. The ICC-like pass must find nothing while
    // the full pass still succeeds.
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let taken = b.create_block("t");
        let merge = b.create_block("m");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        let fc = b.icmp(Pred::Sgt, v, zero);
        b.cond_br(fc, taken, merge);
        b.switch_to(taken);
        let v2 = b.add(v, one);
        b.store(v2, ga);
        b.br(merge);
        b.switch_to(merge);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, merge, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    verify_module(&m).unwrap();
    let mut icc_m = m.clone();
    let icc = icc_like::run_on_module(&mut icc_m, &PassConfig::default());
    assert_eq!(icc.total_prefetches(), 0, "branching loop must be refused");
    let full = run_on_module(&mut m, &PassConfig::default());
    assert_eq!(
        full.functions[0].prefetches.len(),
        1,
        "full pass handles it: {full}"
    );
    verify_module(&m).unwrap();
}

#[test]
fn deep_chain_offsets_and_depth_limit() {
    // a[b[c[i]]] — three-load chain: offsets c, 2c/3, c/3.
    let mut m = Module::new("t");
    let fid = m.declare_function(
        "kernel",
        &[Type::Ptr, Type::Ptr, Type::Ptr, Type::I64],
        Type::I64,
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, bp, cp, n) = (b.arg(0), b.arg(1), b.arg(2), b.arg(3));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let cc = b.icmp(Pred::Slt, i, n);
        b.cond_br(cc, body, exit);
        b.switch_to(body);
        let gc = b.gep(cp, i, 8);
        let i1 = b.load(Type::I64, gc);
        let gb = b.gep(bp, i1, 8);
        let i2v = b.load(Type::I64, gb);
        let ga = b.gep(a, i2v, 8);
        let v = b.load(Type::I64, ga);
        let sum2 = b.add(sum, v);
        let inext = b.add(i, one);
        b.add_phi_incoming(i, body, inext);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(sum));
    }
    verify_module(&m).unwrap();

    let mut full = m.clone();
    let report = run_on_module(&mut full, &PassConfig::default());
    verify_module(&full).unwrap();
    let recs = &report.functions[0].prefetches;
    assert_eq!(recs.len(), 1, "one chain, subsuming the inner loads");
    assert_eq!(recs[0].chain_len, 3);
    assert_eq!(recs[0].offsets, vec![64, 42, 21]);
    // Shorter chains rooted at the intermediate loads must be subsumed.
    assert!(report.functions[0]
        .skipped
        .iter()
        .any(|s| s.reason == SkipReason::Subsumed));

    // Depth limit 1: only the first indirect level is prefetched.
    let mut limited = m.clone();
    let cfg = PassConfig {
        max_indirect_depth: 1,
        ..PassConfig::default()
    };
    let report = run_on_module(&mut limited, &cfg);
    assert_eq!(report.functions[0].prefetches[0].offsets, vec![64, 42]);
}

#[test]
fn hoisting_moves_outer_iv_prefetch_to_preheader() {
    // for (i) { x = w[i]; for (j) { sum += inner[j]; } use a[x]; }
    // The load a[w[i]] sits in the outer body; but build the variant
    // where the a[w[i]] load is inside the inner loop: its chain depends
    // only on i, so the prefetch hoists to the inner preheader.
    let mut m = Module::new("t");
    let fid = m.declare_function(
        "kernel",
        &[Type::Ptr, Type::Ptr, Type::I64, Type::I64],
        Type::I64,
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (a, w, n, inner_n) = (b.arg(0), b.arg(1), b.arg(2), b.arg(3));
        let entry = b.entry_block();
        let oh = b.create_block("oh");
        let ob = b.create_block("ob"); // inner preheader
        let ih = b.create_block("ih");
        let ib = b.create_block("ib");
        let ol = b.create_block("ol");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let ci = b.icmp(Pred::Slt, i, n);
        b.cond_br(ci, ob, exit);
        b.switch_to(ob);
        b.br(ih);
        b.switch_to(ih);
        let j = b.phi(Type::I64, &[(ob, zero)]);
        let sj = b.phi(Type::I64, &[(ob, sum)]);
        let cj = b.icmp(Pred::Slt, j, inner_n);
        b.cond_br(cj, ib, ol);
        b.switch_to(ib);
        // Indirect load depending only on the OUTER iv, inside inner loop.
        let gw = b.gep(w, i, 8);
        let x = b.load(Type::I64, gw);
        let gax = b.gep(a, x, 8);
        let ax = b.load(Type::I64, gax);
        let sj2 = b.add(sj, ax);
        let j2 = b.add(j, one);
        b.add_phi_incoming(j, ib, j2);
        b.add_phi_incoming(sj, ib, sj2);
        b.br(ih);
        b.switch_to(ol);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, ol, i2);
        b.add_phi_incoming(sum, ol, sj);
        b.br(oh);
        b.switch_to(exit);
        b.ret(Some(sum));
    }
    verify_module(&m).unwrap();
    let report = run_on_module(&mut m, &PassConfig::default());
    verify_module(&m).expect("hoisted output verifies");
    let recs = &report.functions[0].prefetches;
    assert_eq!(recs.len(), 1, "{report}");
    assert!(recs[0].hoisted, "prefetch hoisted to inner preheader");

    // Semantics preserved.
    let f = m.find_function("kernel").unwrap();
    let mut interp = Interp::new();
    let n = 64u64;
    let a = interp.alloc_array(n, 8).unwrap();
    let w = interp.alloc_array(n, 8).unwrap();
    for i in 0..n {
        interp.mem().write(a + i * 8, 8, i + 1).unwrap();
        interp.mem().write(w + i * 8, 8, (i * 5 + 1) % n).unwrap();
    }
    let r = interp
        .run(
            &m,
            f,
            &[
                RtVal::Int(a as i64),
                RtVal::Int(w as i64),
                RtVal::Int(n as i64),
                RtVal::Int(4),
            ],
            &mut NullObserver,
        )
        .unwrap();
    assert!(r.is_some());
}

#[test]
fn alloc_sized_arrays_clamp_by_extent() {
    // Locally allocated arrays where the loop bound is NOT analysable
    // (two exit conditions) — the alloc extent must provide the clamp.
    let mut m = Module::new("t");
    let fid = m.declare_function("kernel", &[Type::I64, Type::I64], None);
    {
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (n, stop) = (b.arg(0), b.arg(1));
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let body2 = b.create_block("b2");
        let exit = b.create_block("x");
        let a = b.alloc(n, 8);
        let bp = b.alloc(n, 8);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let gb = b.gep(bp, i, 8);
        let idx = b.load(Type::I64, gb);
        let ga = b.gep(a, idx, 8);
        let v = b.load(Type::I64, ga);
        let sum2 = b.add(sum, v);
        let c2 = b.icmp(Pred::Sgt, sum2, stop);
        b.cond_br(c2, exit, body2);
        b.switch_to(body2);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body2, i2);
        b.add_phi_incoming(sum, body2, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    }
    verify_module(&m).unwrap();
    let report = run_on_module(&mut m, &PassConfig::default());
    verify_module(&m).unwrap();
    let recs = &report.functions[0].prefetches;
    assert_eq!(recs.len(), 1, "{report}");
    assert!(
        matches!(recs[0].clamp, swpf_core::ClampSource::AllocCount { .. }),
        "clamp must come from the allocation extent"
    );
}

#[test]
fn report_display_is_informative() {
    let (mut m, _) = indirect_sum_module();
    let report = run_on_module(&mut m, &PassConfig::default());
    let text = report.to_string();
    assert!(text.contains("@kernel"), "{text}");
    assert!(text.contains("chain 2"), "{text}");
}
