//! The generated code must have the paper's Fig. 3(c) structure: for the
//! indirect prefetch an `add`, a clamp (`sub`/`icmp`/`select`), the
//! cloned gep+load chain and a `prefetch`; for the stride companion just
//! `add`, `gep`, `prefetch` — unclamped, since prefetches cannot fault.

use swpf_core::{run_on_module, PassConfig};
use swpf_ir::prelude::*;
use swpf_ir::InstKind;

/// Build the Fig. 3(a) kernel: `for (i) b[a[i]]++` with local allocs.
fn fig3a() -> (Module, ValueId) {
    let mut m = Module::new("fig3");
    let fid = m.declare_function("kernel", &[Type::I64], None);
    let mut b = FunctionBuilder::new(m.function_mut(fid));
    let n = b.arg(0);
    let entry = b.entry_block();
    let header = b.create_block("loop");
    let body = b.create_block("body");
    let exit = b.create_block("exit");
    let a = b.alloc(n, 8);
    let bb = b.alloc(n, 8);
    let zero = b.const_i64(0);
    let one = b.const_i64(1);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, &[(entry, zero)]);
    let c = b.icmp(Pred::Slt, i, n);
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let t1 = b.gep(a, i, 8);
    let l2 = b.load(Type::I64, t1);
    let t3 = b.gep(bb, l2, 8);
    let t4 = b.load(Type::I64, t3);
    let t5 = b.add(t4, one);
    b.store(t5, t3);
    let i1 = b.add(i, one);
    b.add_phi_incoming(i, body, i1);
    b.br(header);
    b.switch_to(exit);
    b.ret(None);
    let _ = b;
    (m, t4)
}

#[test]
fn generated_sequence_matches_fig3c() {
    let (mut m, target) = fig3a();
    swpf_ir::verifier::verify_module(&m).unwrap();
    let report = run_on_module(&mut m, &PassConfig::default());
    swpf_ir::verifier::verify_module(&m).unwrap();
    let rec = &report.functions[0].prefetches[0];
    assert_eq!(rec.chain_len, 2);
    assert_eq!(rec.offsets, vec![64, 32], "c and c/2, as in Fig. 3(c)");
    assert!(matches!(
        rec.clamp,
        swpf_core::ClampSource::AllocCount { .. }
    ));

    // Inspect the body block: everything inserted before the original
    // target load, in dependence order, ending with two prefetches.
    let f = m.function(swpf_ir::FuncId(0));
    let body = f.inst(target).unwrap().block;
    let insts = &f.block(body).insts;
    let target_pos = f.block(body).position_of(target).unwrap();
    let kinds: Vec<&'static str> = insts[..target_pos]
        .iter()
        .map(|&v| match &f.inst(v).unwrap().kind {
            InstKind::Binary { op, .. } => op.mnemonic(),
            InstKind::ICmp { .. } => "icmp",
            InstKind::Select { .. } => "select",
            InstKind::Gep { .. } => "gep",
            InstKind::Load { .. } => "load",
            InstKind::Prefetch { .. } => "prefetch",
            other => panic!("unexpected instruction before target: {other}"),
        })
        .collect();
    // Stride companion: add, gep, prefetch (no clamp — hints can't fault).
    // Indirect: add, sub (limit), icmp, select, gep, load, gep, prefetch.
    // The original chain's gep/load for the current iteration also sit
    // before the target.
    let prefetches = kinds.iter().filter(|k| **k == "prefetch").count();
    assert_eq!(prefetches, 2, "stride + indirect: {kinds:?}");
    let selects = kinds.iter().filter(|k| **k == "select").count();
    assert_eq!(selects, 1, "exactly one clamp: {kinds:?}");
    assert!(
        kinds.iter().filter(|k| **k == "load").count() >= 2,
        "original look-ahead load plus the cloned one: {kinds:?}"
    );
    // The clamp belongs to the indirect sequence only: the stride
    // prefetch's address computation must not contain a select between
    // its add and its prefetch.
    let last_pf = kinds.iter().rposition(|k| *k == "prefetch").unwrap();
    let first_pf = kinds.iter().position(|k| *k == "prefetch").unwrap();
    assert_ne!(first_pf, last_pf);
}

#[test]
fn depth_limited_emission_drops_deep_levels_only() {
    let (mut m, _) = fig3a();
    let cfg = PassConfig {
        max_indirect_depth: 0,
        ..PassConfig::default()
    };
    let report = run_on_module(&mut m, &cfg);
    // Depth 0 forbids all indirect prefetches; only the stride companion
    // remains.
    assert_eq!(report.functions[0].prefetches[0].offsets, vec![64]);
}

#[test]
fn inserted_instruction_count_is_quadratic_in_chain_length() {
    // The paper's O(n²) growth claim (§6.2): a chain of t loads costs
    // ~sum over levels of (level size), i.e. quadratic.
    fn chain_module(depth: usize) -> Module {
        let mut m = Module::new("t");
        let mut params = vec![Type::Ptr; depth];
        params.push(Type::I64);
        let fid = m.declare_function("kernel", &params, Type::I64);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let n = b.arg(depth);
        let entry = b.entry_block();
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let sum = b.phi(Type::I64, &[(entry, zero)]);
        let c = b.icmp(Pred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let mut idx = i;
        for level in 0..depth {
            let g = b.gep(b.arg(level), idx, 8);
            idx = b.load(Type::I64, g);
        }
        let sum2 = b.add(sum, idx);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(sum));
        let _ = b;
        m
    }
    let mut inserted = Vec::new();
    for depth in 1..=6 {
        let mut m = chain_module(depth);
        let report = run_on_module(&mut m, &PassConfig::default());
        inserted.push(
            report.functions[0]
                .prefetches
                .iter()
                .map(|p| p.inserted_insts)
                .sum::<usize>(),
        );
    }
    // Strictly increasing, with growing increments (super-linear).
    for w in inserted.windows(2) {
        assert!(w[1] > w[0], "{inserted:?}");
    }
    let d1 = inserted[1] - inserted[0];
    let d5 = inserted[5] - inserted[4];
    assert!(d5 > d1, "increments must grow: {inserted:?}");
}
