//! Property tests for the look-ahead scheduler (paper §4.4, eq. 1) and
//! its round trip through the pass: the offsets `codegen` actually
//! emits must be exactly the eq.-1 schedule for the configured `c`.

use proptest::prelude::*;
use swpf_core::schedule::offset;
use swpf_core::{run_on_module, PassConfig};
use swpf_ir::parser::parse_module;

/// The two-load indirect kernel of the crate example (`a[b[i]]`): one
/// stride load feeding one indirect load, chain length `t = 2`.
fn indirect_kernel() -> swpf_ir::Module {
    parse_module(
        "module tune_props\n\n\
         func @kernel(%0: ptr, %1: ptr, %2: i64) -> void {\n\
           %3 = const 0: i64\n\
           %4 = const 1: i64\n\
         bb0:\n\
           br bb1\n\
         bb1:\n\
           %5: i64 = phi [bb0: %3], [bb2: %11]\n\
           %6: i1 = icmp slt %5, %2\n\
           br %6, bb2, bb3\n\
         bb2:\n\
           %7: ptr = gep %1, %5 x 8\n\
           %8: i64 = load i64, %7\n\
           %9: ptr = gep %0, %8 x 8\n\
           %10: i64 = load i64, %9\n\
           %11: i64 = add %5, %4\n\
           br bb1\n\
         bb3:\n\
           ret\n\
         }\n",
    )
    .expect("kernel parses")
}

proptest! {
    // Offsets never grow along a chain: the load closest to the
    // induction variable is prefetched furthest ahead, each later link
    // strictly no further (monotone in position).
    #[test]
    fn offsets_are_monotone_in_chain_position(c in 0i64..1_000_000, t in 1usize..64) {
        let mut prev = i64::MAX;
        for l in 0..t {
            let o = offset(c, t, l);
            prop_assert!(o <= prev, "offset grew along the chain at {l}");
            prop_assert!(o >= 1, "offsets are at least one iteration");
            prev = o;
        }
    }

    // Every offset is the eq.-1 multiple of c — `c·(t−l)/t`, integer
    // division, floored at 1 — so it is bounded by c above and the
    // chain's positions divide c evenly: position 0 gets the full c,
    // and consecutive positions differ by at most ⌈c/t⌉.
    #[test]
    fn offsets_are_the_eq1_multiples_of_c(c in 1i64..1_000_000, t in 1usize..64) {
        let t_i = t as i64;
        for l in 0..t {
            let o = offset(c, t, l);
            prop_assert_eq!(o, (c * (t_i - l as i64) / t_i).max(1));
            prop_assert!(o <= c, "bounded by the full look-ahead");
        }
        prop_assert_eq!(offset(c, t, 0), c, "first link gets the whole c");
        for l in 1..t {
            let step = offset(c, t, l - 1) - offset(c, t, l);
            prop_assert!(step <= c / t_i + 1, "even stagger spacing");
        }
    }

    // Round trip into generated code: compiling the two-load kernel
    // with `PassConfig::with_look_ahead(c)` must emit exactly the
    // eq.-1 offsets for a chain of two — [c, c/2] (stride companion
    // first), i.e. the config's look-ahead survives scheduling and
    // codegen verbatim.
    #[test]
    fn with_look_ahead_round_trips_into_codegen(c in 1i64..4096) {
        let mut m = indirect_kernel();
        let report = run_on_module(&mut m, &PassConfig::with_look_ahead(c));
        swpf_ir::verifier::verify_module(&m).expect("pass output verifies");

        let recs: Vec<_> = report.functions.iter().flat_map(|f| &f.prefetches).collect();
        prop_assert_eq!(recs.len(), 1, "one prefetched chain");
        prop_assert_eq!(recs[0].chain_len, 2);
        let want: Vec<i64> = (0..2).map(|l| offset(c, 2, l)).collect();
        prop_assert_eq!(&recs[0].offsets, &want);

        // And the config's own parameter surface reports the same c.
        let cfg = PassConfig::with_look_ahead(c);
        prop_assert_eq!(
            cfg.parameters()[0],
            ("look_ahead", swpf_core::ParamValue::Int(c))
        );
    }

    // Disabling the stride companion drops the position-0 companion
    // prefetch but never changes the indirect offset.
    #[test]
    fn stride_companion_toggle_preserves_the_indirect_offset(c in 1i64..4096) {
        let mut m = indirect_kernel();
        let config = PassConfig {
            stride_companion: false,
            ..PassConfig::with_look_ahead(c)
        };
        let report = run_on_module(&mut m, &config);
        let recs: Vec<_> = report.functions.iter().flat_map(|f| &f.prefetches).collect();
        prop_assert_eq!(recs.len(), 1);
        prop_assert_eq!(&recs[0].offsets, &vec![offset(c, 2, 1)]);
    }
}
