//! Pass reports: what was prefetched, what was skipped, and why.

use crate::candidates::{ClampSource, SkipReason};
use std::fmt;
use swpf_ir::ValueId;

/// One generated prefetch sequence (one target load).
#[derive(Debug, Clone)]
pub struct PrefetchRecord {
    /// The original target load.
    pub target: ValueId,
    /// Number of loads in the dependence chain (the paper's `t`).
    pub chain_len: usize,
    /// Look-ahead offsets actually emitted, outermost (stride) first.
    pub offsets: Vec<i64>,
    /// How the induction variable was clamped for fault avoidance.
    pub clamp: ClampSource,
    /// Whether the code was hoisted to an inner-loop preheader (§4.6).
    pub hoisted: bool,
    /// Number of instructions inserted (including the prefetches).
    pub inserted_insts: usize,
}

/// A load that was considered but not prefetched.
#[derive(Debug, Clone)]
pub struct SkipRecord {
    /// The load that was rejected.
    pub load: ValueId,
    /// Why it was rejected.
    pub reason: SkipReason,
}

/// Per-function outcome of the pass.
#[derive(Debug, Clone, Default)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Prefetch sequences generated.
    pub prefetches: Vec<PrefetchRecord>,
    /// Loads considered and skipped.
    pub skipped: Vec<SkipRecord>,
}

impl FunctionReport {
    /// Total prefetch instructions emitted (a chain of `t` loads with the
    /// stride companion emits up to `t` prefetches).
    #[must_use]
    pub fn num_prefetch_insts(&self) -> usize {
        self.prefetches.iter().map(|p| p.offsets.len()).sum()
    }
}

/// Whole-module outcome of the pass pipeline.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// One report per function, in module order (one batch per `swpf`
    /// pipeline stage; the default pipeline has exactly one).
    pub functions: Vec<FunctionReport>,
    /// Instructions removed by the cleanup passes of the pipeline
    /// (`cse` + `dce`); zero for the default bare-pass pipeline.
    pub eliminated_insts: usize,
}

impl PassReport {
    /// Total prefetch instructions emitted across all functions.
    #[must_use]
    pub fn total_prefetches(&self) -> usize {
        self.functions
            .iter()
            .map(FunctionReport::num_prefetch_insts)
            .sum()
    }

    /// Total loads skipped across all functions.
    #[must_use]
    pub fn total_skipped(&self) -> usize {
        self.functions.iter().map(|f| f.skipped.len()).sum()
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.functions {
            if func.prefetches.is_empty() && func.skipped.is_empty() {
                continue;
            }
            writeln!(f, "@{}:", func.name)?;
            for p in &func.prefetches {
                writeln!(
                    f,
                    "  prefetch for load {}: chain {}, offsets {:?}, clamp {:?}{}",
                    p.target,
                    p.chain_len,
                    p.offsets,
                    p.clamp,
                    if p.hoisted { ", hoisted" } else { "" }
                )?;
            }
            for s in &func.skipped {
                writeln!(f, "  skipped load {}: {:?}", s.load, s.reason)?;
            }
        }
        Ok(())
    }
}
