//! # swpf-core — automatic software prefetching for indirect memory accesses
//!
//! This crate implements the compiler pass of
//! *Software Prefetching for Indirect Memory Accesses*
//! (Ainsworth & Jones, CGO 2017): it finds loads inside loops whose
//! addresses are (transitively) computed from a loop induction variable —
//! the `a[f(b[i])]` family of patterns — and inserts software-prefetch
//! instructions for *future iterations*, together with the address
//! generation code those prefetches need.
//!
//! The pass follows Algorithm 1 of the paper:
//!
//! 1. **Discovery** ([`dfs`]): from every load in a loop, walk the
//!    data-dependence graph backwards (depth-first) until induction
//!    variables are found; record the instructions on the paths. When
//!    paths reach different induction variables, prefer the one belonging
//!    to the innermost loop.
//! 2. **Filtering** ([`candidates`]): reject candidates containing calls
//!    (unless provably pure and allowed by config), non-induction phi
//!    nodes, intermediate loads whose safety cannot be established,
//!    stores in the loop that may alias the address-generation arrays,
//!    or instructions that execute conditionally on loop-variant values
//!    (paper §4.1–4.2).
//! 3. **Scheduling** ([`schedule`]): each load in a dependence chain of
//!    `t` loads gets look-ahead offset `c·(t−l)/t` (paper eq. 1), so
//!    staggered prefetches each have one memory latency of slack.
//! 4. **Generation** ([`codegen`]): clone the recorded instructions,
//!    replace induction-variable uses with `min(iv + offset, limit)`
//!    (branchless select clamp), turn the final load into a `prefetch`,
//!    and insert everything just before the original load. Loads whose
//!    chain sits in an inner loop but whose induction variable belongs to
//!    an outer loop are hoisted to the inner loop's preheader
//!    ([`hoist`], paper §4.6).
//!
//! The stages run as a [`SwpfPass`] under the `swpf-pass` manager with
//! cached analyses, composable with the cleanup passes the paper
//! delegates to later compiler phases: [`PassConfig::pipeline`] names
//! the pipeline textually (`"swpf"` by default, `"swpf,cse,dce"` for
//! the measurable "let `-O3` clean it up" step) — see [`pipeline`].
//!
//! [`icc_like`] provides the deliberately weaker stride-indirect-only
//! baseline pass modelled on the Intel Xeon Phi compiler's prefetcher,
//! used by the evaluation's Fig. 4(d) comparison.
//!
//! ## Quick example
//!
//! ```
//! use swpf_core::{run_on_module, PassConfig};
//! use swpf_ir::parser::parse_module;
//!
//! let mut m = parse_module(
//!     "module demo\n\n\
//!      func @k(%0: ptr, %1: ptr, %2: i64) -> void {\n\
//!        %3 = const 0: i64\n\
//!        %4 = const 1: i64\n\
//!      bb0:\n\
//!        br bb1\n\
//!      bb1:\n\
//!        %5: i64 = phi [bb0: %3], [bb2: %11]\n\
//!        %6: i1 = icmp slt %5, %2\n\
//!        br %6, bb2, bb3\n\
//!      bb2:\n\
//!        %7: ptr = gep %1, %5 x 8\n\
//!        %8: i64 = load i64, %7\n\
//!        %9: ptr = gep %0, %8 x 8\n\
//!        %10: i64 = load i64, %9\n\
//!        %11: i64 = add %5, %4\n\
//!        br bb1\n\
//!      bb3:\n\
//!        ret\n\
//!      }\n",
//! )
//! .unwrap();
//! let report = run_on_module(&mut m, &PassConfig::default());
//! assert_eq!(report.total_prefetches(), 2); // indirect + stride companion
//! swpf_ir::verifier::verify_module(&m).unwrap();
//! ```

pub mod candidates;
pub mod codegen;
pub mod dfs;
pub mod hoist;
pub mod icc_like;
pub mod pipeline;
pub mod report;
pub mod schedule;

pub use candidates::{ClampSource, PlannedPrefetch, SkipReason};
pub use pipeline::{run_pipeline, PassName, Pipeline, SwpfPass, PASS_NAMES};
pub use report::{FunctionReport, PassReport, PrefetchRecord, SkipRecord};

use swpf_ir::{FuncId, Module};
use swpf_pass::AnalysisManager;

/// Tuning knobs for the prefetch-generation pass — plus the pass
/// [`Pipeline`] the module is compiled through.
///
/// The defaults reproduce the paper's configuration: `c = 64` for every
/// system (§5), stride companion prefetches on (§4.3, Fig. 5), no call
/// duplication, hoisting enabled (§4.6), and the bare `"swpf"` pipeline
/// (no cleanup passes — the shape the paper evaluates).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PassConfig {
    /// The look-ahead constant `c` of eq. (1): the offset, in loop
    /// iterations, for the first load in a prefetch sequence.
    pub look_ahead: i64,
    /// Also emit a staggered prefetch for the sequentially-accessed
    /// look-ahead array itself (§4.3 last paragraph; evaluated in Fig. 5).
    /// Kept even in the presence of a hardware stride prefetcher.
    pub stride_companion: bool,
    /// Maximum number of *indirect* loads of a chain to prefetch
    /// (Fig. 7's "stagger depth"). `usize::MAX` prefetches the whole
    /// chain.
    pub max_indirect_depth: usize,
    /// Permit side-effect-free function calls inside prefetch code (the
    /// paper notes this as a possible extension; off by default to match
    /// the evaluated pass).
    pub allow_pure_calls: bool,
    /// Hoist prefetch code out of inner loops when the induction variable
    /// belongs to an outer loop (§4.6).
    pub enable_hoisting: bool,
    /// The pass pipeline [`run_on_module`] compiles with. The default
    /// `"swpf"` runs the prefetch pass alone; `"swpf,cse,dce"` adds the
    /// paper's "later passes clean it up" step (§4/§5) as measurable
    /// cleanup passes. See [`pipeline`].
    pub pipeline: Pipeline,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            look_ahead: 64,
            stride_companion: true,
            max_indirect_depth: usize::MAX,
            allow_pure_calls: false,
            enable_hoisting: true,
            pipeline: Pipeline::default(),
        }
    }
}

/// One scalar value of the pass's parameter space — the common currency
/// between [`PassConfig::parameters`], result artifacts (which attach
/// the effective configuration to every simulated cell), and the
/// `swpf-tune` search subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamValue {
    /// An integer knob (`look_ahead`, `max_indirect_depth` — where
    /// `i64::MAX` stands for "unbounded").
    Int(i64),
    /// A pass toggle (`stride_companion`, `enable_hoisting`, ...).
    Bool(bool),
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl PassConfig {
    /// Config with a different look-ahead constant, other fields default.
    #[must_use]
    pub fn with_look_ahead(c: i64) -> Self {
        PassConfig {
            look_ahead: c,
            ..PassConfig::default()
        }
    }

    /// Config with the given pipeline spec, other fields default.
    ///
    /// # Panics
    /// On an invalid spec — a static configuration error.
    #[must_use]
    pub fn with_pipeline(spec: &str) -> Self {
        PassConfig {
            pipeline: spec
                .parse()
                .unwrap_or_else(|e| panic!("invalid pipeline spec `{spec}`: {e}")),
            ..PassConfig::default()
        }
    }

    /// The tunable *scalar* parameters as `(name, value)` pairs in a
    /// stable order: the pass's parameter-space surface. Result
    /// artifacts attach this to every pass-compiled cell so the numbers
    /// are self-describing, and the tuner searches over it. The
    /// (non-scalar) pipeline is not listed here; it is carried by
    /// [`PassConfig::cache_key`] and by experiment variant labels.
    #[must_use]
    pub fn parameters(&self) -> Vec<(&'static str, ParamValue)> {
        let depth = i64::try_from(self.max_indirect_depth).unwrap_or(i64::MAX);
        vec![
            ("look_ahead", ParamValue::Int(self.look_ahead)),
            ("stride_companion", ParamValue::Bool(self.stride_companion)),
            ("max_indirect_depth", ParamValue::Int(depth)),
            ("allow_pure_calls", ParamValue::Bool(self.allow_pure_calls)),
            ("enable_hoisting", ParamValue::Bool(self.enable_hoisting)),
        ]
    }

    /// Compact stable key naming this point of the parameter space
    /// (`"c64"`, `"c32_nostride"`, ...): non-default toggles append a
    /// suffix, so two configs share a key iff they generate identical
    /// prefetch code. Used as the tuner's per-(workload, machine-set)
    /// evaluation-cache key and as artifact cell labels.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let mut key = format!("c{}", self.look_ahead);
        if self.max_indirect_depth != usize::MAX {
            key.push_str(&format!("_d{}", self.max_indirect_depth));
        }
        if !self.stride_companion {
            key.push_str("_nostride");
        }
        if !self.enable_hoisting {
            key.push_str("_nohoist");
        }
        if self.allow_pure_calls {
            key.push_str("_purecalls");
        }
        if !self.pipeline.is_default() {
            key.push('_');
            key.push_str(&self.pipeline.key());
        }
        key
    }
}

/// Run the prefetch-generation pass (alone — no cleanup pipeline) on
/// one function, computing analyses from scratch.
pub fn run_on_function(m: &mut Module, f: FuncId, config: &PassConfig) -> FunctionReport {
    candidates::run(m, f, config)
}

/// Run `config`'s pass pipeline on every function of a module.
///
/// This is a thin wrapper over the pass manager: it builds the pipeline
/// named by [`PassConfig::pipeline`] (default: the prefetch pass alone)
/// and runs it with a fresh analysis cache — see [`pipeline`] and the
/// `swpf-pass` crate. With the default configuration the output module
/// and report are bit-identical to [`run_on_module_monolithic`], the
/// original single-function shape (proven by the
/// `pipeline_differential` integration suite).
pub fn run_on_module(m: &mut Module, config: &PassConfig) -> PassReport {
    let mut am = AnalysisManager::new();
    pipeline::run_pipeline(m, config, &mut am)
}

/// The original monolithic pass driver: per function, recompute every
/// analysis and run discovery/filter/codegen in one call, ignoring
/// [`PassConfig::pipeline`]. Kept as the differential-testing oracle
/// for the pass-manager path ([`run_on_module`] ≡ this, for the
/// default pipeline).
pub fn run_on_module_monolithic(m: &mut Module, config: &PassConfig) -> PassReport {
    let mut report = PassReport::default();
    for f in m.func_ids().collect::<Vec<_>>() {
        report.functions.push(run_on_function(m, f, config));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_cover_every_knob_in_stable_order() {
        let names: Vec<&str> = PassConfig::default()
            .parameters()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            [
                "look_ahead",
                "stride_companion",
                "max_indirect_depth",
                "allow_pure_calls",
                "enable_hoisting",
            ]
        );
        assert_eq!(PassConfig::default().parameters()[0].1, ParamValue::Int(64));
    }

    #[test]
    fn cache_keys_name_non_default_points() {
        assert_eq!(PassConfig::default().cache_key(), "c64");
        assert_eq!(PassConfig::with_look_ahead(16).cache_key(), "c16");
        let cfg = PassConfig {
            look_ahead: 32,
            stride_companion: false,
            max_indirect_depth: 2,
            enable_hoisting: false,
            ..PassConfig::default()
        };
        assert_eq!(cfg.cache_key(), "c32_d2_nostride_nohoist");
    }

    #[test]
    fn cache_keys_name_non_default_pipelines() {
        assert_eq!(PassConfig::with_pipeline("swpf").cache_key(), "c64");
        assert_eq!(
            PassConfig::with_pipeline("swpf,cse,dce").cache_key(),
            "c64_swpf+cse+dce"
        );
        let cfg = PassConfig {
            look_ahead: 16,
            ..PassConfig::with_pipeline("swpf,dce")
        };
        assert_eq!(cfg.cache_key(), "c16_swpf+dce");
    }

    #[test]
    fn configs_are_hashable_by_value() {
        let mut set = std::collections::HashSet::new();
        assert!(set.insert(PassConfig::default()));
        assert!(
            !set.insert(PassConfig::with_look_ahead(64)),
            "equal configs collide"
        );
        assert!(set.insert(PassConfig::with_pipeline("swpf,cse,dce")));
        assert!(set.insert(PassConfig::with_look_ahead(8)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn configs_share_a_key_iff_equal() {
        let a = PassConfig::default();
        let b = PassConfig::with_look_ahead(64);
        assert_eq!(a, b);
        assert_eq!(a.cache_key(), b.cache_key());
        let c = PassConfig {
            stride_companion: false,
            ..PassConfig::default()
        };
        assert_ne!(a, c);
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
