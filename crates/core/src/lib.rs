//! # swpf-core — automatic software prefetching for indirect memory accesses
//!
//! This crate implements the compiler pass of
//! *Software Prefetching for Indirect Memory Accesses*
//! (Ainsworth & Jones, CGO 2017): it finds loads inside loops whose
//! addresses are (transitively) computed from a loop induction variable —
//! the `a[f(b[i])]` family of patterns — and inserts software-prefetch
//! instructions for *future iterations*, together with the address
//! generation code those prefetches need.
//!
//! The pass follows Algorithm 1 of the paper:
//!
//! 1. **Discovery** ([`dfs`]): from every load in a loop, walk the
//!    data-dependence graph backwards (depth-first) until induction
//!    variables are found; record the instructions on the paths. When
//!    paths reach different induction variables, prefer the one belonging
//!    to the innermost loop.
//! 2. **Filtering** ([`candidates`]): reject candidates containing calls
//!    (unless provably pure and allowed by config), non-induction phi
//!    nodes, intermediate loads whose safety cannot be established,
//!    stores in the loop that may alias the address-generation arrays,
//!    or instructions that execute conditionally on loop-variant values
//!    (paper §4.1–4.2).
//! 3. **Scheduling** ([`schedule`]): each load in a dependence chain of
//!    `t` loads gets look-ahead offset `c·(t−l)/t` (paper eq. 1), so
//!    staggered prefetches each have one memory latency of slack.
//! 4. **Generation** ([`codegen`]): clone the recorded instructions,
//!    replace induction-variable uses with `min(iv + offset, limit)`
//!    (branchless select clamp), turn the final load into a `prefetch`,
//!    and insert everything just before the original load. Loads whose
//!    chain sits in an inner loop but whose induction variable belongs to
//!    an outer loop are hoisted to the inner loop's preheader
//!    ([`hoist`], paper §4.6).
//!
//! [`icc_like`] provides the deliberately weaker stride-indirect-only
//! baseline pass modelled on the Intel Xeon Phi compiler's prefetcher,
//! used by the evaluation's Fig. 4(d) comparison.
//!
//! ## Quick example
//!
//! ```
//! use swpf_core::{run_on_module, PassConfig};
//! use swpf_ir::parser::parse_module;
//!
//! let mut m = parse_module(
//!     "module demo\n\n\
//!      func @k(%0: ptr, %1: ptr, %2: i64) -> void {\n\
//!        %3 = const 0: i64\n\
//!        %4 = const 1: i64\n\
//!      bb0:\n\
//!        br bb1\n\
//!      bb1:\n\
//!        %5: i64 = phi [bb0: %3], [bb2: %11]\n\
//!        %6: i1 = icmp slt %5, %2\n\
//!        br %6, bb2, bb3\n\
//!      bb2:\n\
//!        %7: ptr = gep %1, %5 x 8\n\
//!        %8: i64 = load i64, %7\n\
//!        %9: ptr = gep %0, %8 x 8\n\
//!        %10: i64 = load i64, %9\n\
//!        %11: i64 = add %5, %4\n\
//!        br bb1\n\
//!      bb3:\n\
//!        ret\n\
//!      }\n",
//! )
//! .unwrap();
//! let report = run_on_module(&mut m, &PassConfig::default());
//! assert_eq!(report.total_prefetches(), 2); // indirect + stride companion
//! swpf_ir::verifier::verify_module(&m).unwrap();
//! ```

pub mod candidates;
pub mod codegen;
pub mod dfs;
pub mod hoist;
pub mod icc_like;
pub mod report;
pub mod schedule;

pub use candidates::{ClampSource, PlannedPrefetch, SkipReason};
pub use report::{FunctionReport, PassReport, PrefetchRecord, SkipRecord};

use swpf_ir::{FuncId, Module};

/// Tuning knobs for the prefetch-generation pass.
///
/// The defaults reproduce the paper's configuration: `c = 64` for every
/// system (§5), stride companion prefetches on (§4.3, Fig. 5), no call
/// duplication, hoisting enabled (§4.6).
#[derive(Debug, Clone)]
pub struct PassConfig {
    /// The look-ahead constant `c` of eq. (1): the offset, in loop
    /// iterations, for the first load in a prefetch sequence.
    pub look_ahead: i64,
    /// Also emit a staggered prefetch for the sequentially-accessed
    /// look-ahead array itself (§4.3 last paragraph; evaluated in Fig. 5).
    /// Kept even in the presence of a hardware stride prefetcher.
    pub stride_companion: bool,
    /// Maximum number of *indirect* loads of a chain to prefetch
    /// (Fig. 7's "stagger depth"). `usize::MAX` prefetches the whole
    /// chain.
    pub max_indirect_depth: usize,
    /// Permit side-effect-free function calls inside prefetch code (the
    /// paper notes this as a possible extension; off by default to match
    /// the evaluated pass).
    pub allow_pure_calls: bool,
    /// Hoist prefetch code out of inner loops when the induction variable
    /// belongs to an outer loop (§4.6).
    pub enable_hoisting: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            look_ahead: 64,
            stride_companion: true,
            max_indirect_depth: usize::MAX,
            allow_pure_calls: false,
            enable_hoisting: true,
        }
    }
}

impl PassConfig {
    /// Config with a different look-ahead constant, other fields default.
    #[must_use]
    pub fn with_look_ahead(c: i64) -> Self {
        PassConfig {
            look_ahead: c,
            ..PassConfig::default()
        }
    }
}

/// Run the prefetch-generation pass on one function.
pub fn run_on_function(m: &mut Module, f: FuncId, config: &PassConfig) -> FunctionReport {
    candidates::run(m, f, config)
}

/// Run the prefetch-generation pass on every function of a module.
pub fn run_on_module(m: &mut Module, config: &PassConfig) -> PassReport {
    let mut report = PassReport::default();
    for f in m.func_ids().collect::<Vec<_>>() {
        report.functions.push(run_on_function(m, f, config));
    }
    report
}
