//! Prefetch loop hoisting (paper §4.6).
//!
//! A load can sit in an inner loop while its address depends only on an
//! *outer* loop's induction variable (e.g. a value read once per outer
//! iteration but used throughout an inner pointer-chasing loop). Emitting
//! the prefetch next to the load would re-issue it on every inner
//! iteration — pure overhead. Instead, when the whole recorded
//! instruction set is invariant in the inner loop (given the outer
//! induction variable), the generated code is placed at the end of the
//! inner loop's preheader, so it runs once per outer iteration.
//!
//! Fault safety is inherited from the ordinary clamping argument (§4.2):
//! the cloned intermediate loads use a clamped induction variable, so
//! they touch only addresses the outer loop provably touches itself.

use crate::candidates::Placement;
use swpf_analysis::{FuncAnalysis, InductionVar, LoopId};
use swpf_ir::Function;

/// Choose a preheader insertion point for a plan whose target load lives
/// in `inner` (a strict descendant of the induction variable's loop).
///
/// Walks outward from `inner` to the loop just inside the IV's loop, and
/// returns its preheader when one exists and is itself inside the IV's
/// loop. Returns `None` when the loop structure does not allow hoisting
/// (no dedicated preheader, or the nesting is not as expected).
#[must_use]
pub fn preheader_placement(
    f: &Function,
    analysis: &FuncAnalysis,
    iv: &InductionVar,
    inner: LoopId,
) -> Option<Placement> {
    let _ = f;
    // Find the ancestor chain from `inner` up to (excluding) iv.in_loop.
    let mut cur = inner;
    loop {
        let parent = analysis.loops.get(cur).parent?;
        if parent == iv.in_loop {
            break;
        }
        cur = parent;
    }
    // `cur` is the outermost loop strictly inside the IV's loop that
    // contains the load; hoist to its preheader.
    let pre = analysis.loops.get(cur).preheader?;
    if !analysis.loops.get(iv.in_loop).contains(pre) {
        return None;
    }
    Some(Placement::Preheader(pre))
}
