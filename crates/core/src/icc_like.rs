//! A deliberately limited stride-indirect prefetcher modelled on the
//! Intel Xeon Phi compiler's optional pass (paper §2, §6.1, Fig. 4d).
//!
//! The paper observes that ICC's prefetcher:
//!
//! * handles only the *simplest* pattern — `a[b[i]]` with nothing but an
//!   optional widening cast between the two loads (it "cannot pick up the
//!   necessary hash computation" of RA and HJ-2);
//! * refuses loops with non-trivial internal control flow, and cannot
//!   "determine the size of arrays and guarantee the safety of inserting
//!   loads" for Graph500's work-list and edge-list structures (whose
//!   traversal loops branch internally to grow the next-level queue).
//!
//! This module reproduces those restrictions so the Fig. 4(d) comparison
//! can be regenerated: on IS and CG it performs like the real pass, and
//! it finds nothing in RA, HJ-2/8 or G500. Concretely it requires the
//! bare two-load pattern with at most a widening cast, a straight-line
//! loop body (header + one block), and extent information from either a
//! local allocation or the loop bound.

use crate::candidates::{ChainLoad, ClampSource, Placement, PlannedPrefetch};
use crate::report::{FunctionReport, PassReport};
use crate::{codegen, PassConfig};
use std::collections::BTreeSet;
use swpf_analysis::{invariance, FuncAnalysis, ObjectRoot};
use swpf_ir::{FuncId, InstKind, Module, ValueId, ValueKind};

/// Run the ICC-like stride-indirect pass on every function.
pub fn run_on_module(m: &mut Module, config: &PassConfig) -> PassReport {
    let mut report = PassReport::default();
    for f in m.func_ids().collect::<Vec<_>>() {
        report.functions.push(run_on_function(m, f, config));
    }
    report
}

/// Run the ICC-like stride-indirect pass on one function.
pub fn run_on_function(m: &mut Module, fid: FuncId, config: &PassConfig) -> FunctionReport {
    let mut report = FunctionReport {
        name: m.function(fid).name.clone(),
        ..FunctionReport::default()
    };
    let mut planned: Vec<PlannedPrefetch> = Vec::new();
    {
        let f = m.function(fid);
        let analysis = FuncAnalysis::compute(f);
        for b in f.block_ids() {
            let Some(lid) = analysis.loops.innermost(b) else {
                continue;
            };
            for &v in &f.block(b).insts {
                if let Some(plan) = match_simple_indirect(f, &analysis, lid, v) {
                    planned.push(plan);
                }
            }
        }
    }
    for plan in &planned {
        let record = codegen::emit(m.function_mut(fid), plan, config);
        report.prefetches.push(record);
    }
    report
}

/// Recognise `a[b[i]]` where both `a` and `b` are local allocations with
/// known extents and at most a widening cast sits between the loads.
fn match_simple_indirect(
    f: &swpf_ir::Function,
    analysis: &FuncAnalysis,
    lid: swpf_analysis::LoopId,
    target: ValueId,
) -> Option<PlannedPrefetch> {
    let InstKind::Load { addr, .. } = &f.inst(target)?.kind else {
        return None;
    };
    let InstKind::Gep {
        base: outer_base,
        index,
        ..
    } = &f.inst(*addr)?.kind
    else {
        return None;
    };
    // Optional widening cast between the loads; nothing else.
    let (inner_load, mut set_extra) = match &f.inst(*index)?.kind {
        InstKind::Load { .. } => (*index, Vec::new()),
        InstKind::Cast { val, .. } => match &f.inst(*val).map(|i| &i.kind) {
            Some(InstKind::Load { .. }) => (*val, vec![*index]),
            _ => return None,
        },
        _ => return None,
    };
    let InstKind::Load {
        addr: inner_addr, ..
    } = &f.inst(inner_load)?.kind
    else {
        return None;
    };
    let InstKind::Gep {
        base: inner_base,
        index: inner_index,
        ..
    } = &f.inst(*inner_addr)?.kind
    else {
        return None;
    };
    // Inner index must be the loop's induction variable, directly.
    let iv = *analysis.ivs.as_iv(*inner_index)?;
    if iv.in_loop != lid || iv.step != 1 {
        return None;
    }
    // Straight-line loop body only: header plus a single block. Loops
    // with internal branching (Graph500's queue-growing edge loop, hash
    // joins' chain walks) are refused, as the real pass does.
    if analysis.loops.get(lid).blocks.len() > 2 {
        return None;
    }
    // Extent information: a local allocation, or the loop bound.
    let clamp = if let Some(count) = alloc_count(f, analysis, &iv, *inner_base) {
        ClampSource::AllocCount { count }
    } else if let Some(b) = analysis.ivs.bound_of(iv.phi) {
        use swpf_ir::Pred;
        if !matches!(b.cont_pred, Pred::Slt | Pred::Sle | Pred::Ult | Pred::Ule) {
            return None;
        }
        ClampSource::LoopBound {
            bound: b.bound,
            strict: b.is_strict(),
            unsigned: matches!(b.cont_pred, Pred::Ult | Pred::Ule),
        }
    } else {
        return None;
    };
    // Loop-invariant bases.
    for base in [*outer_base, *inner_base] {
        if !swpf_analysis::indvar::is_loop_invariant(f, &analysis.loops, iv.in_loop, base) {
            return None;
        }
    }

    let mut set: BTreeSet<ValueId> = BTreeSet::new();
    set.extend([target, *addr, inner_load, *inner_addr]);
    set.extend(set_extra.drain(..));
    let chain = vec![
        ChainLoad {
            load: inner_load,
            level: 0,
        },
        ChainLoad {
            load: target,
            level: 1,
        },
    ];
    Some(PlannedPrefetch {
        target,
        iv,
        set,
        chain,
        t: 2,
        clamp,
        placement: Placement::BeforeTarget,
    })
}

/// The element count of the allocation behind `base`, when the base is a
/// locally visible `alloc` with a loop-invariant count.
fn alloc_count(
    f: &swpf_ir::Function,
    analysis: &FuncAnalysis,
    iv: &swpf_analysis::InductionVar,
    base: ValueId,
) -> Option<ValueId> {
    let ObjectRoot::Alloc(a) = invariance::object_root(f, base) else {
        return None;
    };
    let InstKind::Alloc { count, .. } = &f.inst(a)?.kind else {
        return None;
    };
    let invariant = match &f.value(*count).kind {
        ValueKind::Arg { .. } | ValueKind::Const(_) => true,
        ValueKind::Inst(ci) => !analysis.loops.get(iv.in_loop).contains(ci.block),
    };
    invariant.then_some(*count)
}
