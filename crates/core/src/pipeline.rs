//! The pass pipeline: textual specs, the staged `SwpfPass`, and the
//! driver gluing `swpf-core` onto the `swpf-pass` manager.
//!
//! The paper's prototype emits redundant address-generation code and
//! relies on later compiler passes to clean it up (§4/§5). This module
//! makes that pipeline explicit and configurable: a [`Pipeline`] is a
//! comma-separated spec such as `"swpf,cse,dce"`, carried inside
//! [`PassConfig`], naming the passes [`run_pipeline`] composes:
//!
//! | name | pass |
//! |------|------|
//! | `swpf` | the staged prefetch-generation pass ([`SwpfPass`]) |
//! | `gvn` | dominator-scoped global value numbering ([`swpf_pass::Gvn`]) |
//! | `sccp` | sparse conditional constant propagation ([`swpf_pass::Sccp`]) |
//! | `licm` | loop-invariant code motion ([`swpf_pass::Licm`]) |
//! | `cse` | local common-subexpression elimination ([`swpf_pass::LocalCse`]) |
//! | `dce` | dead-code elimination ([`swpf_pass::Dce`]) |
//! | `verify` | an explicit IR-invariant checkpoint ([`swpf_pass::VerifyPass`]) |
//!
//! Setting the `SWPF_VERIFY_PASSES` environment variable (to anything
//! but `0`) additionally verifies the module after *every* pass — the
//! verify-between-passes debug mode, attributing the first breakage to
//! the pass that caused it.

use crate::{candidates, PassConfig, PassReport};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::str::FromStr;
use swpf_ir::{FuncId, Module};
use swpf_pass::{
    AnalysisManager, Dce, FunctionPass, Gvn, Licm, LocalCse, PassEffect, PassManager, Sccp,
    VerifyPass,
};

/// One named pass of a [`Pipeline`] spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassName {
    /// The prefetch-generation pass itself.
    Swpf,
    /// Dominator-scoped global value numbering.
    Gvn,
    /// Sparse conditional constant propagation.
    Sccp,
    /// Loop-invariant code motion.
    Licm,
    /// Local common-subexpression elimination over generated code.
    Cse,
    /// Dead-code elimination.
    Dce,
    /// An explicit verification checkpoint.
    Verify,
}

/// Every valid pipeline token, in canonical (default-pipeline) order —
/// the single source for parse errors and `swpf-opt` help text.
pub const PASS_NAMES: [PassName; 7] = [
    PassName::Swpf,
    PassName::Gvn,
    PassName::Sccp,
    PassName::Licm,
    PassName::Cse,
    PassName::Dce,
    PassName::Verify,
];

impl PassName {
    /// The spec token naming this pass.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PassName::Swpf => "swpf",
            PassName::Gvn => "gvn",
            PassName::Sccp => "sccp",
            PassName::Licm => "licm",
            PassName::Cse => "cse",
            PassName::Dce => "dce",
            PassName::Verify => "verify",
        }
    }

    /// The valid spec tokens joined for diagnostics and help text
    /// (`"swpf | gvn | sccp | licm | cse | dce | verify"`).
    #[must_use]
    pub fn valid_tokens() -> String {
        PASS_NAMES
            .iter()
            .map(|p| p.as_str())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Inverse of [`PassName::as_str`].
    ///
    /// # Errors
    /// Names the unknown token and lists the valid ones.
    pub fn parse(s: &str) -> Result<Self, String> {
        PASS_NAMES
            .iter()
            .copied()
            .find(|p| p.as_str() == s)
            .ok_or_else(|| format!("unknown pass `{s}` (expected {})", PassName::valid_tokens()))
    }
}

/// An ordered pass pipeline, parsed from a comma-separated spec
/// (`"swpf,cse,dce"`). The default pipeline is the bare prefetch pass,
/// which reproduces the original monolithic `run_on_module` exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pipeline(Vec<PassName>);

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline(vec![PassName::Swpf])
    }
}

impl Pipeline {
    /// A pipeline from an explicit pass list (may be empty: a no-op).
    #[must_use]
    pub fn new(passes: Vec<PassName>) -> Self {
        Pipeline(passes)
    }

    /// The passes in execution order.
    #[must_use]
    pub fn passes(&self) -> &[PassName] {
        &self.0
    }

    /// Whether this is the default `"swpf"` pipeline (whose results,
    /// cache keys, and artifact labels must match the legacy pass).
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.0 == [PassName::Swpf]
    }

    /// The spec suffix appended to [`PassConfig::cache_key`] for
    /// non-default pipelines (`"swpf+cse+dce"`).
    #[must_use]
    pub fn key(&self) -> String {
        self.0
            .iter()
            .map(|p| p.as_str())
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl FromStr for Pipeline {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let passes: Vec<PassName> = s
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(PassName::parse)
            .collect::<Result<_, _>>()?;
        if passes.is_empty() {
            return Err("empty pipeline spec".to_string());
        }
        Ok(Pipeline(passes))
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(p.as_str())?;
        }
        Ok(())
    }
}

/// The prefetch-generation pass as a staged function pass: discovery →
/// filtering → scheduling + generation ([`candidates::discover`],
/// [`candidates::filter`], [`crate::codegen`]), with every analysis
/// served by the driver's [`AnalysisManager`] instead of recomputed.
///
/// Per-function [`crate::FunctionReport`]s accumulate into the shared
/// report handed to [`SwpfPass::new`] (shared so [`run_pipeline`] can
/// retrieve it back out of the type-erased pipeline).
pub struct SwpfPass {
    config: PassConfig,
    report: Rc<RefCell<PassReport>>,
}

impl SwpfPass {
    /// A prefetch pass writing its outcome into `report`.
    #[must_use]
    pub fn new(config: PassConfig, report: Rc<RefCell<PassReport>>) -> Self {
        SwpfPass { config, report }
    }
}

impl FunctionPass for SwpfPass {
    fn name(&self) -> &'static str {
        "swpf"
    }

    fn run(&mut self, m: &mut Module, fid: FuncId, am: &mut AnalysisManager) -> PassEffect {
        let analysis = am.func_analysis(m.function(fid), fid);
        let fr = candidates::run_with_analysis(m, fid, &self.config, &analysis);
        let changed = !fr.prefetches.is_empty();
        self.report.borrow_mut().functions.push(fr);
        if changed {
            // Generation only inserts prefetches and address
            // computation into existing blocks — the CFG is untouched,
            // so downstream passes (GVN's dominators, LICM's loops)
            // reuse the cached structural analyses.
            PassEffect::changed().preserving_cfg()
        } else {
            PassEffect::unchanged()
        }
    }
}

/// Run `config`'s pipeline over `m`, reading analyses through `am`.
///
/// This is the engine under [`crate::run_on_module`]; callers compiling
/// many variants of one pristine module (the `swpf-tune` evaluator)
/// pass a [`fork`](AnalysisManager::fork) of a shared primed manager so
/// pre-mutation analyses are computed once across all variants.
///
/// # Panics
/// If a pass breaks module invariants while verification is enabled
/// (the `verify` pipeline pass or `SWPF_VERIFY_PASSES`) — a pass bug,
/// attributed to the offending pass in the panic message.
pub fn run_pipeline(m: &mut Module, config: &PassConfig, am: &mut AnalysisManager) -> PassReport {
    let _span = swpf_obs::span("compile");
    let report = Rc::new(RefCell::new(PassReport::default()));
    let verify_each = std::env::var_os("SWPF_VERIFY_PASSES").is_some_and(|v| v != "0");
    let mut pm = PassManager::new().verify_between(verify_each);
    for pass in config.pipeline.passes() {
        match pass {
            PassName::Swpf => {
                pm.add_function_pass(Box::new(SwpfPass::new(config.clone(), Rc::clone(&report))))
            }
            PassName::Gvn => pm.add_function_pass(Box::new(Gvn::default())),
            PassName::Sccp => pm.add_function_pass(Box::new(Sccp::default())),
            PassName::Licm => pm.add_function_pass(Box::new(Licm::default())),
            PassName::Cse => pm.add_function_pass(Box::new(LocalCse::default())),
            PassName::Dce => pm.add_function_pass(Box::new(Dce::default())),
            PassName::Verify => pm.add_module_pass(Box::new(VerifyPass)),
        }
    }
    let runs = pm
        .run(m, am)
        .unwrap_or_else(|e| panic!("prefetch pipeline failed: {e}"));
    let mut out = std::mem::take(&mut *report.borrow_mut());
    out.eliminated_insts = runs.iter().map(|r| r.removed_insts).sum();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_round_trip() {
        for spec in [
            "swpf",
            "swpf,cse,dce",
            "swpf,verify,dce",
            "cse , dce",
            "swpf,gvn,sccp,licm,cse,dce",
        ] {
            let p: Pipeline = spec.parse().unwrap();
            let canonical = p.to_string();
            assert_eq!(canonical.parse::<Pipeline>().unwrap(), p, "{spec}");
        }
        assert_eq!(
            "swpf,gvn,sccp,licm,cse,dce"
                .parse::<Pipeline>()
                .unwrap()
                .passes(),
            [
                PassName::Swpf,
                PassName::Gvn,
                PassName::Sccp,
                PassName::Licm,
                PassName::Cse,
                PassName::Dce
            ]
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("".parse::<Pipeline>().is_err());
        assert!(",".parse::<Pipeline>().is_err());
        assert!("swpf,o3".parse::<Pipeline>().unwrap_err().contains("o3"));
    }

    #[test]
    fn parse_errors_list_every_valid_pass_name() {
        let err = "swpf,o3".parse::<Pipeline>().unwrap_err();
        for name in PASS_NAMES {
            assert!(
                err.contains(name.as_str()),
                "{err} missing {}",
                name.as_str()
            );
        }
    }

    #[test]
    fn default_pipeline_is_the_bare_pass() {
        let p = Pipeline::default();
        assert!(p.is_default());
        assert_eq!(p.to_string(), "swpf");
        assert!(!"swpf,dce".parse::<Pipeline>().unwrap().is_default());
        assert_eq!(
            "swpf,cse,dce".parse::<Pipeline>().unwrap().key(),
            "swpf+cse+dce"
        );
    }
}
