//! Look-ahead scheduling (paper §4.4, eq. 1).
//!
//! For a dependence chain of `t` loads, the load at position `l`
//! (0 = closest to the induction variable) is prefetched
//! `offset = c·(t−l)/t` iterations ahead. Every prefetch in a chain is
//! thus issued `c/t` iterations before the next one consumes its value —
//! equal spacing of dependent prefetches, one fetch-latency apart.

/// Compute the look-ahead offset for chain position `l` of `t` loads.
///
/// `c` is the microarchitecture-ish constant of eq. (1); the paper sets
/// `c = 64` everywhere and Fig. 6 shows that choice is near-optimal on all
/// four evaluated systems. The result is at least 1 (a zero offset would
/// prefetch the current iteration: pure overhead).
///
/// # Panics
/// If `l >= t` or `t == 0`.
#[must_use]
pub fn offset(c: i64, t: usize, l: usize) -> i64 {
    assert!(t > 0 && l < t, "load position {l} out of chain length {t}");
    let t_i = i64::try_from(t).expect("chain length fits i64");
    let l_i = i64::try_from(l).expect("position fits i64");
    (c * (t_i - l_i) / t_i).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_two_loads() {
        // Listing 1 / Fig. 3: t = 2 gives offsets c and c/2.
        assert_eq!(offset(64, 2, 0), 64);
        assert_eq!(offset(64, 2, 1), 32);
    }

    #[test]
    fn hash_join_chain_of_four() {
        // HJ-8 discussion: offsets 16, 12, 8, 4 with c = 16.
        assert_eq!(offset(16, 4, 0), 16);
        assert_eq!(offset(16, 4, 1), 12);
        assert_eq!(offset(16, 4, 2), 8);
        assert_eq!(offset(16, 4, 3), 4);
    }

    #[test]
    fn offsets_monotonically_decrease_along_chain() {
        for t in 1..=8 {
            let mut prev = i64::MAX;
            for l in 0..t {
                let o = offset(64, t, l);
                assert!(o <= prev, "offset must not grow along the chain");
                assert!(o >= 1);
                prev = o;
            }
        }
    }

    #[test]
    fn offset_never_less_than_one() {
        assert_eq!(offset(1, 4, 3), 1);
        assert_eq!(offset(0, 2, 0), 1);
    }

    #[test]
    #[should_panic(expected = "out of chain length")]
    fn position_must_be_within_chain() {
        let _ = offset(64, 2, 2);
    }
}
