//! Prefetch code generation (paper §4.3, Algorithm 1 lines 43–54).
//!
//! For every load at position `l` of a validated chain of `t` loads, the
//! generator clones the address computation with the induction variable
//! replaced by its look-ahead value, turns the final load into a
//! `prefetch`, and splices the clones in just before the original target
//! load (or in a preheader, for hoisted plans).
//!
//! Clamping (§4.2): every chain position computes its fault-avoidance
//! *limit* (Algorithm 1's uniform rule — the generator is deliberately
//! naive here, like the paper's prototype), but the clamp itself
//! (`min(iv+off, limit)`) is only *applied* where the generated code
//! contains real intermediate loads (`l ≥ 1`): the prefetch instruction
//! cannot fault, so a pure stride prefetch (`l = 0`) uses the unclamped
//! look-ahead — the paper's Fig. 3(c), where `a[i+64]` is prefetched
//! unclamped while the chain loads `a[min(i+32, asize)]`. The limit an
//! unclamped position computed anyway is left for the pipeline's
//! cleanup passes, exactly as the paper leaves its redundant address
//! code to `-O3`: `dce` sweeps it, or `cse` merges it with a clamped
//! sibling position's identical limit (measured by the `ablation`
//! experiment).

use crate::candidates::{ChainLoad, ClampSource, Placement, PlannedPrefetch};
use crate::report::PrefetchRecord;
use crate::schedule;
use crate::PassConfig;
use std::collections::{BTreeSet, HashMap};
use swpf_ir::{Constant, Function, InstKind, Pred, Type, ValueId};

/// Generate the prefetch code for one plan. Returns what was emitted.
pub fn emit(f: &mut Function, plan: &PlannedPrefetch, config: &PassConfig) -> PrefetchRecord {
    let anchor = match plan.placement {
        Placement::BeforeTarget => plan.target,
        Placement::Preheader(b) => f.block(b).last().expect("preheader has a terminator"),
    };
    let mut offsets = Vec::new();
    let mut inserted = 0usize;

    for c in &plan.chain {
        if c.level == 0 && !config.stride_companion {
            continue;
        }
        if c.level >= 1 && c.level > config.max_indirect_depth {
            continue;
        }
        let off = schedule::offset(config.look_ahead, plan.t, c.level);
        inserted += emit_one(f, plan, c, off, anchor);
        offsets.push(off);
    }

    PrefetchRecord {
        target: plan.target,
        chain_len: plan.t,
        offsets,
        clamp: plan.clamp,
        hoisted: matches!(plan.placement, Placement::Preheader(_)),
        inserted_insts: inserted,
    }
}

/// Emit the look-ahead clone for a single chain position. Returns the
/// number of instructions inserted.
fn emit_one(
    f: &mut Function,
    plan: &PlannedPrefetch,
    chain_load: &ChainLoad,
    off: i64,
    anchor: ValueId,
) -> usize {
    let block = f.inst(anchor).expect("anchor is an instruction").block;
    let iv_ty = f.value(plan.iv.phi).ty.expect("iv is typed");
    let mut inserted = 0usize;
    let place = |f: &mut Function, v: ValueId, n: &mut usize| {
        f.insert_before(anchor, v);
        *n += 1;
    };

    // Look-ahead value: iv + off in the iteration direction.
    let step_dir = if plan.iv.step < 0 { -1 } else { 1 };
    let off_const = f.add_const(Constant::Int(off * step_dir, iv_ty));
    let iv_off = f.create_inst(
        InstKind::Binary {
            op: swpf_ir::BinOp::Add,
            lhs: plan.iv.phi,
            rhs: off_const,
        },
        Some(iv_ty),
        block,
    );
    place(f, iv_off, &mut inserted);

    // Every position computes its fault-avoidance limit (the naive
    // Algorithm 1 rule)…
    let (limit, cmp_pred) = clamp_limit(f, plan, iv_ty, block, anchor, &mut inserted);
    // …but the clamp is applied only where real loads are generated
    // (level >= 1): prefetches cannot fault (Fig. 3(c)). An unclamped
    // position's limit is dead code for the cleanup passes.
    let lookahead_iv = if chain_load.level >= 1 {
        clamp_apply(
            f,
            plan,
            iv_off,
            limit,
            cmp_pred,
            iv_ty,
            block,
            anchor,
            &mut inserted,
        )
    } else {
        iv_off
    };

    // Instructions needed for this chain position's address: the
    // transitive closure of the load's operands within the recorded set.
    let needed = needed_subset(f, &plan.set, chain_load.load);
    let order = topo_order(f, &needed);

    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    map.insert(plan.iv.phi, lookahead_iv);
    for v in order {
        let inst = f.inst(v).expect("set member is an instruction");
        if v == chain_load.load {
            // Final load becomes the prefetch (Algorithm 1 line 52).
            let InstKind::Load { addr, .. } = inst.kind else {
                unreachable!("chain entries are loads");
            };
            let new_addr = map.get(&addr).copied().unwrap_or(addr);
            let pf = f.create_inst(InstKind::Prefetch { addr: new_addr }, None, block);
            place(f, pf, &mut inserted);
            break;
        }
        let mut kind = inst.kind.clone();
        let ty = f.value(v).ty;
        let mut tmp = swpf_ir::Inst { kind, block };
        for (&old, &new) in &map {
            tmp.replace_uses(old, new);
        }
        kind = tmp.kind;
        let clone = f.create_inst(kind, ty, block);
        place(f, clone, &mut inserted);
        map.insert(v, clone);
    }
    inserted
}

/// Emit the fault-avoidance limit of a plan's clamp source: the last
/// in-bounds index, plus the predicate comparing against it. Places at
/// most one `sub` (none when the bound is usable as-is).
fn clamp_limit(
    f: &mut Function,
    plan: &PlannedPrefetch,
    iv_ty: Type,
    block: swpf_ir::BlockId,
    anchor: ValueId,
    inserted: &mut usize,
) -> (ValueId, Pred) {
    let place = |f: &mut Function, v: ValueId, n: &mut usize| {
        f.insert_before(anchor, v);
        *n += 1;
    };
    match plan.clamp {
        ClampSource::AllocCount { count } => {
            let one = f.add_const(Constant::Int(1, iv_ty));
            let lim = f.create_inst(
                InstKind::Binary {
                    op: swpf_ir::BinOp::Sub,
                    lhs: count,
                    rhs: one,
                },
                Some(iv_ty),
                block,
            );
            place(f, lim, inserted);
            (lim, Pred::Slt)
        }
        ClampSource::LoopBound {
            bound,
            strict,
            unsigned,
        } => {
            let pred = if unsigned { Pred::Ult } else { Pred::Slt };
            if strict {
                let one = f.add_const(Constant::Int(1, iv_ty));
                let lim = f.create_inst(
                    InstKind::Binary {
                        op: swpf_ir::BinOp::Sub,
                        lhs: bound,
                        rhs: one,
                    },
                    Some(iv_ty),
                    block,
                );
                place(f, lim, inserted);
                (lim, pred)
            } else {
                (bound, pred)
            }
        }
    }
}

/// Emit `min(iv_off, limit)` (or `max 0` for down-counting loops).
#[allow(clippy::too_many_arguments)]
fn clamp_apply(
    f: &mut Function,
    plan: &PlannedPrefetch,
    iv_off: ValueId,
    limit: ValueId,
    cmp_pred: Pred,
    iv_ty: Type,
    block: swpf_ir::BlockId,
    anchor: ValueId,
    inserted: &mut usize,
) -> ValueId {
    let place = |f: &mut Function, v: ValueId, n: &mut usize| {
        f.insert_before(anchor, v);
        *n += 1;
    };
    // Up-counting: clamped = min(iv_off, limit). Down-counting loops
    // overrun towards zero instead, so clamp from below at 0.
    if plan.iv.step >= 0 {
        let cmp = f.create_inst(
            InstKind::ICmp {
                pred: cmp_pred,
                lhs: iv_off,
                rhs: limit,
            },
            Some(Type::I1),
            block,
        );
        place(f, cmp, inserted);
        let sel = f.create_inst(
            InstKind::Select {
                cond: cmp,
                then_val: iv_off,
                else_val: limit,
            },
            Some(iv_ty),
            block,
        );
        place(f, sel, inserted);
        sel
    } else {
        let zero = f.add_const(Constant::Int(0, iv_ty));
        let cmp = f.create_inst(
            InstKind::ICmp {
                pred: Pred::Sgt,
                lhs: iv_off,
                rhs: zero,
            },
            Some(Type::I1),
            block,
        );
        place(f, cmp, inserted);
        let sel = f.create_inst(
            InstKind::Select {
                cond: cmp,
                then_val: iv_off,
                else_val: zero,
            },
            Some(iv_ty),
            block,
        );
        place(f, sel, inserted);
        sel
    }
}

/// The subset of `set` that `load`'s value transitively depends on,
/// including `load` itself.
fn needed_subset(f: &Function, set: &BTreeSet<ValueId>, load: ValueId) -> BTreeSet<ValueId> {
    let mut needed = BTreeSet::new();
    let mut stack = vec![load];
    while let Some(v) = stack.pop() {
        if !needed.insert(v) {
            continue;
        }
        if let Some(inst) = f.inst(v) {
            for o in inst.operands() {
                if set.contains(&o) && !needed.contains(&o) {
                    stack.push(o);
                }
            }
        }
    }
    needed
}

/// Dependence-respecting order of `subset` (defs before uses).
fn topo_order(f: &Function, subset: &BTreeSet<ValueId>) -> Vec<ValueId> {
    let mut order = Vec::with_capacity(subset.len());
    let mut emitted: BTreeSet<ValueId> = BTreeSet::new();
    let mut remaining: Vec<ValueId> = subset.iter().copied().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&v| {
            let ready = f
                .inst(v)
                .map(|inst| {
                    inst.operands()
                        .iter()
                        .all(|o| !subset.contains(o) || emitted.contains(o))
                })
                .unwrap_or(true);
            if ready {
                order.push(v);
                emitted.insert(v);
                false
            } else {
                true
            }
        });
        assert!(
            remaining.len() < before,
            "cyclic dependence in prefetch set (should be impossible in SSA)"
        );
    }
    order
}
