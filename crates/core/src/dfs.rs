//! The depth-first search of Algorithm 1 (paper lines 1–25).
//!
//! From a load, walk the data-dependence graph backwards through values
//! defined *inside loops* until induction variables are reached. Each
//! successful path contributes `(induction variable, instructions on the
//! path)`. If paths reach several induction variables, the one in the
//! innermost (deepest) loop wins — the paper's `closest_loop_indvar` —
//! and the sets of all paths reaching that variable are merged.

use std::collections::{BTreeSet, HashMap};

/// Memoised DFS results: per value, the candidates found beneath it.
type Memo = HashMap<ValueId, Option<Vec<(ValueId, BTreeSet<ValueId>)>>>;
use swpf_analysis::FuncAnalysis;
use swpf_ir::{Function, InstKind, ValueId, ValueKind};

/// The result of a successful search: the chosen induction variable's phi
/// and every instruction on a dependence path from it to the load
/// (inclusive of the load itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsResult {
    /// The induction variable (a loop-header phi).
    pub iv: ValueId,
    /// Instructions to duplicate for address generation, as a set.
    pub set: BTreeSet<ValueId>,
}

/// Walk backwards from `load` looking for induction variables.
///
/// Returns `None` when no path from the load's address computation
/// reaches an induction variable, mirroring Algorithm 1 returning null.
#[must_use]
pub fn find_iv_paths(f: &Function, analysis: &FuncAnalysis, load: ValueId) -> Option<DfsResult> {
    let mut memo: Memo = HashMap::new();
    let mut visiting: BTreeSet<ValueId> = BTreeSet::new();
    let candidates = dfs(f, analysis, load, &mut memo, &mut visiting)?;

    // Pick the induction variable in the deepest loop (paper line 21).
    let depth_of = |iv: ValueId| -> u32 {
        analysis
            .ivs
            .as_iv(iv)
            .map_or(0, |i| analysis.loops.get(i.in_loop).depth)
    };
    let best_iv = candidates
        .iter()
        .map(|(iv, _)| *iv)
        .max_by_key(|&iv| (depth_of(iv), std::cmp::Reverse(iv)))?;

    // Merge the paths that reach the chosen variable (paper line 24).
    let mut set = BTreeSet::new();
    for (iv, s) in &candidates {
        if *iv == best_iv {
            set.extend(s.iter().copied());
        }
    }
    Some(DfsResult { iv: best_iv, set })
}

/// Recursive DFS. Returns the list of `(iv, path set)` candidates found
/// beneath `v`, or `None` when no path finds an induction variable.
fn dfs(
    f: &Function,
    analysis: &FuncAnalysis,
    v: ValueId,
    memo: &mut Memo,
    visiting: &mut BTreeSet<ValueId>,
) -> Option<Vec<(ValueId, BTreeSet<ValueId>)>> {
    if let Some(cached) = memo.get(&v) {
        return cached.clone();
    }
    // Cycle through non-IV phis: cut the path.
    if !visiting.insert(v) {
        return None;
    }

    let mut candidates: Vec<(ValueId, BTreeSet<ValueId>)> = Vec::new();
    let inst = match &f.value(v).kind {
        ValueKind::Inst(i) => i.clone(),
        // Arguments and constants terminate paths without a find.
        _ => {
            visiting.remove(&v);
            memo.insert(v, None);
            return None;
        }
    };

    for o in operand_deps(&inst.kind) {
        // Found an induction variable: finish this path (paper line 5).
        if analysis.ivs.as_iv(o).is_some() {
            let mut s = BTreeSet::new();
            s.insert(v);
            candidates.push((o, s));
            continue;
        }
        // Recurse into values defined inside a loop (paper line 8).
        let defined_in_loop = match &f.value(o).kind {
            ValueKind::Inst(oi) => analysis.loops.innermost(oi.block).is_some(),
            _ => false,
        };
        if defined_in_loop {
            if let Some(subs) = dfs(f, analysis, o, memo, visiting) {
                for (iv, mut s) in subs {
                    s.insert(v);
                    candidates.push((iv, s));
                }
            }
        }
    }

    visiting.remove(&v);
    let result = if candidates.is_empty() {
        None
    } else {
        Some(candidates)
    };
    memo.insert(v, result.clone());
    result
}

/// The operands the DFS follows. For phis these are all incoming values
/// (non-IV phis are later rejected by the candidate filter, but the walk
/// still explores them so the rejection is precise). For loads, only the
/// address matters.
fn operand_deps(kind: &InstKind) -> Vec<ValueId> {
    match kind {
        InstKind::Load { addr, .. } => vec![*addr],
        InstKind::Phi { incomings } => incomings.iter().map(|(_, v)| *v).collect(),
        other => {
            let inst = swpf_ir::Inst {
                kind: other.clone(),
                block: swpf_ir::BlockId(0),
            };
            inst.operands()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::prelude::*;

    /// Classic indirect pattern: `a[b[i]]`; the DFS from the outer load
    /// must find the loop IV and record the gep/load chain.
    #[test]
    fn finds_iv_through_indirect_chain() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::Ptr, Type::I64], None);
        let (target, inner_load, gep_a, gep_b);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (a, bp, n) = (b.arg(0), b.arg(1), b.arg(2));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            gep_b = b.gep(bp, i, 8);
            inner_load = b.load(Type::I64, gep_b);
            gep_a = b.gep(a, inner_load, 8);
            target = b.load(Type::I64, gep_a);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        swpf_ir::verifier::verify_module(&m).unwrap();
        let f = m.function(fid);
        let analysis = FuncAnalysis::compute(f);
        let r = find_iv_paths(f, &analysis, target).expect("found");
        assert!(analysis.ivs.as_iv(r.iv).is_some());
        for v in [target, gep_a, inner_load, gep_b] {
            assert!(r.set.contains(&v), "set must contain {v}");
        }
        assert_eq!(r.set.len(), 4);
    }

    /// A load of a loop-invariant address finds no induction variable.
    #[test]
    fn invariant_load_finds_nothing() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::I64], None);
        let target;
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (p, n) = (b.arg(0), b.arg(1));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            target = b.load(Type::I64, p); // address is an argument
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        let f = m.function(fid);
        let analysis = FuncAnalysis::compute(f);
        assert!(find_iv_paths(f, &analysis, target).is_none());
    }

    /// When a load depends on both an outer and an inner induction
    /// variable, the inner one is chosen (paper line 21).
    #[test]
    fn innermost_iv_wins() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::I64, Type::I64], None);
        let (target, inner_iv_block);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (p, n, mm) = (b.arg(0), b.arg(1), b.arg(2));
            let entry = b.entry_block();
            let oh = b.create_block("oh");
            let ob = b.create_block("ob");
            let ih = b.create_block("ih");
            let ib = b.create_block("ib");
            let ol = b.create_block("ol");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(oh);
            b.switch_to(oh);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let ci = b.icmp(Pred::Slt, i, n);
            b.cond_br(ci, ob, exit);
            b.switch_to(ob);
            b.br(ih);
            b.switch_to(ih);
            let j = b.phi(Type::I64, &[(ob, zero)]);
            let cj = b.icmp(Pred::Slt, j, mm);
            b.cond_br(cj, ib, ol);
            b.switch_to(ib);
            // address uses i + j: both IVs on the path.
            let sum = b.add(i, j);
            let g = b.gep(p, sum, 8);
            target = b.load(Type::I64, g);
            let j2 = b.add(j, one);
            b.add_phi_incoming(j, ib, j2);
            b.br(ih);
            b.switch_to(ol);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, ol, i2);
            b.br(oh);
            b.switch_to(exit);
            b.ret(None);
            inner_iv_block = ih;
        }
        swpf_ir::verifier::verify_module(&m).unwrap();
        let f = m.function(fid);
        let analysis = FuncAnalysis::compute(f);
        let r = find_iv_paths(f, &analysis, target).expect("found");
        let iv = analysis.ivs.as_iv(r.iv).expect("is an iv");
        assert_eq!(
            analysis.loops.get(iv.in_loop).header,
            inner_iv_block,
            "must pick the inner loop's IV"
        );
    }

    /// Pointer-chasing through a non-IV phi cycles; the DFS must
    /// terminate and, because another path reaches the IV, still succeed.
    #[test]
    fn phi_cycles_terminate() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::I64], None);
        let target;
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (p, n) = (b.arg(0), b.arg(1));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let cur = b.phi(Type::Ptr, &[(entry, p)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            // target address mixes the chasing pointer and the IV.
            let g = b.gep(cur, i, 8);
            target = b.load(Type::Ptr, g);
            b.add_phi_incoming(cur, body, target); // cycle: cur -> target -> cur
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(header);
            b.switch_to(exit);
            b.ret(None);
        }
        swpf_ir::verifier::verify_module(&m).unwrap();
        let f = m.function(fid);
        let analysis = FuncAnalysis::compute(f);
        let r = find_iv_paths(f, &analysis, target).expect("the IV path exists");
        assert!(r.set.contains(&target));
    }
}
