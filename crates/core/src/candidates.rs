//! Candidate collection and filtering (Algorithm 1 lines 29–40, §4.2).
//!
//! A *candidate* is a load in a loop from which the [`crate::dfs`] search
//! found an induction variable. Candidates survive to code generation only
//! when the pass can prove the generated look-ahead code is safe:
//!
//! * no function calls in the duplicated set (unless pure and permitted),
//! * no non-induction-variable phi nodes (complex control flow),
//! * the look-ahead array is indexed *directly* by a canonical induction
//!   variable (the paper's prototype restriction, §4.2),
//! * array extent information is available — from walking back to an
//!   `alloc`, or from a single-exit loop bound — so the induction variable
//!   can be clamped,
//! * no stores in the loop may alias the arrays the prefetch code loads
//!   from, and
//! * every duplicated instruction executes unconditionally each iteration
//!   of its loop (no loads conditional on loop-variant values).

use crate::codegen;
use crate::dfs::{find_iv_paths, DfsResult};
use crate::hoist;
use crate::report::{FunctionReport, SkipRecord};
use crate::PassConfig;
use std::collections::BTreeSet;
use swpf_analysis::{invariance, FuncAnalysis, InductionVar, ObjectRoot};
use swpf_ir::{BlockId, FuncId, Function, InstKind, Module, Pred, ValueId, ValueKind};

/// Why a load was not prefetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// No dependence path from the load reaches an induction variable.
    NoInductionVariable,
    /// The duplicated set would contain a (non-pure) function call.
    ContainsCall,
    /// The duplicated set contains a phi that is not an induction
    /// variable — control flow too complex (paper line 40).
    ContainsNonIvPhi,
    /// The look-ahead array is not indexed directly by the induction
    /// variable (prototype restriction, §4.2).
    LookaheadNotDirect,
    /// The induction variable is not in canonical (unit-step) form.
    NotCanonicalIv,
    /// Neither an allocation size nor a usable loop bound is available
    /// for fault-avoidance clamping.
    NoSizeInfo,
    /// A store in the loop may alias an address-generation array.
    MayAliasStore,
    /// Part of the address generation executes conditionally on a
    /// loop-variant value other than the induction variable.
    Conditional,
    /// Pure stride access: left to the hardware prefetcher (§4.3).
    StrideOnly,
    /// Already covered by a longer chain rooted at another load.
    Subsumed,
    /// Another accepted prefetch already fetches the same cache line
    /// (same base and index, byte offsets within one line) — e.g. the
    /// fields of one hash-table bucket.
    SameLineCovered,
}

/// How the look-ahead induction variable is clamped (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClampSource {
    /// `min(iv + off, alloc_count − 1)`: extent recovered by walking the
    /// dependence graph back to the allocation.
    AllocCount {
        /// The value holding the element count of the allocation.
        count: ValueId,
    },
    /// `min(iv + off, bound − (strict ? 1 : 0))`: extent from the loop's
    /// single termination condition.
    LoopBound {
        /// The loop-invariant bound value.
        bound: ValueId,
        /// Whether the continue predicate is strict (`<` vs `<=`).
        strict: bool,
        /// Whether the comparison is unsigned.
        unsigned: bool,
    },
}

/// A load in the dependence chain of a planned prefetch.
#[derive(Debug, Clone, Copy)]
pub struct ChainLoad {
    /// The load instruction.
    pub load: ValueId,
    /// Dependence level: 0 for loads indexed directly by the induction
    /// variable, `k` for loads needing `k` prior loads (the paper's `l`).
    pub level: usize,
}

/// Where generated code is inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Immediately before the original target load (paper line 53).
    BeforeTarget,
    /// At the end of an inner loop's preheader (§4.6 hoisting).
    Preheader(BlockId),
}

/// A fully-validated prefetch plan, ready for code generation.
#[derive(Debug, Clone)]
pub struct PlannedPrefetch {
    /// The target load.
    pub target: ValueId,
    /// The induction variable used for look-ahead.
    pub iv: InductionVar,
    /// All instructions to duplicate.
    pub set: BTreeSet<ValueId>,
    /// The loads of the set in dependence order (target last).
    pub chain: Vec<ChainLoad>,
    /// Total chain length `t` (max level + 1).
    pub t: usize,
    /// Clamp strategy.
    pub clamp: ClampSource,
    /// Insertion point.
    pub placement: Placement,
}

/// Stage 1 — **discovery** (Algorithm 1 lines 29–33): walk every load
/// inside a loop, in block order, and DFS its data dependences back to
/// an induction variable. Returns the raw candidates plus a skip record
/// for every load no path reaches an induction variable from.
#[must_use]
pub fn discover(
    f: &Function,
    analysis: &FuncAnalysis,
) -> (Vec<(ValueId, DfsResult)>, Vec<SkipRecord>) {
    // Loads inside loops, in block order (paper line 30).
    let mut loads: Vec<ValueId> = Vec::new();
    for b in f.block_ids() {
        if analysis.loops.innermost(b).is_none() {
            continue;
        }
        for &v in &f.block(b).insts {
            if matches!(f.inst(v).map(|i| &i.kind), Some(InstKind::Load { .. })) {
                loads.push(v);
            }
        }
    }

    let mut raw: Vec<(ValueId, DfsResult)> = Vec::new();
    let mut skipped: Vec<SkipRecord> = Vec::new();
    for load in loads {
        match find_iv_paths(f, analysis, load) {
            Some(r) => raw.push((load, r)),
            None => skipped.push(SkipRecord {
                load,
                reason: SkipReason::NoInductionVariable,
            }),
        }
    }
    (raw, skipped)
}

/// Stage 2 — **filtering** (Algorithm 1 lines 34–42, §4.2): deduplicate
/// the raw candidates (subsumption by longer chains, cache-line
/// coverage) and apply every safety filter, turning survivors into
/// fully-validated [`PlannedPrefetch`]es.
#[must_use]
pub fn filter(
    f: &Function,
    analysis: &FuncAnalysis,
    mut raw: Vec<(ValueId, DfsResult)>,
    config: &PassConfig,
) -> (Vec<PlannedPrefetch>, Vec<SkipRecord>) {
    let mut planned: Vec<PlannedPrefetch> = Vec::new();
    let mut skipped: Vec<SkipRecord> = Vec::new();

    // Longest chains first so shorter chains they cover are subsumed.
    raw.sort_by_key(|(_, r)| std::cmp::Reverse(r.set.len()));
    let mut covered: BTreeSet<ValueId> = BTreeSet::new();
    // (base, index, elem_size) of accepted targets' address geps, for
    // line-granularity deduplication: prefetching `bucket.k0` already
    // fetches `bucket.k1`'s line.
    let mut line_keys: Vec<(ValueId, ValueId, u64, u64)> = Vec::new();
    for (load, r) in raw {
        if covered.contains(&load) {
            skipped.push(SkipRecord {
                load,
                reason: SkipReason::Subsumed,
            });
            continue;
        }
        if let Some(key) = target_gep_key(f, load) {
            if line_keys
                .iter()
                .any(|k| k.0 == key.0 && k.1 == key.1 && k.2 == key.2 && k.3.abs_diff(key.3) < 64)
            {
                skipped.push(SkipRecord {
                    load,
                    reason: SkipReason::SameLineCovered,
                });
                continue;
            }
        }
        match validate(f, analysis, load, &r, config) {
            Ok(plan) => {
                covered.extend(plan.chain.iter().map(|c| c.load));
                if let Some(key) = target_gep_key(f, load) {
                    line_keys.push(key);
                }
                planned.push(plan);
            }
            Err(reason) => skipped.push(SkipRecord { load, reason }),
        }
    }
    (planned, skipped)
}

/// Run the pass stages on one function using caller-provided analyses
/// (the pass-manager path: `swpf_core::SwpfPass` feeds analyses from
/// the `swpf-pass` [`AnalysisManager`](swpf_pass::AnalysisManager)
/// cache). `analysis` must describe `m.function(fid)`'s current body.
///
/// Stages: [`discover`] → [`filter`] → scheduling + generation
/// ([`crate::codegen::emit`], which applies [`crate::schedule`]'s
/// look-ahead offsets while cloning).
pub fn run_with_analysis(
    m: &mut Module,
    fid: FuncId,
    config: &PassConfig,
    analysis: &FuncAnalysis,
) -> FunctionReport {
    let mut report = FunctionReport {
        name: m.function(fid).name.clone(),
        ..FunctionReport::default()
    };
    let planned = {
        let f = m.function(fid);
        let (raw, no_iv) = discover(f, analysis);
        report.skipped.extend(no_iv);
        let (planned, rejected) = filter(f, analysis, raw, config);
        report.skipped.extend(rejected);
        planned
    };

    // Stages 3 + 4 — scheduling and generation (mutates the function).
    for plan in &planned {
        let record = codegen::emit(m.function_mut(fid), plan, config);
        report.prefetches.push(record);
    }
    report
}

/// Run discovery, filtering and code generation on one function,
/// computing every analysis from scratch — the original monolithic
/// shape, kept as the differential-testing oracle for the pipelined
/// path (see `swpf_core::run_on_module_monolithic`).
pub fn run(m: &mut Module, fid: FuncId, config: &PassConfig) -> FunctionReport {
    let analysis = FuncAnalysis::compute(m.function(fid));
    run_with_analysis(m, fid, config, &analysis)
}

/// The `(base, index, elem_size, offset)` of a load's address gep, used
/// as a cache-line identity for prefetch deduplication.
fn target_gep_key(f: &Function, load: ValueId) -> Option<(ValueId, ValueId, u64, u64)> {
    let InstKind::Load { addr, .. } = &f.inst(load)?.kind else {
        return None;
    };
    let InstKind::Gep {
        base,
        index,
        elem_size,
        offset,
    } = &f.inst(*addr)?.kind
    else {
        return None;
    };
    Some((*base, *index, *elem_size, *offset))
}

/// Apply every filter from Algorithm 1 and §4.2 to one candidate.
fn validate(
    f: &Function,
    analysis: &FuncAnalysis,
    target: ValueId,
    r: &DfsResult,
    config: &PassConfig,
) -> Result<PlannedPrefetch, SkipReason> {
    let iv = *analysis
        .ivs
        .as_iv(r.iv)
        .expect("dfs returns induction variables only");

    // Function calls (paper line 35).
    for &v in &r.set {
        if let Some(InstKind::Call { callee: _, .. }) = f.inst(v).map(|i| &i.kind) {
            if !config.allow_pure_calls {
                return Err(SkipReason::ContainsCall);
            }
            // Pure-call extension: allowed only when the callee cannot
            // observe or produce side effects. Purity is declared on the
            // function and checked by the verifier.
            // (Callee resolution needs the module; the caller checked
            // purity at build time via the verifier, so trust the flag.)
        }
    }

    // Non-induction phi nodes (paper line 40).
    for &v in &r.set {
        if matches!(f.inst(v).map(|i| &i.kind), Some(InstKind::Phi { .. }))
            && analysis.ivs.as_iv(v).is_none()
        {
            return Err(SkipReason::ContainsNonIvPhi);
        }
    }

    // Chain structure: levels of loads within the set.
    let chain = chain_of(f, &r.set, target);
    let t = chain.iter().map(|c| c.level).max().map_or(0, |m| m + 1);
    if t < 2 {
        // A lone stride access: the hardware prefetcher handles it (§4.3).
        return Err(SkipReason::StrideOnly);
    }

    // Prototype restriction: level-0 loads must be `base[iv]` with a
    // loop-invariant base (§4.2).
    let mut level0_bases: Vec<ValueId> = Vec::new();
    for c in chain.iter().filter(|c| c.level == 0) {
        let Some(InstKind::Load { addr, .. }) = f.inst(c.load).map(|i| &i.kind) else {
            unreachable!("chain entries are loads");
        };
        let Some(InstKind::Gep { base, index, .. }) = f.inst(*addr).map(|i| &i.kind) else {
            return Err(SkipReason::LookaheadNotDirect);
        };
        if *index != iv.phi {
            return Err(SkipReason::LookaheadNotDirect);
        }
        if !invariance_ok(f, analysis, iv, *base) {
            return Err(SkipReason::LookaheadNotDirect);
        }
        level0_bases.push(*base);
    }

    // Clamp source: allocation extent first, then the loop bound (§4.2).
    let clamp = clamp_source(f, analysis, &iv, &level0_bases)?;

    // Unconditional execution: every duplicated instruction must run each
    // iteration of the loop that contains it (dominate that loop's latch).
    let inner = analysis
        .loops
        .innermost(f.inst(target).expect("load").block)
        .expect("candidate loads are inside loops");
    let check_loop = if inner == iv.in_loop || !config.enable_hoisting {
        iv.in_loop
    } else {
        inner
    };
    let latch = match analysis.loops.get(check_loop).latches.as_slice() {
        [l] => *l,
        _ => return Err(SkipReason::Conditional),
    };
    for &v in &r.set {
        let b = f.inst(v).expect("set holds instructions").block;
        if !analysis.dom.dominates(b, latch) {
            return Err(SkipReason::Conditional);
        }
    }

    // Store aliasing (§4.2): arrays read by the address-generation code
    // (all chain loads except the target, whose clone is a prefetch) must
    // not be written inside the induction variable's loop.
    let store_roots = analysis
        .roots
        .store_roots_in(f, &analysis.loops.get(iv.in_loop).blocks);
    for c in chain.iter().filter(|c| c.load != target) {
        let Some(InstKind::Load { addr, .. }) = f.inst(c.load).map(|i| &i.kind) else {
            unreachable!();
        };
        if invariance::roots_may_alias(&store_roots, analysis.roots.roots_of(*addr)) {
            return Err(SkipReason::MayAliasStore);
        }
    }

    // Placement: hoist to the inner loop's preheader when the load lives
    // in a deeper loop than its induction variable (§4.6).
    let placement = if inner != iv.in_loop && config.enable_hoisting {
        hoist::preheader_placement(f, analysis, &iv, inner).ok_or(SkipReason::Conditional)?
    } else {
        Placement::BeforeTarget
    };

    Ok(PlannedPrefetch {
        target,
        iv,
        set: r.set.clone(),
        chain,
        t,
        clamp,
        placement,
    })
}

/// Whether `base` is usable from prefetch code: invariant in the IV's
/// loop (constants, arguments, or definitions outside the loop).
fn invariance_ok(f: &Function, analysis: &FuncAnalysis, iv: InductionVar, base: ValueId) -> bool {
    swpf_analysis::indvar::is_loop_invariant(f, &analysis.loops, iv.in_loop, base)
}

/// Order the loads of `set` by dependence level.
///
/// Level 0 loads depend on no other load in the set; a level-`k` load
/// needs `k` earlier loads on its longest dependence path (the paper's
/// position `l` in a sequence of `t` loads).
#[must_use]
pub fn chain_of(f: &Function, set: &BTreeSet<ValueId>, target: ValueId) -> Vec<ChainLoad> {
    let mut levels: std::collections::HashMap<ValueId, usize> = std::collections::HashMap::new();
    fn level_of(
        f: &Function,
        set: &BTreeSet<ValueId>,
        v: ValueId,
        levels: &mut std::collections::HashMap<ValueId, usize>,
    ) -> usize {
        if let Some(&l) = levels.get(&v) {
            return l;
        }
        levels.insert(v, 0); // cycle guard
        let is_load = matches!(f.inst(v).map(|i| &i.kind), Some(InstKind::Load { .. }));
        let mut deepest_below = 0usize;
        if let Some(inst) = f.inst(v) {
            for o in inst.operands() {
                if set.contains(&o) {
                    let lo = level_of(f, set, o, levels);
                    let contrib =
                        if matches!(f.inst(o).map(|i| &i.kind), Some(InstKind::Load { .. })) {
                            lo + 1
                        } else {
                            lo
                        };
                    deepest_below = deepest_below.max(contrib);
                }
            }
        }
        let l = deepest_below;
        let _ = is_load;
        levels.insert(v, l);
        l
    }
    let mut chain: Vec<ChainLoad> = set
        .iter()
        .filter(|&&v| matches!(f.inst(v).map(|i| &i.kind), Some(InstKind::Load { .. })))
        .map(|&v| ChainLoad {
            load: v,
            level: level_of(f, set, v, &mut levels),
        })
        .collect();
    chain.sort_by_key(|c| (c.level, c.load));
    // The target load must be last; it is by construction the deepest.
    debug_assert!(chain.last().is_some_and(|c| c.load == target) || chain.is_empty());
    chain
}

/// Decide how to clamp the induction variable (paper §4.2).
fn clamp_source(
    f: &Function,
    analysis: &FuncAnalysis,
    iv: &InductionVar,
    level0_bases: &[ValueId],
) -> Result<ClampSource, SkipReason> {
    // Allocation extents: usable when every look-ahead array resolves to
    // the same allocation with a loop-invariant element count.
    let mut alloc_count: Option<ValueId> = None;
    let mut all_same_alloc = !level0_bases.is_empty();
    for &base in level0_bases {
        match analysis.roots.root_of(base) {
            ObjectRoot::Alloc(a) => {
                let Some(InstKind::Alloc { count, .. }) = f.inst(a).map(|i| &i.kind) else {
                    unreachable!("alloc root is an alloc");
                };
                let inv = match &f.value(*count).kind {
                    ValueKind::Arg { .. } | ValueKind::Const(_) => true,
                    ValueKind::Inst(ci) => {
                        !analysis.loops.get(iv.in_loop).contains(ci.block)
                            && analysis
                                .dom
                                .dominates(ci.block, analysis.loops.get(iv.in_loop).header)
                    }
                };
                if !inv {
                    all_same_alloc = false;
                    break;
                }
                match alloc_count {
                    None => alloc_count = Some(*count),
                    Some(c) if c == *count => {}
                    Some(_) => {
                        all_same_alloc = false;
                        break;
                    }
                }
            }
            _ => {
                all_same_alloc = false;
                break;
            }
        }
    }
    if all_same_alloc {
        if let Some(count) = alloc_count {
            if iv.step == 1 || iv.step == -1 {
                return Ok(ClampSource::AllocCount { count });
            }
        }
    }

    // Loop bound: single termination condition over a canonical IV.
    if let Some(b) = analysis.ivs.bound_of(iv.phi) {
        if iv.step == 1
            && matches!(
                b.cont_pred,
                Pred::Slt | Pred::Sle | Pred::Ult | Pred::Ule | Pred::Ne
            )
        {
            return Ok(ClampSource::LoopBound {
                bound: b.bound,
                strict: b.is_strict(),
                unsigned: matches!(b.cont_pred, Pred::Ult | Pred::Ule),
            });
        }
        return Err(SkipReason::NotCanonicalIv);
    }
    Err(SkipReason::NoSizeInfo)
}
