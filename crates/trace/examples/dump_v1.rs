//! Dev tool: re-encode a v2 trace file under the uncompressed v1
//! layout (for compression-ratio calibration against external coders).
//!
//! ```sh
//! cargo run --release -p swpf-trace --example dump_v1 -- in.trace out.v1
//! ```

fn main() {
    let mut args = std::env::args().skip(1);
    let (inp, out) = (args.next().expect("in"), args.next().expect("out"));
    let bytes = std::fs::read(&inp).expect("read input trace");
    let trace = swpf_trace::Trace::from_bytes(&bytes).expect("decode v2");
    std::fs::write(&out, trace.to_bytes_v1()).expect("write v1");
}
