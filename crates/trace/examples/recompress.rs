//! Dev tool: report a trace file's size under the v1 and (current) v2
//! encoders — for compression-ratio measurement.
//!
//! ```sh
//! cargo run --release -p swpf-trace --example recompress -- file.trace...
//! ```

fn main() {
    for path in std::env::args().skip(1) {
        let bytes = std::fs::read(&path).expect("read trace");
        let trace = swpf_trace::Trace::from_bytes(&bytes).expect("decode");
        let v1 = trace.to_bytes_v1().len();
        let v2 = trace.to_bytes().len();
        #[allow(clippy::cast_precision_loss)]
        let ratio = v1 as f64 / v2 as f64;
        println!("{path}: v1 {v1} -> v2 {v2} ({ratio:.3}x)");
    }
}
