//! The streaming-replay memory contract: draining a v2 trace file
//! through [`StreamingReplay`] keeps peak live heap bounded by the
//! block window — independent of trace length — while the full reader
//! (`Trace::from_bytes`) necessarily materialises the whole payload.
//!
//! Enforced with a counting global allocator; this lives in its own
//! integration-test binary so the allocator hook cannot interfere with
//! any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use swpf_ir::interp::{Event, EventKind};
use swpf_ir::ValueId;
use swpf_trace::{StreamingReplay, Trace, TraceRecorder, BLOCK_TARGET};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(p, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A loop-shaped stream: one hot pc issuing strided loads, with a
/// branch closing each iteration — periodic like real kernels, so the
/// payload is long but the operand dictionary stays tiny.
fn record(n_events: u64) -> Trace {
    let mut rec = TraceRecorder::new(1, 0x5eed);
    for i in 0..n_events {
        let kind = if i % 8 == 7 {
            EventKind::Branch { taken: true }
        } else {
            EventKind::Load {
                addr: 0x10_0000 + (i * 37) % (1 << 20),
                size: 8,
            }
        };
        let e = Event {
            pc: 40 + (i % 8),
            frame: 0,
            result: ValueId((40 + i % 8) as u32),
            kind,
            operands: &[],
        };
        rec.stream(0).push(&e);
        rec.stream(0).end_step();
    }
    rec.finish()
}

/// Record `n_events`, write the v2 file, then measure the peak heap
/// growth while streaming every event back. Returns
/// `(uncompressed payload bytes, streaming peak delta)`.
fn measure(n_events: u64) -> (usize, usize) {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "swpf_memtest_{}_{n_events}.trace",
        std::process::id()
    ));
    let payload = {
        let trace = record(n_events);
        let bytes = trace.to_bytes();
        std::fs::write(&path, &bytes).expect("trace written");
        trace.payload_bytes()
    };
    // Everything from the recording phase is dropped; the baseline is
    // whatever the harness itself keeps alive.
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let mut seen = 0u64;
    {
        let replay = StreamingReplay::open(&path).expect("streaming open");
        assert_eq!(replay.events(0), n_events);
        let mut cursor = replay.cursor(0).expect("cursor opens");
        while let Some((ev, _)) = cursor.next_event().expect("stream decodes") {
            // Touch the event so the decode cannot be optimised away.
            seen += u64::from(!matches!(ev.kind, EventKind::Alloc));
        }
    }
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(base);
    std::fs::remove_file(&path).ok();
    assert_eq!(seen, n_events);
    (payload, peak)
}

#[test]
fn streaming_peak_is_block_bounded_and_length_independent() {
    let (short_payload, short_peak) = measure(60_000);
    let (long_payload, long_peak) = measure(1_200_000);
    // The long trace really is much bigger uncompressed…
    assert!(
        long_payload > 10 * short_payload,
        "test setup: payloads {short_payload} vs {long_payload}"
    );
    assert!(
        long_payload > 8 * BLOCK_TARGET,
        "test setup: long trace must span many blocks, payload {long_payload}"
    );
    // …but the streaming window is a small multiple of one block
    // (window + compressed scratch + drain slack), nowhere near the
    // payload the full reader would materialise…
    assert!(
        long_peak < 8 * BLOCK_TARGET,
        "streaming peak {long_peak} exceeds the block-window bound"
    );
    assert!(
        long_peak < long_payload / 4,
        "streaming peak {long_peak} vs payload {long_payload}"
    );
    // …and is independent of trace length: 20x the events must not
    // move the peak by more than 2x (allocator rounding slack).
    assert!(
        long_peak <= short_peak.saturating_mul(2) + BLOCK_TARGET,
        "peak grew with trace length: {short_peak} -> {long_peak}"
    );
}
