//! Property tests for the trace codec: encode → decode must be the
//! identity on arbitrary event streams (varint boundaries, delta sign
//! flips, empty and multi-core streams, block-boundary straddles in the
//! v2 envelope), single-bit corruption anywhere in the file must be
//! caught, truncation anywhere must be detected, and v1 envelopes must
//! keep decoding.

use proptest::prelude::*;
use swpf_ir::interp::{Event, EventKind};
use swpf_ir::ValueId;
use swpf_trace::{StreamEncoder, StreamingReplay, Trace, TraceRecorder};

/// An owned event plus its step-boundary flag, the unit the codec
/// round-trips.
#[derive(Debug, Clone, PartialEq)]
struct OwnedEvent {
    pc: u64,
    frame: u64,
    result: ValueId,
    kind: EventKind,
    ops: Vec<ValueId>,
    end_step: bool,
}

impl OwnedEvent {
    fn as_event(&self) -> Event<'_> {
        Event {
            pc: self.pc,
            frame: self.frame,
            result: self.result,
            kind: self.kind,
            operands: &self.ops,
        }
    }
}

/// Deterministic xorshift stream for deriving adversarial event fields
/// from one proptest-drawn seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x.wrapping_mul(0x94d0_49bb_1331_11eb) ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Values that stress the varint and zigzag boundaries: single-byte
/// edges, multi-byte edges, and full-width extremes, so consecutive
/// draws force both large positive and large negative deltas.
const BOUNDARY: [u64; 10] = [
    0,
    1,
    0x7f,
    0x80,
    0x3fff,
    0x4000,
    0xffff_ffff,
    1 << 32,
    u64::MAX - 1,
    u64::MAX,
];

fn gen_u64(rng: &mut Rng) -> u64 {
    if rng.below(3) == 0 {
        BOUNDARY[rng.below(BOUNDARY.len() as u64) as usize]
    } else {
        rng.next()
    }
}

fn gen_event(rng: &mut Rng) -> OwnedEvent {
    let pc = gen_u64(rng);
    let kind = match rng.below(8) {
        0 => EventKind::Alu,
        1 => EventKind::Load {
            addr: gen_u64(rng),
            size: 1 << rng.below(4),
        },
        2 => EventKind::Store {
            addr: gen_u64(rng),
            size: 1 << rng.below(4),
        },
        3 => EventKind::Prefetch {
            addr: gen_u64(rng),
            valid: rng.below(2) == 0,
        },
        4 => EventKind::Branch {
            taken: rng.below(2) == 0,
        },
        5 => EventKind::Call,
        6 => EventKind::Ret,
        _ => EventKind::Alloc,
    };
    // Mostly the engine invariant (result == low pc bits), sometimes an
    // arbitrary explicit result.
    let result = if rng.below(4) == 0 {
        ValueId(rng.next() as u32)
    } else {
        ValueId((pc & 0xffff_ffff) as u32)
    };
    // Operand lists repeat per pc most of the time (dictionary reuse)
    // but occasionally change for the same pc (the phi case).
    let ops = (0..rng.below(5))
        .map(|_| ValueId((rng.below(1 << 20)) as u32))
        .collect();
    OwnedEvent {
        pc,
        frame: gen_u64(rng),
        result,
        kind,
        ops,
        end_step: rng.below(3) != 0,
    }
}

/// Build a stream that revisits a small set of pcs (exercising the
/// operand dictionary, including same-pc-different-operands updates)
/// interleaved with fresh adversarial events.
fn gen_stream(rng: &mut Rng, len: usize) -> Vec<OwnedEvent> {
    let mut events = Vec::with_capacity(len);
    let mut seen: Vec<OwnedEvent> = Vec::new();
    for _ in 0..len {
        let ev = if !seen.is_empty() && rng.below(2) == 0 {
            let mut ev = seen[rng.below(seen.len() as u64) as usize].clone();
            if rng.below(4) == 0 {
                // Same pc, different incoming: the phi-move shape.
                ev.ops = (0..rng.below(4))
                    .map(|_| ValueId(rng.next() as u32))
                    .collect();
            }
            ev
        } else {
            let ev = gen_event(rng);
            seen.push(ev.clone());
            ev
        };
        events.push(ev);
    }
    if let Some(last) = events.last_mut() {
        last.end_step = true;
    }
    events
}

fn encode(streams: &[Vec<OwnedEvent>], fingerprint: u64) -> Trace {
    let mut rec = TraceRecorder::new(streams.len(), fingerprint);
    for (core, events) in streams.iter().enumerate() {
        let enc: &mut StreamEncoder = rec.stream(core);
        for ev in events {
            enc.push(&ev.as_event());
            if ev.end_step {
                enc.end_step();
            }
        }
    }
    rec.finish()
}

/// Write `bytes` to a unique temp file, run `f` on the path, then
/// remove the file (streaming readers work from disk only).
fn with_temp_file<R>(bytes: &[u8], f: impl FnOnce(&std::path::Path) -> R) -> R {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "swpf_roundtrip_{}_{}.trace",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("temp trace written");
    let r = f(&path);
    std::fs::remove_file(&path).ok();
    r
}

/// Drain every core of a streaming reader, asserting the events match
/// `streams` exactly (the bounded-memory path must agree with the
/// in-memory cursor byte for byte).
fn assert_streams_to(replay: &StreamingReplay, streams: &[Vec<OwnedEvent>]) {
    assert_eq!(replay.num_cores(), streams.len());
    for (core, events) in streams.iter().enumerate() {
        assert_eq!(replay.events(core), events.len() as u64, "core {core}");
        let mut cursor = replay.cursor(core).expect("cursor opens");
        for (i, want) in events.iter().enumerate() {
            let (got, end_step) = cursor
                .next_event()
                .unwrap_or_else(|e| panic!("core {core} event {i}: {e}"))
                .unwrap_or_else(|| panic!("core {core} ended early at {i}"));
            assert_eq!(got.pc, want.pc, "core {core} event {i} pc");
            assert_eq!(got.frame, want.frame, "core {core} event {i} frame");
            assert_eq!(got.result, want.result, "core {core} event {i} result");
            assert_eq!(got.kind, want.kind, "core {core} event {i} kind");
            assert_eq!(got.operands, want.ops, "core {core} event {i} ops");
            assert_eq!(end_step, want.end_step, "core {core} event {i} step");
        }
        assert!(cursor.next_event().unwrap().is_none());
    }
}

fn assert_decodes_to(trace: &Trace, streams: &[Vec<OwnedEvent>]) {
    assert_eq!(trace.num_cores(), streams.len());
    for (core, events) in streams.iter().enumerate() {
        assert_eq!(trace.events(core), events.len() as u64, "core {core}");
        let mut cursor = trace.cursor(core).expect("stream exists");
        for (i, want) in events.iter().enumerate() {
            let (got, end_step) = cursor
                .next_event()
                .unwrap_or_else(|e| panic!("core {core} event {i}: {e}"))
                .unwrap_or_else(|| panic!("core {core} ended early at {i}"));
            assert_eq!(got.pc, want.pc, "core {core} event {i} pc");
            assert_eq!(got.frame, want.frame, "core {core} event {i} frame");
            assert_eq!(got.result, want.result, "core {core} event {i} result");
            assert_eq!(got.kind, want.kind, "core {core} event {i} kind");
            assert_eq!(got.operands, want.ops, "core {core} event {i} ops");
            assert_eq!(end_step, want.end_step, "core {core} event {i} step");
        }
        assert!(cursor.next_event().unwrap().is_none());
    }
}

proptest! {
    // encode → to_bytes → from_bytes → decode is the identity, for
    // multi-core traces of adversarial streams (including empty cores
    // and zero-core traces).
    #[test]
    fn round_trip_is_identity(seed: u64, n_cores in 0usize..4, len in 0usize..300) {
        let mut rng = Rng(seed);
        let streams: Vec<Vec<OwnedEvent>> = (0..n_cores)
            .map(|c| gen_stream(&mut rng, if c == 0 { len } else { len / (c + 1) }))
            .collect();
        let fp = rng.next();
        let trace = encode(&streams, fp);
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("fresh trace decodes");
        prop_assert_eq!(back.fingerprint, fp);
        assert_decodes_to(&back, &streams);
    }

    // The same identity holds through the v2 block structure at
    // adversarially tiny block sizes (every event straddles a block
    // boundary somewhere) — for the full reader and for the
    // block-at-a-time streaming reader.
    #[test]
    fn blocked_round_trip_straddles_boundaries(
        seed: u64,
        n_cores in 0usize..4,
        len in 0usize..160,
        block_size in 1usize..48,
    ) {
        let mut rng = Rng(seed);
        let streams: Vec<Vec<OwnedEvent>> = (0..n_cores)
            .map(|c| gen_stream(&mut rng, if c == 0 { len } else { len / (c + 1) }))
            .collect();
        let fp = rng.next();
        let trace = encode(&streams, fp);
        let bytes = trace.to_bytes_with_block_size(block_size);
        let back = Trace::from_bytes(&bytes).expect("tiny blocks decode");
        prop_assert_eq!(back.fingerprint, fp);
        assert_decodes_to(&back, &streams);
        with_temp_file(&bytes, |path| {
            let replay = StreamingReplay::open(path).expect("streaming open");
            assert_eq!(replay.fingerprint(), fp);
            assert_streams_to(&replay, &streams);
        });
    }

    // A v1 (uncompressed) envelope of the same recording still decodes
    // to an identical trace: existing cache corpora keep replaying.
    #[test]
    fn v1_envelope_decodes_identically(seed: u64, n_cores in 0usize..3, len in 0usize..120) {
        let mut rng = Rng(seed);
        let streams: Vec<Vec<OwnedEvent>> = (0..n_cores)
            .map(|_| gen_stream(&mut rng, len))
            .collect();
        let trace = encode(&streams, 5);
        let from_v1 = Trace::from_bytes(&trace.to_bytes_v1()).expect("v1 decodes");
        prop_assert_eq!(&from_v1, &trace);
        let from_v2 = Trace::from_bytes(&trace.to_bytes()).expect("v2 decodes");
        prop_assert_eq!(&from_v1, &from_v2);
        assert_decodes_to(&from_v1, &streams);
    }

    // Adjacent events with full-width pc/address jumps in both
    // directions survive the delta encoding.
    #[test]
    fn delta_sign_flips_round_trip(seed: u64) {
        let mut rng = Rng(seed);
        let mut events = Vec::new();
        for i in 0..BOUNDARY.len() * BOUNDARY.len() {
            let a = BOUNDARY[i / BOUNDARY.len()];
            let b = BOUNDARY[i % BOUNDARY.len()];
            events.push(OwnedEvent {
                pc: a,
                frame: b,
                result: ValueId((a & 0xffff_ffff) as u32),
                kind: EventKind::Load { addr: b, size: 8 },
                ops: vec![],
                end_step: true,
            });
            events.push(OwnedEvent {
                pc: b,
                frame: a,
                result: ValueId(rng.next() as u32),
                kind: EventKind::Store { addr: a, size: 1 },
                ops: vec![ValueId(rng.below(1 << 10) as u32)],
                end_step: true,
            });
        }
        let streams = vec![events];
        let trace = encode(&streams, 0);
        assert_decodes_to(&Trace::from_bytes(&trace.to_bytes()).unwrap(), &streams);
    }

    // Any single flipped bit, anywhere in the v2 envelope — header,
    // section prologues, block headers, compressed payload, footer —
    // is caught by `from_bytes` (the footer fold covers the header
    // fields, each block checksum covers its uncompressed bytes, and
    // the structure is length-delimited end to end).
    #[test]
    fn corrupted_byte_is_rejected(seed: u64, len in 1usize..200, block_size in 1usize..64) {
        let mut rng = Rng(seed);
        let n_cores = 1 + rng.below(3) as usize;
        let streams: Vec<Vec<OwnedEvent>> =
            (0..n_cores).map(|_| gen_stream(&mut rng, len)).collect();
        let trace = encode(&streams, 1);
        let mut bytes = trace.to_bytes_with_block_size(block_size);
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] ^= 1u8 << rng.below(8);
        prop_assert!(
            Trace::from_bytes(&bytes).is_err(),
            "flipping a bit of byte {} must be detected",
            at
        );
    }

    // Truncating the envelope anywhere never panics and never yields a
    // valid trace — through the full reader, and through the streaming
    // reader (whose open() sees only headers, so the damage may only
    // surface while draining a cursor).
    #[test]
    fn truncation_is_always_detected(seed: u64, len in 1usize..100, block_size in 1usize..48) {
        let mut rng = Rng(seed);
        let streams = vec![gen_stream(&mut rng, len)];
        let bytes = encode(&streams, 9).to_bytes_with_block_size(block_size);
        let cut = rng.below(bytes.len() as u64) as usize;
        prop_assert!(Trace::from_bytes(&bytes[..cut]).is_err());
        with_temp_file(&bytes[..cut], |path| {
            let streamed: Result<(), swpf_trace::TraceError> = (|| {
                let replay = StreamingReplay::open(path)?;
                for core in 0..replay.num_cores() {
                    let mut cursor = replay.cursor(core)?;
                    while cursor.next_event()?.is_some() {}
                }
                Ok(())
            })();
            assert!(streamed.is_err(), "cut at {cut} must not stream cleanly");
        });
    }
}
