//! Block-level compression for the v2 trace envelope.
//!
//! The varint/delta/dictionary stream (`stream`) already removes most
//! field-level redundancy, but loop-structured kernels still emit long
//! *byte-level* repeats: each iteration encodes the same tag/delta
//! pattern, so the payload is highly periodic. The v2 envelope
//! therefore chops each core's payload into fixed-size blocks
//! ([`BLOCK_TARGET`] uncompressed bytes) and compresses each block with
//! a small self-contained LZ77 coder — no external crates, no shared
//! state between blocks, so a reader can decode one block at a time in
//! bounded memory.
//!
//! Matching is a hash-chain search (4-byte hash heads, `prev` links,
//! [`MAX_PROBES`] candidates, most recent first) with one-step-lazy
//! parsing: a position defers its match while the next position finds a
//! strictly longer one. The token sequence the matcher produces can be
//! serialised two ways, and the writer keeps whichever is smaller:
//!
//! ## `METHOD_LZ` — byte-aligned token grammar
//!
//! A block is a sequence of (literal-run, match) pairs; the final pair
//! may omit the match when the block ends in literals:
//!
//! ```text
//! lit_len   varint         number of literal bytes that follow (may be 0)
//! lit       lit_len bytes
//! match_len varint         >= MIN_MATCH; absent iff the block is complete
//! offset    varint         1 ..= bytes produced so far in THIS block
//! ```
//!
//! ## `METHOD_LZH` — entropy-coded tokens
//!
//! The same tokens under two canonical length-limited Huffman codes
//! (`huff`): a 318-symbol literal/length alphabet (0–255 literal byte,
//! 256+ a match-length bucket) and a 60-symbol offset alphabet, both
//! geometric past their direct range with the exponent's low bits sent
//! as raw extra bits — the deflate shape, without the length caps.
//! The wire layout is the two tables' code lengths, one nibble per
//! symbol (189 bytes), then one MSB-first bitstream of symbols: a
//! literal stands alone, a length symbol is followed by its extra
//! bits, an offset symbol, and the offset's extra bits. No terminator
//! — the decoder stops at the block's known raw length, and the final
//! byte's padding bits must be zero.
//!
//! Offsets never reach outside the block, so corruption cannot
//! propagate across block boundaries and decompression needs only the
//! current block's output. The decoder knows the uncompressed length
//! from the block header and stops exactly there; any mismatch —
//! over-long runs, out-of-range offsets, trailing or nonzero-padding
//! compressed bytes — is a [`TraceError::Corrupt`].
//!
//! Blocks that do not shrink are stored raw ([`METHOD_STORED`]), so
//! pathological inputs cost at most the 21-byte block header.

use crate::huff::{build_codes, code_lengths, BitReader, BitWriter, Decoder};
use crate::wire::{get_varint, put_varint};
use crate::TraceError;

/// Uncompressed block size the default writer targets. Small enough to
/// bound a streaming reader's window, large enough that the per-block
/// header and the restarted LZ window cost well under 1%.
pub const BLOCK_TARGET: usize = 64 << 10;

/// Block stored raw (compression did not shrink it).
/// Observability counter name for an encoded block's method.
pub(crate) fn method_counter(method: u8) -> &'static str {
    match method {
        METHOD_LZ => "trace.encode.block.lz",
        METHOD_LZH => "trace.encode.block.lzh",
        _ => "trace.encode.block.stored",
    }
}

/// Observability counter name for a decoded block's method.
pub(crate) fn method_counter_decode(method: u8) -> &'static str {
    match method {
        METHOD_LZ => "trace.decode.block.lz",
        METHOD_LZH => "trace.decode.block.lzh",
        _ => "trace.decode.block.stored",
    }
}

pub(crate) const METHOD_STORED: u8 = 0;
/// Block compressed with the byte-aligned LZ token grammar.
pub(crate) const METHOD_LZ: u8 = 1;
/// Block compressed with Huffman-coded LZ tokens.
pub(crate) const METHOD_LZH: u8 = 2;

/// Shortest match worth encoding: lit_len + match_len + offset cost at
/// least 3 bytes in the byte-aligned grammar, so 4-byte matches are the
/// break-even point.
const MIN_MATCH: usize = 4;

/// log2 of the hash head table (one u32 slot per bucket).
const HASH_BITS: u32 = 16;

/// Hash-chain candidates examined per position. Periodic streams put
/// the best match near the chain head, so a modest budget captures
/// almost all of the gain of an exhaustive search.
const MAX_PROBES: usize = 48;

/// Sanity ceiling on block lengths read from untrusted headers, far
/// above anything the writer produces, so corrupt headers cannot force
/// multi-GiB allocations before the checksum is consulted.
pub(crate) const MAX_BLOCK: usize = 1 << 30;

// ---- METHOD_LZH symbol spaces ----------------------------------------
//
// Match lengths are sent as (length - MIN_MATCH): 0..8 direct, then two
// buckets per power of two with floor(log2)-1 extra bits. Offsets are
// sent as (offset - 1): 0..4 direct, then the same geometric shape.
// Both cover the full MAX_BLOCK range, so no length cap splits matches.

/// Length symbols: 8 direct + 2 per octave for exponents 3..=29.
const LEN_SYMS: usize = 8 + 2 * 27;
/// Literal/length alphabet: 256 literals then length buckets.
const LITLEN_SYMS: usize = 256 + LEN_SYMS;
/// Offset symbols: 4 direct + 2 per octave for exponents 2..=29.
const OFF_SYMS: usize = 4 + 2 * 28;
/// Nibble-packed size of both code-length tables.
const TABLE_BYTES: usize = (LITLEN_SYMS + OFF_SYMS).div_ceil(2);

/// Split `v` into (symbol index, extra-bit count, extra-bit value)
/// with `direct` un-bucketed low values, two buckets per octave after.
#[inline]
fn geo_sym(v: u32, direct: u32) -> (u32, u32, u32) {
    if v < direct {
        (v, 0, 0)
    } else {
        let k = 31 - v.leading_zeros();
        let eb = k - 1;
        let low = v - (1 << k);
        let first_k = direct.trailing_zeros(); // direct is a power of two
        (
            direct + 2 * (k - first_k) + (low >> eb),
            eb,
            low & ((1 << eb) - 1),
        )
    }
}

/// Inverse of [`geo_sym`]: (base value, extra-bit count).
#[inline]
fn geo_base(sym: u32, direct: u32) -> (u32, u32) {
    if sym < direct {
        (sym, 0)
    } else {
        let t = sym - direct;
        let k = direct.trailing_zeros() + t / 2;
        let half = t & 1;
        ((1 << k) + (half << (k - 1)), k - 1)
    }
}

// ---- tokenizer --------------------------------------------------------

/// One parsed token: `lit_len` literal bytes (starting where the
/// previous token ended), then a match of `match_len` bytes at `dist`
/// — except the final token of a block, which may carry `match_len ==
/// 0` for a trailing literal run.
#[derive(Clone, Copy)]
struct Token {
    lit_len: u32,
    match_len: u32,
    dist: u32,
}

/// Reusable compressor scratch: hash heads, chain links, the token
/// list, and both serialisations. One instance per writer, reset per
/// block, so a multi-block encode allocates O(1) times.
#[derive(Default)]
pub(crate) struct MatchScratch {
    head: Vec<u32>,
    prev: Vec<u32>,
    tokens: Vec<Token>,
    lz: Vec<u8>,
    lzh: Vec<u8>,
}

#[inline(always)]
fn load4(raw: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([raw[at], raw[at + 1], raw[at + 2], raw[at + 3]])
}

#[inline(always)]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

#[inline(always)]
fn insert(s: &mut MatchScratch, raw: &[u8], i: usize) {
    let h = hash4(load4(raw, i));
    s.prev[i] = s.head[h];
    s.head[h] = i as u32;
}

/// Length of the common prefix of `raw[a..]` and `raw[i..]`, capped at
/// `max`. `a < i`, so the u64 fast path never reads past `i + max`.
#[inline]
fn common_len(raw: &[u8], a: usize, i: usize, max: usize) -> usize {
    let mut l = 0usize;
    while l + 8 <= max {
        let x = u64::from_le_bytes(raw[a + l..a + l + 8].try_into().unwrap());
        let y = u64::from_le_bytes(raw[i + l..i + l + 8].try_into().unwrap());
        let d = x ^ y;
        if d != 0 {
            return l + (d.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max && raw[a + l] == raw[i + l] {
        l += 1;
    }
    l
}

/// Best match for position `i` among the chain candidates: longest
/// wins, most-recent (smallest offset) breaks ties. Only matches of at
/// least `min_len` qualify.
fn best_match(s: &MatchScratch, raw: &[u8], i: usize, min_len: usize) -> Option<(usize, usize)> {
    let max = raw.len() - i;
    if max < min_len {
        return None;
    }
    let here = load4(raw, i);
    let mut cand = s.head[hash4(here)];
    let mut best_len = min_len - 1;
    let mut best_at = usize::MAX;
    let mut probes = MAX_PROBES;
    while cand != u32::MAX && probes > 0 {
        probes -= 1;
        let c = cand as usize;
        // Cheap rejection: to beat `best_len` the candidate must agree
        // at that offset (and still start with the same 4 bytes).
        if raw.get(c + best_len) == raw.get(i + best_len) && load4(raw, c) == here {
            let l = common_len(raw, c, i, max);
            if l > best_len {
                best_len = l;
                best_at = c;
                if l == max {
                    break;
                }
            }
        }
        cand = s.prev[c];
    }
    (best_at != usize::MAX).then(|| (best_len, i - best_at))
}

/// Parse `raw` into `s.tokens` with lazy hash-chain matching.
fn tokenize(raw: &[u8], s: &mut MatchScratch) {
    s.tokens.clear();
    s.head.clear();
    s.head.resize(1 << HASH_BITS, u32::MAX);
    s.prev.clear();
    s.prev.resize(raw.len(), u32::MAX);
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= raw.len() {
        let found = best_match(s, raw, i, MIN_MATCH);
        insert(s, raw, i);
        let Some((mut len, mut dist)) = found else {
            i += 1;
            continue;
        };
        // Lazy step: while the next position matches strictly longer,
        // emit this byte as a literal and carry the better match.
        while i + 1 + MIN_MATCH <= raw.len() {
            let better = best_match(s, raw, i + 1, len + 1);
            insert(s, raw, i + 1);
            match better {
                Some((l2, d2)) => {
                    i += 1;
                    len = l2;
                    dist = d2;
                }
                None => break,
            }
        }
        s.tokens.push(Token {
            lit_len: (i - lit_start) as u32,
            match_len: len as u32,
            dist: dist as u32,
        });
        // Seed the chains across the matched bytes so the next
        // iteration of a periodic stream finds this occurrence.
        let end = i + len;
        let mut j = i + 2;
        while j < end && j + MIN_MATCH <= raw.len() {
            insert(s, raw, j);
            j += 1;
        }
        i = end;
        lit_start = end;
    }
    if lit_start < raw.len() {
        s.tokens.push(Token {
            lit_len: (raw.len() - lit_start) as u32,
            match_len: 0,
            dist: 0,
        });
    }
}

// ---- serialisers ------------------------------------------------------

/// Serialise the token list under the byte-aligned `METHOD_LZ` grammar.
fn encode_lz(raw: &[u8], tokens: &[Token], out: &mut Vec<u8>) {
    let mut pos = 0usize;
    for t in tokens {
        put_varint(out, u64::from(t.lit_len));
        out.extend_from_slice(&raw[pos..pos + t.lit_len as usize]);
        pos += t.lit_len as usize;
        if t.match_len > 0 {
            put_varint(out, u64::from(t.match_len));
            put_varint(out, u64::from(t.dist));
            pos += t.match_len as usize;
        }
    }
}

/// Serialise the token list under `METHOD_LZH`: nibble-packed code
/// lengths for both alphabets, then the Huffman bitstream.
fn encode_lzh(raw: &[u8], tokens: &[Token], out: &mut Vec<u8>) {
    let mut ll_freq = vec![0u32; LITLEN_SYMS];
    let mut off_freq = vec![0u32; OFF_SYMS];
    let mut pos = 0usize;
    for t in tokens {
        for &b in &raw[pos..pos + t.lit_len as usize] {
            ll_freq[b as usize] += 1;
        }
        pos += t.lit_len as usize;
        if t.match_len > 0 {
            let (s, _, _) = geo_sym(t.match_len - MIN_MATCH as u32, 8);
            ll_freq[256 + s as usize] += 1;
            let (s, _, _) = geo_sym(t.dist - 1, 4);
            off_freq[s as usize] += 1;
            pos += t.match_len as usize;
        }
    }

    let ll_lens = code_lengths(&ll_freq);
    let off_lens = code_lengths(&off_freq);
    let mut nibbles = ll_lens.iter().chain(off_lens.iter());
    for _ in 0..TABLE_BYTES {
        let lo = *nibbles.next().unwrap_or(&0);
        let hi = *nibbles.next().unwrap_or(&0);
        out.push(lo | (hi << 4));
    }

    let ll_codes = build_codes(&ll_lens);
    let off_codes = build_codes(&off_lens);
    let mut w = BitWriter::new(out);
    let mut pos = 0usize;
    for t in tokens {
        for &b in &raw[pos..pos + t.lit_len as usize] {
            w.put(ll_codes[b as usize], u32::from(ll_lens[b as usize]));
        }
        pos += t.lit_len as usize;
        if t.match_len > 0 {
            let (s, eb, ev) = geo_sym(t.match_len - MIN_MATCH as u32, 8);
            let s = 256 + s as usize;
            w.put(ll_codes[s], u32::from(ll_lens[s]));
            w.put(ev, eb);
            let (s, eb, ev) = geo_sym(t.dist - 1, 4);
            w.put(off_codes[s as usize], u32::from(off_lens[s as usize]));
            w.put(ev, eb);
            pos += t.match_len as usize;
        }
    }
    w.finish();
}

/// Compress `raw`, returning the best of the stored/LZ/LZH encodings —
/// `(method, bytes)`, where [`METHOD_STORED`] hands `raw` itself back.
pub(crate) fn compress_best<'a>(raw: &'a [u8], s: &'a mut MatchScratch) -> (u8, &'a [u8]) {
    tokenize(raw, s);
    s.lz.clear();
    encode_lz(raw, &s.tokens, &mut s.lz);
    s.lzh.clear();
    encode_lzh(raw, &s.tokens, &mut s.lzh);
    if s.lzh.len() < s.lz.len() && s.lzh.len() < raw.len() {
        (METHOD_LZH, &s.lzh)
    } else if s.lz.len() < raw.len() {
        (METHOD_LZ, &s.lz)
    } else {
        (METHOD_STORED, raw)
    }
}

// ---- decoders ---------------------------------------------------------

/// Copy a resolved match onto the end of `out`. Bounds are already
/// validated: `1 <= off <= out.len() - base`.
#[inline]
fn copy_match(out: &mut Vec<u8>, off: usize, mlen: usize) {
    if off >= mlen {
        let from = out.len() - off;
        out.extend_from_within(from..from + mlen);
    } else {
        // Overlapping match (run-length shape): copy byte-wise.
        for _ in 0..mlen {
            let b = out[out.len() - off];
            out.push(b);
        }
    }
}

/// Decompress one `METHOD_LZ` block, appending exactly `raw_len` bytes
/// to `out`. Match offsets are resolved within the block (never before
/// `out`'s length at entry), so blocks decode independently.
///
/// # Errors
/// [`TraceError::Truncated`] if `comp` ends mid-token, or
/// [`TraceError::Corrupt`] on any structural violation.
pub(crate) fn decompress_into(
    comp: &[u8],
    raw_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), TraceError> {
    let base = out.len();
    out.reserve(raw_len);
    let mut pos = 0usize;
    while out.len() - base < raw_len {
        let lit = get_varint(comp, &mut pos)?;
        let lit = usize::try_from(lit)
            .ok()
            .filter(|&l| l <= raw_len - (out.len() - base))
            .ok_or(TraceError::Corrupt("literal run overflows block"))?;
        let end = pos
            .checked_add(lit)
            .filter(|&e| e <= comp.len())
            .ok_or(TraceError::Truncated)?;
        out.extend_from_slice(&comp[pos..end]);
        pos = end;
        if out.len() - base == raw_len {
            break;
        }
        let mlen = get_varint(comp, &mut pos)?;
        let mlen = usize::try_from(mlen)
            .ok()
            .filter(|&m| m >= MIN_MATCH && m <= raw_len - (out.len() - base))
            .ok_or(TraceError::Corrupt("match length invalid for block"))?;
        let off = get_varint(comp, &mut pos)?;
        let off = usize::try_from(off)
            .ok()
            .filter(|&o| o >= 1 && o <= out.len() - base)
            .ok_or(TraceError::Corrupt("match offset outside block"))?;
        copy_match(out, off, mlen);
    }
    if pos != comp.len() {
        return Err(TraceError::Corrupt("trailing bytes in compressed block"));
    }
    Ok(())
}

/// Decompress one `METHOD_LZH` block, appending exactly `raw_len`
/// bytes to `out`. Same independence and strictness guarantees as
/// [`decompress_into`], plus the bitstream must consume its final byte
/// with zero padding.
///
/// # Errors
/// [`TraceError::Truncated`] or [`TraceError::Corrupt`] as above.
pub(crate) fn decompress_lzh_into(
    comp: &[u8],
    raw_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), TraceError> {
    let base = out.len();
    out.reserve(raw_len);
    let tables = comp.get(..TABLE_BYTES).ok_or(TraceError::Truncated)?;
    let mut lens = [0u8; LITLEN_SYMS + OFF_SYMS];
    for (i, l) in lens.iter_mut().enumerate() {
        let b = tables[i / 2];
        *l = if i % 2 == 0 { b & 0xf } else { b >> 4 };
    }
    let ll = Decoder::new(&lens[..LITLEN_SYMS])?;
    let off = Decoder::new(&lens[LITLEN_SYMS..])?;
    let mut r = BitReader::new(&comp[TABLE_BYTES..]);
    while out.len() - base < raw_len {
        let sym = u32::from(ll.read_symbol(&mut r)?);
        if sym < 256 {
            out.push(sym as u8);
            continue;
        }
        let (b, eb) = geo_base(sym - 256, 8);
        let mlen = MIN_MATCH + usize::try_from(b + r.get(eb)?).unwrap_or(usize::MAX);
        if mlen > raw_len - (out.len() - base) {
            return Err(TraceError::Corrupt("match length invalid for block"));
        }
        let (b, eb) = geo_base(u32::from(off.read_symbol(&mut r)?), 4);
        let dist = 1usize + usize::try_from(b + r.get(eb)?).unwrap_or(usize::MAX);
        if dist > out.len() - base {
            return Err(TraceError::Corrupt("match offset outside block"));
        }
        copy_match(out, dist, mlen);
    }
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trip through `compress_best`, decoding with whichever
    /// method it picked, and also force-check the `METHOD_LZ`
    /// serialisation of the same tokens.
    fn round_trip(raw: &[u8]) -> Vec<u8> {
        let mut s = MatchScratch::default();
        let (method, comp) = compress_best(raw, &mut s);
        let mut out = Vec::new();
        match method {
            METHOD_STORED => out.extend_from_slice(comp),
            METHOD_LZ => decompress_into(comp, raw.len(), &mut out).expect("lz block decodes"),
            METHOD_LZH => {
                decompress_lzh_into(comp, raw.len(), &mut out).expect("lzh block decodes")
            }
            _ => unreachable!(),
        }
        let lz = s.lz.clone();
        if lz.len() < raw.len() {
            let mut via_lz = Vec::new();
            decompress_into(&lz, raw.len(), &mut via_lz).expect("lz serialisation decodes");
            assert_eq!(via_lz, raw, "METHOD_LZ disagrees with the tokens");
        }
        out
    }

    #[test]
    fn empty_and_tiny_blocks_round_trip() {
        for raw in [&b""[..], b"a", b"abc", b"abcd"] {
            assert_eq!(round_trip(raw), raw);
        }
    }

    #[test]
    fn periodic_data_compresses_hard() {
        let unit = b"\x11\x02\x00\x42\x07\x01";
        let raw: Vec<u8> = unit.iter().cycle().take(8192).copied().collect();
        let mut s = MatchScratch::default();
        let (method, comp) = compress_best(&raw, &mut s);
        assert!(
            comp.len() * 10 < raw.len(),
            "periodic stream must shrink >10x, got {} -> {}",
            raw.len(),
            comp.len()
        );
        let mut out = Vec::new();
        match method {
            METHOD_LZ => decompress_into(comp, raw.len(), &mut out).unwrap(),
            METHOD_LZH => decompress_lzh_into(comp, raw.len(), &mut out).unwrap(),
            _ => panic!("periodic data must compress"),
        }
        assert_eq!(out, raw);
    }

    #[test]
    fn entropy_stage_beats_byte_alignment_on_skewed_literals() {
        // Text-like data with few distinct bytes and sparse repeats:
        // the Huffman stage must win over the byte-aligned grammar.
        let mut x = 7u64;
        let raw: Vec<u8> = (0..16384)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                b"aaaabbcd"[(x >> 61) as usize]
            })
            .collect();
        let mut s = MatchScratch::default();
        let (method, comp) = compress_best(&raw, &mut s);
        assert_eq!(method, METHOD_LZH);
        let mut out = Vec::new();
        decompress_lzh_into(comp, raw.len(), &mut out).unwrap();
        assert_eq!(out, raw);
    }

    #[test]
    fn overlapping_matches_round_trip() {
        // Long single-byte run: match offset 1, length >> offset.
        let raw = vec![0xabu8; 1000];
        assert_eq!(round_trip(&raw), raw);
        // Period-2 and period-3 runs after a literal prefix.
        let mut raw = b"xy".repeat(300);
        raw.extend(b"abc".repeat(200));
        assert_eq!(round_trip(&raw), raw);
    }

    #[test]
    fn incompressible_data_survives() {
        // Deterministic pseudo-random bytes: no 4-byte repeats to speak
        // of, so mostly literals.
        let mut x = 0x1234_5678_9abc_def0u64;
        let raw: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        assert_eq!(round_trip(&raw), raw);
    }

    #[test]
    fn blocks_decode_independently_of_prior_output() {
        let raw: Vec<u8> = b"the quick brown fox ".repeat(16);
        let mut s = MatchScratch::default();
        let (method, comp) = compress_best(&raw, &mut s);
        // Appending after unrelated bytes must not let matches reach
        // back into them.
        let mut out = vec![0xff; 17];
        match method {
            METHOD_LZ => decompress_into(comp, raw.len(), &mut out).unwrap(),
            METHOD_LZH => decompress_lzh_into(comp, raw.len(), &mut out).unwrap(),
            _ => panic!("repetitive data must compress"),
        }
        assert_eq!(&out[17..], &raw[..]);
    }

    #[test]
    fn geo_buckets_are_exact_inverses() {
        for direct in [4u32, 8] {
            for v in (0..5000).chain([1 << 20, (1 << 29) - 1, 1 << 29, (1 << 30) - 4]) {
                let (sym, eb, ev) = geo_sym(v, direct);
                let (base, eb2) = geo_base(sym, direct);
                assert_eq!(eb, eb2, "extra-bit width mismatch at v={v}");
                assert_eq!(base + ev, v, "bucket round-trip failed at v={v}");
                assert!(ev < (1 << eb) || eb == 0);
            }
        }
    }

    /// The block decoders' damage contract: truncation is structurally
    /// detected, a decode that claims success produced exactly the
    /// length it promised, and no input panics. A flipped bit may
    /// legally decode — either to *different* raw bytes (the
    /// envelope's per-block checksum over the raw bytes rejects the
    /// block) or, for offset-equivalent encodings of periodic data, to
    /// the *identical* bytes (no corruption in effect). What can never
    /// happen is wrong bytes sneaking past the checksum.
    fn corruption_is_caught(raw: &[u8], comp: &[u8], decode_lzh: bool) {
        let decode = |comp: &[u8], raw_len: usize, out: &mut Vec<u8>| {
            if decode_lzh {
                decompress_lzh_into(comp, raw_len, out)
            } else {
                decompress_into(comp, raw_len, out)
            }
        };
        // Truncation anywhere.
        for cut in 0..comp.len() {
            let mut out = Vec::new();
            assert!(
                decode(&comp[..cut], raw.len(), &mut out).is_err(),
                "truncation at {cut} must be detected"
            );
        }
        // A mis-stated raw_len either errors or yields that stated
        // length — which the envelope checksum then rejects. (The
        // byte-aligned grammar always errors; the bitstream can decode
        // trailing zero padding as the first canonical code, so it may
        // "succeed" at the wrong length.)
        for wrong in [raw.len() - 1, raw.len() + 1] {
            let mut out = Vec::new();
            if decode(comp, wrong, &mut out).is_ok() {
                assert_eq!(out.len(), wrong);
                assert_ne!(out, raw);
            }
            if !decode_lzh {
                let mut out = Vec::new();
                assert!(
                    decode(comp, wrong, &mut out).is_err(),
                    "LZ grammar must reject raw_len {wrong} structurally"
                );
            }
        }
        // Every single-bit corruption: no panic, and a "successful"
        // decode honoured the length contract; the checksum disposes
        // of changed bytes, and identical bytes mean the flip hit an
        // encoding-equivalent representation.
        for at in 0..comp.len() {
            for bit in 0..8 {
                let mut bad = comp.to_vec();
                bad[at] ^= 1u8 << bit;
                let mut out = Vec::new();
                if decode(&bad, raw.len(), &mut out).is_ok() {
                    assert_eq!(out.len(), raw.len(), "flip at {at}.{bit} broke the length");
                }
            }
        }
    }

    #[test]
    fn corrupt_lz_blocks_are_rejected_not_panicked() {
        let raw = b"abcdabcdabcdabcd____abcdabcdabcd".to_vec();
        let mut s = MatchScratch::default();
        compress_best(&raw, &mut s);
        let comp = s.lz.clone();
        assert!(comp.len() < raw.len());
        corruption_is_caught(&raw, &comp, false);
    }

    #[test]
    fn corrupt_lzh_blocks_are_rejected_not_panicked() {
        let raw: Vec<u8> = b"abcdabcdabcdabcd____abcdabcdabcd"
            .iter()
            .cycle()
            .take(256)
            .copied()
            .collect();
        let mut s = MatchScratch::default();
        compress_best(&raw, &mut s);
        let comp = s.lzh.clone();
        assert!(comp.len() > TABLE_BYTES);
        corruption_is_caught(&raw, &comp, true);
    }
}
