//! Analytics over recorded retire-event streams.
//!
//! The trace corpus records exactly what the timing models consume: the
//! dynamic retire-event stream of every kernel. That makes it the
//! ground truth for *dynamic* instruction statistics — most
//! prominently, the adjacent-pair frequencies that drive the bytecode
//! tier's superinstruction catalogue (`swpf_ir::bytecode`, mined by
//! `swpf-bench`'s `mine_pairs` bin; the chosen catalogue is documented
//! in DESIGN.md).
//!
//! The reader is deliberately generic: [`PairCounter`] counts adjacent
//! pairs of any classification key, and [`count_pairs_in_trace`] drives
//! it from a [`Trace`] with a caller-supplied classifier (typically
//! `ExecImage::op_class_table`, mapping static event pcs to opcode
//! mnemonics). A classifier may return `None` to break the chain — the
//! following event then starts a fresh pair rather than pairing across
//! the gap. Chains also break at core-stream boundaries.

use crate::{Trace, TraceError};
use std::collections::HashMap;
use std::hash::Hash;
use swpf_ir::interp::Event;

/// Streaming counter of adjacent pairs `(previous, current)`.
#[derive(Debug, Clone)]
pub struct PairCounter<K> {
    prev: Option<K>,
    counts: HashMap<(K, K), u64>,
    observed: u64,
}

impl<K: Eq + Hash + Clone> Default for PairCounter<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> PairCounter<K> {
    /// An empty counter.
    #[must_use]
    pub fn new() -> Self {
        PairCounter {
            prev: None,
            counts: HashMap::new(),
            observed: 0,
        }
    }

    /// Feed the next classified event; pairs it with its predecessor
    /// (if the chain is unbroken).
    pub fn observe(&mut self, k: K) {
        self.observed += 1;
        if let Some(p) = self.prev.replace(k.clone()) {
            *self.counts.entry((p, k)).or_insert(0) += 1;
        }
    }

    /// Break the adjacency chain (stream boundary, unclassifiable
    /// event): the next observation starts a fresh pair.
    pub fn break_chain(&mut self) {
        self.prev = None;
    }

    /// Total events observed (pair count is at most `observed - 1`).
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Count for one specific pair.
    #[must_use]
    pub fn count(&self, pair: &(K, K)) -> u64 {
        self.counts.get(pair).copied().unwrap_or(0)
    }

    /// All pairs, most frequent first (ties broken arbitrarily but
    /// deterministically is NOT guaranteed by `HashMap` order, so ties
    /// are sub-sorted by count only — callers needing total determinism
    /// should sort the returned vector further by key).
    #[must_use]
    pub fn ranked(&self) -> Vec<((K, K), u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(k, &n)| (k.clone(), n)).collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }

    /// Fold another counter's pair counts into this one (the chains are
    /// independent; no cross-counter pair is formed).
    pub fn merge(&mut self, other: &PairCounter<K>) {
        self.observed += other.observed;
        for (k, &n) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += n;
        }
    }
}

/// Count adjacent retired-instruction pairs across every core stream of
/// `trace`, classifying each event with `classify` (a `None`
/// classification breaks the chain). Core boundaries always break the
/// chain: the last event of core *n* never pairs with the first of
/// core *n+1*.
///
/// # Errors
/// Any [`TraceError`] in the encoded streams.
pub fn count_pairs_in_trace<K, F>(
    trace: &Trace,
    mut classify: F,
) -> Result<PairCounter<K>, TraceError>
where
    K: Eq + Hash + Clone,
    F: FnMut(&Event<'_>) -> Option<K>,
{
    let mut pairs = PairCounter::new();
    for core in 0..trace.num_cores() {
        pairs.break_chain();
        let mut cursor = trace.cursor(core)?;
        while let Some((ev, _)) = cursor.next_event()? {
            match classify(&ev) {
                Some(k) => pairs.observe(k),
                None => pairs.break_chain(),
            }
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;
    use swpf_ir::interp::EventKind;
    use swpf_ir::ValueId;

    fn ev(pc: u64) -> Event<'static> {
        Event {
            pc,
            frame: 0,
            result: ValueId(pc as u32),
            kind: EventKind::Alu,
            operands: &[],
        }
    }

    #[test]
    fn pair_counter_counts_and_breaks() {
        let mut pc = PairCounter::new();
        for k in ["a", "b", "a", "b"] {
            pc.observe(k);
        }
        pc.break_chain();
        pc.observe("b"); // no pair across the break
        assert_eq!(pc.observed(), 5);
        assert_eq!(pc.count(&("a", "b")), 2);
        assert_eq!(pc.count(&("b", "a")), 1);
        assert_eq!(pc.count(&("b", "b")), 0);
        assert_eq!(pc.ranked()[0], (("a", "b"), 2));
    }

    #[test]
    fn trace_pairs_respect_core_boundaries() {
        let mut rec = TraceRecorder::new(2, 0);
        for p in [1u64, 2, 1, 2] {
            rec.stream(0).push(&ev(p));
        }
        rec.stream(0).end_step();
        for p in [2u64, 1] {
            rec.stream(1).push(&ev(p));
        }
        rec.stream(1).end_step();
        let trace = rec.finish();
        let pairs = count_pairs_in_trace(&trace, |e| Some(e.pc)).unwrap();
        assert_eq!(pairs.observed(), 6);
        assert_eq!(pairs.count(&(1, 2)), 2);
        // core 0 ends on 2, core 1 starts on 2 — must NOT pair.
        assert_eq!(pairs.count(&(2, 2)), 0);
        assert_eq!(pairs.count(&(2, 1)), 2);
    }

    #[test]
    fn unclassified_events_break_the_chain() {
        let mut rec = TraceRecorder::new(1, 0);
        for p in [1u64, 9, 2] {
            rec.stream(0).push(&ev(p));
        }
        rec.stream(0).end_step();
        let trace = rec.finish();
        let pairs = count_pairs_in_trace(&trace, |e| (e.pc != 9).then_some(e.pc)).unwrap();
        assert_eq!(pairs.observed(), 2);
        assert_eq!(pairs.count(&(1, 2)), 0, "pairing across a gap");
    }
}
