//! Analytics over recorded retire-event streams.
//!
//! The trace corpus records exactly what the timing models consume: the
//! dynamic retire-event stream of every kernel. That makes it the
//! ground truth for *dynamic* instruction statistics — most
//! prominently, the adjacent-pair frequencies that drive the bytecode
//! tier's superinstruction catalogue (`swpf_ir::bytecode`, mined by
//! `swpf-bench`'s `mine_pairs` bin; the chosen catalogue is documented
//! in DESIGN.md).
//!
//! The reader is deliberately generic: [`PairCounter`] counts adjacent
//! pairs of any classification key, and [`count_pairs_in_trace`] drives
//! it from a [`Trace`] with a caller-supplied classifier (typically
//! `ExecImage::op_class_table`, mapping static event pcs to opcode
//! mnemonics). A classifier may return `None` to break the chain — the
//! following event then starts a fresh pair rather than pairing across
//! the gap. Chains also break at core-stream boundaries.

//!
//! Beyond pair mining, the module derives the paper's *memory-shape*
//! metrics without any re-simulation: [`ReuseHistogram`] (LRU stack
//! distances over cache lines — how big a cache the kernel wants),
//! [`IndirectionProfile`] (how many dependent loads feed each load's
//! address — the depth of `a[b[i]]` chains prefetching must cover), and
//! [`MlpProfile`] (how many loads per window are address-independent —
//! the memory-level parallelism a prefetcher can actually extract).
//! All three are streaming observers drivable from any [`EventSource`],
//! so they run in bounded memory over compressed trace files via
//! [`analyze_streaming`].

use crate::stream::EventSource;
use crate::streaming::StreamingReplay;
use crate::{Trace, TraceError};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use swpf_ir::interp::{Event, EventKind};

/// Streaming counter of adjacent pairs `(previous, current)`.
#[derive(Debug, Clone)]
pub struct PairCounter<K> {
    prev: Option<K>,
    counts: HashMap<(K, K), u64>,
    observed: u64,
}

impl<K: Eq + Hash + Clone> Default for PairCounter<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> PairCounter<K> {
    /// An empty counter.
    #[must_use]
    pub fn new() -> Self {
        PairCounter {
            prev: None,
            counts: HashMap::new(),
            observed: 0,
        }
    }

    /// Feed the next classified event; pairs it with its predecessor
    /// (if the chain is unbroken).
    pub fn observe(&mut self, k: K) {
        self.observed += 1;
        if let Some(p) = self.prev.replace(k.clone()) {
            *self.counts.entry((p, k)).or_insert(0) += 1;
        }
    }

    /// Break the adjacency chain (stream boundary, unclassifiable
    /// event): the next observation starts a fresh pair.
    pub fn break_chain(&mut self) {
        self.prev = None;
    }

    /// Total events observed (pair count is at most `observed - 1`).
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Count for one specific pair.
    #[must_use]
    pub fn count(&self, pair: &(K, K)) -> u64 {
        self.counts.get(pair).copied().unwrap_or(0)
    }

    /// All pairs, most frequent first (ties broken arbitrarily but
    /// deterministically is NOT guaranteed by `HashMap` order, so ties
    /// are sub-sorted by count only — callers needing total determinism
    /// should sort the returned vector further by key).
    #[must_use]
    pub fn ranked(&self) -> Vec<((K, K), u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(k, &n)| (k.clone(), n)).collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }

    /// Fold another counter's pair counts into this one (the chains are
    /// independent; no cross-counter pair is formed).
    pub fn merge(&mut self, other: &PairCounter<K>) {
        self.observed += other.observed;
        for (k, &n) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += n;
        }
    }
}

/// Count adjacent retired-instruction pairs across every core stream of
/// `trace`, classifying each event with `classify` (a `None`
/// classification breaks the chain). Core boundaries always break the
/// chain: the last event of core *n* never pairs with the first of
/// core *n+1*.
///
/// # Errors
/// Any [`TraceError`] in the encoded streams.
pub fn count_pairs_in_trace<K, F>(
    trace: &Trace,
    mut classify: F,
) -> Result<PairCounter<K>, TraceError>
where
    K: Eq + Hash + Clone,
    F: FnMut(&Event<'_>) -> Option<K>,
{
    let mut pairs = PairCounter::new();
    for core in 0..trace.num_cores() {
        pairs.break_chain();
        let mut cursor = trace.cursor(core)?;
        while let Some((ev, _)) = cursor.next_event()? {
            match classify(&ev) {
                Some(k) => pairs.observe(k),
                None => pairs.break_chain(),
            }
        }
    }
    Ok(pairs)
}

/// Like [`count_pairs_in_trace`], but block-at-a-time over a v2 trace
/// file — the pair miner's path under `--trace-dir`, bounded memory
/// regardless of trace length.
///
/// # Errors
/// Any [`TraceError`] in the file.
pub fn count_pairs_streaming<K, F>(
    replay: &StreamingReplay,
    mut classify: F,
) -> Result<PairCounter<K>, TraceError>
where
    K: Eq + Hash + Clone,
    F: FnMut(&Event<'_>) -> Option<K>,
{
    let mut pairs = PairCounter::new();
    for core in 0..replay.num_cores() {
        pairs.break_chain();
        let mut cursor = replay.cursor(core)?;
        while let Some((ev, _)) = cursor.next_event()? {
            match classify(&ev) {
                Some(k) => pairs.observe(k),
                None => pairs.break_chain(),
            }
        }
    }
    Ok(pairs)
}

/// Cache-line shift: analytics bucket memory touches by 64-byte line,
/// matching every simulated cache level.
const LINE_SHIFT: u32 = 6;

/// Reuse-distance buckets: index 0 is distance 0 (re-reference with no
/// intervening distinct line), index `i > 0` covers `[2^(i-1), 2^i)`.
pub const REUSE_BUCKETS: usize = 33;

/// A Fenwick tree over time slots, counting which slots still hold the
/// most-recent reference of some live line — the classic O(log n)
/// stack-distance query structure.
#[derive(Debug, Clone, Default)]
struct SlotTree {
    tree: Vec<u32>,
}

impl SlotTree {
    fn len(&self) -> usize {
        self.tree.len()
    }

    fn with_capacity(n: usize) -> SlotTree {
        SlotTree { tree: vec![0; n] }
    }

    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] = self.tree[i - 1].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Count of live slots in `[0..=i]`.
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut sum = 0u64;
        while i > 0 {
            sum += u64::from(self.tree[i - 1]);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Streaming LRU stack-distance histogram over 64-byte cache lines.
///
/// Every demand load/store touches its line(s); the reuse distance of a
/// touch is the number of *distinct* lines touched since the previous
/// touch of the same line (0 = immediately re-referenced; first-ever
/// touches count as `cold`). A touch at distance *d* hits in any LRU
/// cache with more than *d* lines, so the cumulative histogram reads
/// directly as a miss-ratio curve — the capacity story behind the
/// paper's working-set sweeps, recovered from the trace alone.
///
/// Internally a last-touch map plus a Fenwick tree over time slots;
/// slots are renumbered when the tree outgrows twice the live-line
/// count, so memory tracks the footprint, not the trace length.
#[derive(Debug, Clone)]
pub struct ReuseHistogram {
    last: HashMap<u64, usize>,
    slots: SlotTree,
    time: usize,
    buckets: [u64; REUSE_BUCKETS],
    cold: u64,
}

impl Default for ReuseHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ReuseHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        ReuseHistogram {
            last: HashMap::new(),
            slots: SlotTree::with_capacity(1024),
            time: 0,
            buckets: [0; REUSE_BUCKETS],
            cold: 0,
        }
    }

    fn bucket_of(distance: u64) -> usize {
        if distance == 0 {
            0
        } else {
            (distance.ilog2() as usize + 1).min(REUSE_BUCKETS - 1)
        }
    }

    /// Renumber live slots densely (preserving recency order) so the
    /// tree stays proportional to the number of live lines.
    fn compact(&mut self) {
        let mut live: Vec<(usize, u64)> = self.last.iter().map(|(&l, &t)| (t, l)).collect();
        live.sort_unstable();
        self.slots = SlotTree::with_capacity((live.len() * 2).max(1024));
        for (new_t, &(_, line)) in live.iter().enumerate() {
            self.last.insert(line, new_t);
            self.slots.add(new_t, 1);
        }
        self.time = live.len();
    }

    fn touch_line(&mut self, line: u64) {
        if self.time == self.slots.len() {
            self.compact();
        }
        let t = self.time;
        self.time += 1;
        match self.last.insert(line, t) {
            Some(t0) => {
                // Stack distance = distinct lines touched after t0 =
                // live slots in the tree strictly beyond t0.
                let distance = self.last.len() as u64 - self.slots.prefix(t0);
                self.buckets[Self::bucket_of(distance)] += 1;
                self.slots.add(t0, -1);
            }
            None => self.cold += 1,
        }
        self.slots.add(t, 1);
    }

    /// Feed the next event; only demand loads and stores touch lines.
    pub fn observe(&mut self, ev: &Event<'_>) {
        let (addr, size) = match ev.kind {
            EventKind::Load { addr, size } | EventKind::Store { addr, size } => (addr, size),
            _ => return,
        };
        let first = addr >> LINE_SHIFT;
        let last = (addr + u64::from(size.max(1)) - 1) >> LINE_SHIFT;
        for line in first..=last {
            self.touch_line(line);
        }
    }

    /// Bucketed distances: `[0]` is distance 0, `[i]` covers
    /// `[2^(i-1), 2^i)` lines.
    #[must_use]
    pub fn buckets(&self) -> &[u64; REUSE_BUCKETS] {
        &self.buckets
    }

    /// First-ever line touches (infinite distance).
    #[must_use]
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Total line touches observed.
    #[must_use]
    pub fn touches(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.cold
    }

    /// Fold another histogram's counts into this one (address spaces
    /// are assumed disjoint — per-core histograms merge exactly).
    pub fn merge(&mut self, other: &ReuseHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.cold += other.cold;
    }
}

/// Indirection depths saturate here; the paper's kernels top out at
/// two or three dependent loads per address chain.
pub const MAX_INDIRECTION: usize = 8;

/// Streaming indirection-depth profile: for every demand load, how many
/// *dependent loads* feed its address computation.
///
/// Depth 0 is a streaming access (`a[i]`); depth 1 is one indirection
/// (`a[b[i]]` — the paper's hash/gather pattern); depth ≥ 2 is a chain.
/// This is the static structure `swpf-pass`'s prefetch generator walks,
/// measured dynamically: value depths propagate through the dataflow
/// (max over operands, +1 through a load's result, saturating at
/// [`MAX_INDIRECTION`]), keyed per call frame and dropped on return.
#[derive(Debug, Clone, Default)]
pub struct IndirectionProfile {
    frames: HashMap<u64, HashMap<u32, u8>>,
    histogram: [u64; MAX_INDIRECTION + 1],
}

impl IndirectionProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the next event.
    pub fn observe(&mut self, ev: &Event<'_>) {
        let depths = self.frames.entry(ev.frame).or_default();
        let base = ev
            .operands
            .iter()
            .filter_map(|v| depths.get(&v.0).copied())
            .max()
            .unwrap_or(0);
        match ev.kind {
            EventKind::Load { .. } => {
                self.histogram[usize::from(base)] += 1;
                let deeper = base.saturating_add(1).min(MAX_INDIRECTION as u8);
                depths.insert(ev.result.0, deeper);
            }
            EventKind::Ret => {
                // Depths never propagate across frames (call arguments
                // and return values reset the chain), so the returning
                // frame's table is dead.
                self.frames.remove(&ev.frame);
            }
            _ => {
                if base > 0 {
                    depths.insert(ev.result.0, base);
                } else {
                    depths.remove(&ev.result.0);
                }
            }
        }
    }

    /// Loads per depth; index [`MAX_INDIRECTION`] also holds everything
    /// deeper (saturated).
    #[must_use]
    pub fn histogram(&self) -> &[u64; MAX_INDIRECTION + 1] {
        &self.histogram
    }

    /// Total demand loads observed.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Fraction of loads at depth ≥ 1 — the share software prefetching
    /// for indirect accesses targets.
    #[must_use]
    pub fn indirect_fraction(&self) -> f64 {
        let total = self.loads();
        if total == 0 {
            0.0
        } else {
            let indirect: u64 = self.histogram[1..].iter().sum();
            indirect as f64 / total as f64
        }
    }

    /// Fold another profile's histogram into this one.
    pub fn merge(&mut self, other: &IndirectionProfile) {
        for (b, o) in self.histogram.iter_mut().zip(&other.histogram) {
            *b += o;
        }
    }
}

/// Events per MLP window before decimation.
const MLP_WINDOW: u64 = 256;
/// Decimate the sample series (averaging adjacent pairs) past this
/// length, so a paper-scale trace yields a bounded series.
const MLP_MAX_SAMPLES: usize = 4096;

/// Streaming memory-level-parallelism profile over fixed event windows.
///
/// Within each window of [`MLP_WINDOW`] retired events, a load is
/// *independent* if its address does not (transitively) depend on the
/// result of an earlier load **in the same window** — those are the
/// misses an out-of-order core or a software prefetcher can overlap.
/// Each window contributes one sample: its independent-load count. The
/// series is decimated by averaging adjacent samples whenever it
/// exceeds [`MLP_MAX_SAMPLES`], so `samples()` is an MLP-over-time
/// curve at a resolution that adapts to trace length.
#[derive(Debug, Clone)]
pub struct MlpProfile {
    tainted: HashSet<(u64, u32)>,
    in_window: u64,
    window_loads: u64,
    window_dependent: u64,
    /// Events per recorded sample (doubles on decimation).
    scale: u64,
    samples: Vec<f64>,
    /// Primitive windows accumulated toward the next coarse sample.
    pending_sum: f64,
    pending_count: u64,
    primitive_windows: u64,
    total_loads: u64,
    total_dependent: u64,
}

impl Default for MlpProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl MlpProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        MlpProfile {
            tainted: HashSet::new(),
            in_window: 0,
            window_loads: 0,
            window_dependent: 0,
            scale: MLP_WINDOW,
            samples: Vec::new(),
            pending_sum: 0.0,
            pending_count: 0,
            primitive_windows: 0,
            total_loads: 0,
            total_dependent: 0,
        }
    }

    fn close_window(&mut self) {
        let independent = (self.window_loads - self.window_dependent) as f64;
        // Each emitted sample averages `scale / MLP_WINDOW` primitive
        // windows; primitives park in `pending` until a group fills.
        let group = self.scale / MLP_WINDOW;
        self.pending_sum += independent;
        self.pending_count += 1;
        if self.pending_count == group {
            self.samples.push(self.pending_sum / group as f64);
            self.pending_sum = 0.0;
            self.pending_count = 0;
        }
        self.primitive_windows += 1;
        self.total_loads += self.window_loads;
        self.total_dependent += self.window_dependent;
        self.window_loads = 0;
        self.window_dependent = 0;
        self.in_window = 0;
        self.tainted.clear();
        if self.samples.len() > MLP_MAX_SAMPLES {
            self.halve();
        }
    }

    /// Feed the next event.
    pub fn observe(&mut self, ev: &Event<'_>) {
        let key = (ev.frame, ev.result.0);
        let tainted_in = ev
            .operands
            .iter()
            .any(|v| self.tainted.contains(&(ev.frame, v.0)));
        match ev.kind {
            EventKind::Load { .. } => {
                self.window_loads += 1;
                if tainted_in {
                    self.window_dependent += 1;
                }
                self.tainted.insert(key);
            }
            _ => {
                if tainted_in {
                    self.tainted.insert(key);
                } else {
                    self.tainted.remove(&key);
                }
            }
        }
        self.in_window += 1;
        if self.in_window == MLP_WINDOW {
            self.close_window();
        }
    }

    /// Flush a trailing partial window into the series (call once, when
    /// the stream ends).
    pub fn finish(&mut self) {
        if self.in_window > 0 {
            self.close_window();
        }
        self.flush_pending();
    }

    /// Independent loads per window over time (decimated).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Events represented by each sample.
    #[must_use]
    pub fn events_per_sample(&self) -> u64 {
        self.scale
    }

    /// Primitive [`MLP_WINDOW`]-event windows observed.
    #[must_use]
    pub fn windows(&self) -> u64 {
        self.primitive_windows
    }

    /// Mean independent loads per [`MLP_WINDOW`]-event window.
    #[must_use]
    pub fn mean_independent(&self) -> f64 {
        if self.primitive_windows == 0 {
            0.0
        } else {
            (self.total_loads - self.total_dependent) as f64 / self.primitive_windows as f64
        }
    }

    /// Fraction of loads whose address depends on an in-window load —
    /// the serialisation software prefetching has to break.
    #[must_use]
    pub fn dependent_fraction(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.total_dependent as f64 / self.total_loads as f64
        }
    }

    /// Append another profile's series (its windows follow this one's
    /// in time); totals accumulate. Both pending partial groups flush
    /// as (slightly under-full) samples so the curves concatenate.
    pub fn merge(&mut self, other: &MlpProfile) {
        let mut o = other.clone();
        self.flush_pending();
        o.flush_pending();
        // Bring both series to a common scale first.
        while self.scale < o.scale {
            self.halve();
        }
        while o.scale < self.scale {
            o.halve();
        }
        self.samples.extend_from_slice(&o.samples);
        self.primitive_windows += o.primitive_windows;
        self.total_loads += o.total_loads;
        self.total_dependent += o.total_dependent;
        while self.samples.len() > MLP_MAX_SAMPLES {
            self.halve();
        }
    }

    fn flush_pending(&mut self) {
        if self.pending_count > 0 {
            self.samples
                .push(self.pending_sum / self.pending_count as f64);
            self.pending_sum = 0.0;
            self.pending_count = 0;
        }
    }

    fn halve(&mut self) {
        self.samples = self
            .samples
            .chunks(2)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        self.scale *= 2;
    }
}

/// All three memory-shape observers run in one pass.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalytics {
    /// LRU stack-distance histogram (see [`ReuseHistogram`]).
    pub reuse: ReuseHistogram,
    /// Indirection-depth profile (see [`IndirectionProfile`]).
    pub indirection: IndirectionProfile,
    /// MLP-over-time profile (see [`MlpProfile`]).
    pub mlp: MlpProfile,
    /// Total events analysed.
    pub events: u64,
}

impl TraceAnalytics {
    /// Empty analytics.
    #[must_use]
    pub fn new() -> Self {
        TraceAnalytics {
            mlp: MlpProfile::new(),
            ..Default::default()
        }
    }

    /// Feed the next event to every observer.
    pub fn observe(&mut self, ev: &Event<'_>) {
        self.events += 1;
        self.reuse.observe(ev);
        self.indirection.observe(ev);
        self.mlp.observe(ev);
    }

    /// Drain one core's [`EventSource`] into this accumulator.
    ///
    /// # Errors
    /// Any [`TraceError`] in the stream.
    pub fn drain(&mut self, src: &mut impl EventSource) -> Result<(), TraceError> {
        while let Some((ev, _)) = src.next_event()? {
            self.observe(&ev);
        }
        self.mlp.finish();
        Ok(())
    }

    /// Fold a second core's analytics into this one. Reuse and
    /// indirection histograms add (address spaces and frames are
    /// per-core, so no cross-talk); MLP series concatenate.
    pub fn merge(&mut self, other: &TraceAnalytics) {
        self.reuse.merge(&other.reuse);
        self.indirection.merge(&other.indirection);
        self.mlp.merge(&other.mlp);
        self.events += other.events;
    }
}

/// One-pass analytics over every core of an in-memory [`Trace`]; cores
/// are analysed independently and merged.
///
/// # Errors
/// Any [`TraceError`] in the encoded streams.
pub fn analyze_trace(trace: &Trace) -> Result<TraceAnalytics, TraceError> {
    let mut all = TraceAnalytics::new();
    for core in 0..trace.num_cores() {
        let mut one = TraceAnalytics::new();
        one.drain(&mut trace.cursor(core)?)?;
        all.merge(&one);
    }
    Ok(all)
}

/// Like [`analyze_trace`], but block-at-a-time over a v2 trace file —
/// bounded memory regardless of trace length, no payload
/// materialisation (the `trace_analytics` experiment's path).
///
/// # Errors
/// Any [`TraceError`] in the file.
pub fn analyze_streaming(replay: &StreamingReplay) -> Result<TraceAnalytics, TraceError> {
    let mut all = TraceAnalytics::new();
    for core in 0..replay.num_cores() {
        let mut one = TraceAnalytics::new();
        one.drain(&mut replay.cursor(core)?)?;
        all.merge(&one);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;
    use swpf_ir::interp::EventKind;
    use swpf_ir::ValueId;

    fn ev(pc: u64) -> Event<'static> {
        Event {
            pc,
            frame: 0,
            result: ValueId(pc as u32),
            kind: EventKind::Alu,
            operands: &[],
        }
    }

    #[test]
    fn pair_counter_counts_and_breaks() {
        let mut pc = PairCounter::new();
        for k in ["a", "b", "a", "b"] {
            pc.observe(k);
        }
        pc.break_chain();
        pc.observe("b"); // no pair across the break
        assert_eq!(pc.observed(), 5);
        assert_eq!(pc.count(&("a", "b")), 2);
        assert_eq!(pc.count(&("b", "a")), 1);
        assert_eq!(pc.count(&("b", "b")), 0);
        assert_eq!(pc.ranked()[0], (("a", "b"), 2));
    }

    #[test]
    fn trace_pairs_respect_core_boundaries() {
        let mut rec = TraceRecorder::new(2, 0);
        for p in [1u64, 2, 1, 2] {
            rec.stream(0).push(&ev(p));
        }
        rec.stream(0).end_step();
        for p in [2u64, 1] {
            rec.stream(1).push(&ev(p));
        }
        rec.stream(1).end_step();
        let trace = rec.finish();
        let pairs = count_pairs_in_trace(&trace, |e| Some(e.pc)).unwrap();
        assert_eq!(pairs.observed(), 6);
        assert_eq!(pairs.count(&(1, 2)), 2);
        // core 0 ends on 2, core 1 starts on 2 — must NOT pair.
        assert_eq!(pairs.count(&(2, 2)), 0);
        assert_eq!(pairs.count(&(2, 1)), 2);
    }

    fn load_ev(result: u32, addr: u64, operands: &'static [ValueId]) -> Event<'static> {
        Event {
            pc: u64::from(result),
            frame: 0,
            result: ValueId(result),
            kind: EventKind::Load { addr, size: 8 },
            operands,
        }
    }

    fn alu_ev(result: u32, operands: &'static [ValueId]) -> Event<'static> {
        Event {
            pc: u64::from(result),
            frame: 0,
            result: ValueId(result),
            kind: EventKind::Alu,
            operands,
        }
    }

    #[test]
    fn reuse_distances_bucket_correctly() {
        let mut h = ReuseHistogram::new();
        // line 0 cold, then immediate re-reference (distance 0), then a
        // second line (cold), then back to line 0 (distance 1).
        for addr in [0u64, 0, 64, 0] {
            h.observe(&load_ev(1, addr, &[]));
        }
        assert_eq!(h.cold(), 2);
        assert_eq!(h.buckets()[0], 1, "distance 0");
        assert_eq!(h.buckets()[1], 1, "distance 1");
        assert_eq!(h.touches(), 4);
        // Stores touch lines too; ALU does not.
        h.observe(&alu_ev(2, &[]));
        assert_eq!(h.touches(), 4);
    }

    #[test]
    fn reuse_survives_slot_compaction() {
        let mut h = ReuseHistogram::new();
        // Far more distinct lines than the initial slot capacity, so
        // the tree renumbers at least twice; then re-touch the very
        // first line at a known large distance.
        let n = 5000u64;
        for i in 0..n {
            h.observe(&load_ev(1, i * 64, &[]));
        }
        h.observe(&load_ev(1, 0, &[]));
        assert_eq!(h.cold(), n);
        let d = n - 1; // 4999 distinct lines since line 0
        let expected_bucket = d.ilog2() as usize + 1;
        assert_eq!(h.buckets()[expected_bucket], 1, "distance {d}");
    }

    #[test]
    fn indirection_depths_follow_load_chains() {
        static R1: [ValueId; 1] = [ValueId(1)];
        static R2: [ValueId; 1] = [ValueId(2)];
        static R3: [ValueId; 1] = [ValueId(3)];
        let mut p = IndirectionProfile::new();
        p.observe(&load_ev(1, 0x1000, &[])); // a[i]: depth 0
        p.observe(&alu_ev(2, &R1)); // address arithmetic keeps depth
        p.observe(&load_ev(3, 0x2000, &R2)); // b[a[i]]: depth 1
        p.observe(&load_ev(4, 0x3000, &R3)); // c[b[a[i]]]: depth 2
        assert_eq!(p.histogram()[0], 1);
        assert_eq!(p.histogram()[1], 1);
        assert_eq!(p.histogram()[2], 1);
        assert_eq!(p.loads(), 3);
        let expect = 2.0 / 3.0;
        assert!((p.indirect_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn indirection_saturates_and_clears_frames() {
        let mut p = IndirectionProfile::new();
        let mut prev: Option<u32> = None;
        // A chain far deeper than the cap.
        for r in 1..=20u32 {
            let ops: &'static [ValueId] = match prev {
                Some(v) => Box::leak(Box::new([ValueId(v)])),
                None => &[],
            };
            p.observe(&load_ev(r, 0x1000 + u64::from(r) * 8, ops));
            prev = Some(r);
        }
        let hist = p.histogram();
        assert_eq!(hist.iter().sum::<u64>(), 20);
        assert!(hist[MAX_INDIRECTION] >= 20 - MAX_INDIRECTION as u64);
        // Returning drops the frame's depth table.
        p.observe(&Event {
            pc: 0,
            frame: 0,
            result: ValueId(99),
            kind: EventKind::Ret,
            operands: &[],
        });
        p.observe(&load_ev(21, 0x5000, Box::leak(Box::new([ValueId(20)]))));
        assert_eq!(p.histogram()[0], 2, "depth resets after Ret");
    }

    #[test]
    fn mlp_separates_independent_from_dependent_loads() {
        static R1: [ValueId; 1] = [ValueId(1)];
        static R2: [ValueId; 1] = [ValueId(2)];
        let mut m = MlpProfile::new();
        // Three address-independent loads...
        for r in 1..=3u32 {
            m.observe(&load_ev(r, u64::from(r) * 4096, &[]));
        }
        m.finish();
        assert_eq!(m.samples(), &[3.0]);
        assert!((m.mean_independent() - 3.0).abs() < 1e-12);
        assert_eq!(m.dependent_fraction(), 0.0);

        // ...versus a pointer chain: the second load's address is
        // tainted by the first through intermediate arithmetic.
        let mut m = MlpProfile::new();
        m.observe(&load_ev(1, 0x1000, &[]));
        m.observe(&alu_ev(2, &R1));
        m.observe(&load_ev(3, 0x2000, &R2));
        m.finish();
        assert_eq!(m.samples(), &[1.0], "one independent load per window");
        assert!((m.dependent_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn streaming_analytics_match_in_memory() {
        let mut rec = TraceRecorder::new(2, 7);
        for core in 0..2u32 {
            for i in 0..3000u64 {
                let e = if i % 5 == 4 {
                    ev(40 + i % 4)
                } else {
                    load_ev((i % 16) as u32, (i * 37) % (1 << 14), &[])
                };
                rec.stream(core as usize).push(&e);
                rec.stream(core as usize).end_step();
            }
        }
        let trace = rec.finish();
        let direct = analyze_trace(&trace).unwrap();
        let path = std::env::temp_dir().join(format!("swpf_an_{}.trace", std::process::id()));
        std::fs::write(&path, trace.to_bytes_with_block_size(512)).unwrap();
        let streamed = {
            let replay = StreamingReplay::open(&path).unwrap();
            analyze_streaming(&replay).unwrap()
        };
        std::fs::remove_file(&path).ok();
        assert_eq!(direct.events, streamed.events);
        assert_eq!(direct.reuse.buckets(), streamed.reuse.buckets());
        assert_eq!(direct.reuse.cold(), streamed.reuse.cold());
        assert_eq!(
            direct.indirection.histogram(),
            streamed.indirection.histogram()
        );
        assert_eq!(direct.mlp.samples(), streamed.mlp.samples());
        assert_eq!(direct.events, 6000);
    }

    #[test]
    fn unclassified_events_break_the_chain() {
        let mut rec = TraceRecorder::new(1, 0);
        for p in [1u64, 9, 2] {
            rec.stream(0).push(&ev(p));
        }
        rec.stream(0).end_step();
        let trace = rec.finish();
        let pairs = count_pairs_in_trace(&trace, |e| (e.pc != 9).then_some(e.pc)).unwrap();
        assert_eq!(pairs.observed(), 2);
        assert_eq!(pairs.count(&(1, 2)), 0, "pairing across a gap");
    }
}
