//! Bit-level I/O and canonical, length-limited Huffman coding — the
//! entropy stage of [`METHOD_LZH`](crate::block) blocks.
//!
//! Codes are canonical (assigned in (length, symbol) order) and capped
//! at [`MAX_CODE_LEN`] bits, so a table is fully described by one code
//! length per symbol — 4 bits each on the wire. The decoder walks the
//! canonical first-code/count arrays bit by bit; no lookup tables are
//! materialised, which keeps the per-block scratch of a streaming
//! reader small.
//!
//! Strictness: the writer pads the final byte with zero bits and the
//! reader's [`BitReader::finish`] verifies both that no whole byte is
//! left unread and that the padding bits are zero — so every bit of a
//! compressed block is either consumed meaningfully or
//! verified-as-padding, and a single-bit flip anywhere is never
//! silently ignored (content damage is additionally caught by the
//! envelope's per-block checksum over the raw bytes).

use crate::TraceError;

/// Longest admitted code. 15 bits keeps lengths in one nibble on the
/// wire and bounds the decoder's walk.
pub(crate) const MAX_CODE_LEN: usize = 15;

/// MSB-first bit writer appending to a byte vector.
pub(crate) struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    n: u32,
}

impl<'a> BitWriter<'a> {
    pub(crate) fn new(out: &'a mut Vec<u8>) -> Self {
        Self { out, acc: 0, n: 0 }
    }

    /// Append the low `len` bits of `bits`, most significant first.
    #[inline]
    pub(crate) fn put(&mut self, bits: u32, len: u32) {
        debug_assert!(len <= 32);
        debug_assert!(len == 32 || u64::from(bits) < (1u64 << len));
        self.acc = (self.acc << len) | u64::from(bits);
        self.n += len;
        while self.n >= 8 {
            self.n -= 8;
            self.out.push((self.acc >> self.n) as u8);
        }
    }

    /// Flush, padding the final byte with zero bits.
    pub(crate) fn finish(self) {
        if self.n > 0 {
            self.out.push(((self.acc << (8 - self.n)) & 0xff) as u8);
        }
    }
}

/// MSB-first bit reader over a byte slice.
pub(crate) struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    n: u32,
}

impl<'a> BitReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            n: 0,
        }
    }

    /// Read `len` bits (MSB first).
    ///
    /// # Errors
    /// [`TraceError::Truncated`] past the end of the slice.
    #[inline]
    pub(crate) fn get(&mut self, len: u32) -> Result<u32, TraceError> {
        debug_assert!(len <= 28);
        if len == 0 {
            return Ok(0);
        }
        while self.n < len {
            let b = *self.data.get(self.pos).ok_or(TraceError::Truncated)?;
            self.pos += 1;
            self.acc = (self.acc << 8) | u64::from(b);
            self.n += 8;
        }
        self.n -= len;
        Ok(((self.acc >> self.n) & ((1u64 << len) - 1)) as u32)
    }

    /// Verify the stream is fully consumed: no whole byte unread, and
    /// the final byte's padding bits are zero.
    ///
    /// # Errors
    /// [`TraceError::Corrupt`] otherwise.
    pub(crate) fn finish(self) -> Result<(), TraceError> {
        // After any `get`, at most 7 bits stay buffered, so one byte of
        // slack at most — and its leftover bits must be the writer's
        // zero padding.
        if self.pos != self.data.len() {
            return Err(TraceError::Corrupt("trailing bytes in compressed block"));
        }
        if self.acc & ((1u64 << self.n) - 1) != 0 {
            return Err(TraceError::Corrupt("nonzero padding in compressed block"));
        }
        Ok(())
    }
}

/// Compute length-limited canonical code lengths (0 = symbol unused)
/// from frequencies: ordinary Huffman depths, clamped to
/// [`MAX_CODE_LEN`] and re-balanced until the Kraft sum is *exactly*
/// complete. Completeness is load-bearing, not cosmetic: the decoder
/// rejects non-empty tables whose Kraft sum is not exactly
/// `2^MAX_CODE_LEN`, which is what lets a single corrupted table
/// nibble — even one belonging to an unused symbol — always be
/// detected. A single-symbol alphabet is completed with a
/// never-emitted sibling code.
pub(crate) fn code_lengths(freq: &[u32]) -> Vec<u8> {
    let mut lens = vec![0u8; freq.len()];
    let used: Vec<usize> = (0..freq.len()).filter(|&i| freq[i] > 0).collect();
    match used.len() {
        0 => return lens,
        1 => {
            let sym = used[0];
            lens[sym] = 1;
            lens[usize::from(sym == 0)] = 1;
            return lens;
        }
        _ => {}
    }

    // Two-queue Huffman over leaves sorted by frequency: O(n log n) in
    // the sort, O(n) in the merge. `nodes` holds (weight, parent).
    let mut order = used.clone();
    order.sort_by_key(|&i| (freq[i], i));
    let mut nodes: Vec<(u64, usize)> = order
        .iter()
        .map(|&i| (u64::from(freq[i]), usize::MAX))
        .collect();
    let n_leaves = nodes.len();
    let mut leaf = 0usize; // next unmerged leaf
    let mut inner = n_leaves; // next unmerged internal node
    while nodes.len() < 2 * n_leaves - 1 {
        let take = |nodes: &mut Vec<(u64, usize)>, leaf: &mut usize, inner: &mut usize| {
            let pick_leaf =
                *leaf < n_leaves && (*inner >= nodes.len() || nodes[*leaf].0 <= nodes[*inner].0);
            let idx = if pick_leaf { *leaf } else { *inner };
            if pick_leaf {
                *leaf += 1;
            } else {
                *inner += 1;
            }
            idx
        };
        let a = take(&mut nodes, &mut leaf, &mut inner);
        let b = take(&mut nodes, &mut leaf, &mut inner);
        let w = nodes[a].0 + nodes[b].0;
        let parent = nodes.len();
        nodes[a].1 = parent;
        nodes[b].1 = parent;
        nodes.push((w, usize::MAX));
    }

    // Depths by walking parent chains root-down (parents always have
    // higher indices, so a reverse sweep suffices).
    let mut depth = vec![0u32; nodes.len()];
    for i in (0..nodes.len() - 1).rev() {
        depth[i] = depth[nodes[i].1] + 1;
    }
    for (slot, &sym) in order.iter().enumerate() {
        lens[sym] = depth[slot].min(MAX_CODE_LEN as u32) as u8;
    }

    // Kraft fix-up after clamping, in units of 2^-MAX_CODE_LEN: first
    // deepen until the sum fits, then promote max-length codes one
    // unit at a time until it is exactly complete. An unclamped
    // Huffman tree is complete already, so both loops are no-ops in
    // the common case.
    let capacity = 1u64 << MAX_CODE_LEN;
    let kraft = |lens: &[u8]| -> u64 {
        used.iter()
            .map(|&i| 1u64 << (MAX_CODE_LEN - lens[i] as usize))
            .sum()
    };
    let mut k = kraft(&lens);
    while k > capacity {
        // Deepen the deepest symbol shorter than the cap. One always
        // exists: an alphabet pinned entirely at the cap would need
        // more than 2^MAX_CODE_LEN symbols to over-subscribe.
        let &sym = used
            .iter()
            .filter(|&&i| (lens[i] as usize) < MAX_CODE_LEN)
            .max_by_key(|&&i| lens[i])
            .expect("cap-pinned alphabet cannot over-subscribe");
        k -= 1u64 << (MAX_CODE_LEN - 1 - lens[sym] as usize);
        lens[sym] += 1;
    }
    while k < capacity {
        // Promote (shorten) the deepest symbol whose gain still fits.
        let Some(&sym) = used
            .iter()
            .filter(|&&i| {
                lens[i] > 1
                    && (1u64 << (MAX_CODE_LEN + 1 - lens[i] as usize))
                        - (1u64 << (MAX_CODE_LEN - lens[i] as usize))
                        <= capacity - k
            })
            .max_by_key(|&&i| lens[i])
        else {
            // No exact promotion sequence from here: fall back to the
            // trivially complete near-flat code (k at L-1 bits, the
            // rest at L). Suboptimal by a few bytes, never invalid.
            let n = used.len() as u32;
            let bits = 32 - (n - 1).leading_zeros(); // ceil(log2 n), n >= 2
            let short = (1u64 << bits) as usize - used.len();
            let mut by_freq = used.clone();
            by_freq.sort_by_key(|&i| (std::cmp::Reverse(freq[i]), i));
            for (slot, &sym) in by_freq.iter().enumerate() {
                lens[sym] = (bits - u32::from(slot < short)) as u8;
            }
            return lens;
        };
        k += 1u64 << (MAX_CODE_LEN - lens[sym] as usize);
        lens[sym] -= 1;
    }
    debug_assert_eq!(kraft(&lens), capacity);
    lens
}

/// Canonical codes for writing: `code[sym]` is valid for `lens[sym]`
/// bits (MSB first), assigned in (length, symbol) order.
pub(crate) fn build_codes(lens: &[u8]) -> Vec<u32> {
    let mut bl_count = [0u32; MAX_CODE_LEN + 1];
    for &l in lens {
        bl_count[l as usize] += 1;
    }
    let mut next = [0u32; MAX_CODE_LEN + 1];
    let mut code = 0u32;
    for bits in 1..=MAX_CODE_LEN {
        next[bits] = code;
        code = (code + bl_count[bits]) << 1;
    }
    let mut codes = vec![0u32; lens.len()];
    for (sym, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[sym] = next[l as usize];
            next[l as usize] += 1;
        }
    }
    codes
}

/// Canonical decoder: per-length first-code/count arrays plus the
/// symbol list in canonical order.
pub(crate) struct Decoder {
    count: [u32; MAX_CODE_LEN + 1],
    first: [u32; MAX_CODE_LEN + 1],
    offset: [u32; MAX_CODE_LEN + 1],
    syms: Vec<u16>,
}

impl Decoder {
    /// Build from per-symbol code lengths. The table must be either
    /// empty (every length zero — an alphabet the block never uses) or
    /// *exactly* complete in the Kraft sense, which the encoder
    /// guarantees. Exactness is what makes any single corrupted table
    /// nibble detectable: a change to any length, used symbol or not,
    /// breaks the sum.
    ///
    /// # Errors
    /// [`TraceError::Corrupt`] on an over-subscribed or non-empty
    /// incomplete table.
    pub(crate) fn new(lens: &[u8]) -> Result<Self, TraceError> {
        let mut count = [0u32; MAX_CODE_LEN + 1];
        for &l in lens {
            if l as usize > MAX_CODE_LEN {
                return Err(TraceError::Corrupt("huffman code length out of range"));
            }
            count[l as usize] += 1;
        }
        count[0] = 0;
        let kraft: u64 = count
            .iter()
            .enumerate()
            .skip(1)
            .map(|(bits, &c)| u64::from(c) << (MAX_CODE_LEN - bits))
            .sum();
        if kraft != 0 && kraft != 1u64 << MAX_CODE_LEN {
            return Err(TraceError::Corrupt("huffman table is not exactly complete"));
        }
        let mut first = [0u32; MAX_CODE_LEN + 1];
        let mut offset = [0u32; MAX_CODE_LEN + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for bits in 1..=MAX_CODE_LEN {
            first[bits] = code;
            offset[bits] = index;
            code = (code + count[bits]) << 1;
            index += count[bits];
        }
        let mut syms = vec![0u16; index as usize];
        let mut next = offset;
        for (sym, &l) in lens.iter().enumerate() {
            if l > 0 {
                syms[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Ok(Self {
            count,
            first,
            offset,
            syms,
        })
    }

    /// Decode one symbol.
    ///
    /// # Errors
    /// [`TraceError::Corrupt`] on a bit pattern no code covers,
    /// [`TraceError::Truncated`] past the end of input.
    #[inline]
    pub(crate) fn read_symbol(&self, r: &mut BitReader) -> Result<u16, TraceError> {
        let mut code = 0u32;
        for bits in 1..=MAX_CODE_LEN {
            code = (code << 1) | r.get(1)?;
            let c = self.count[bits];
            if c != 0 && code.wrapping_sub(self.first[bits]) < c {
                let at = self.offset[bits] + (code - self.first[bits]);
                return Ok(self.syms[at as usize]);
            }
        }
        Err(TraceError::Corrupt("invalid huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_symbols(freq: &[u32], stream: &[u16]) {
        let lens = code_lengths(freq);
        let codes = build_codes(&lens);
        let mut bytes = Vec::new();
        let mut w = BitWriter::new(&mut bytes);
        for &s in stream {
            assert!(lens[s as usize] > 0, "symbol {s} must have a code");
            w.put(codes[s as usize], u32::from(lens[s as usize]));
        }
        w.finish();
        let dec = Decoder::new(&lens).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.read_symbol(&mut r).unwrap(), s);
        }
        r.finish().unwrap();
    }

    #[test]
    fn bit_io_round_trips() {
        let mut bytes = Vec::new();
        let mut w = BitWriter::new(&mut bytes);
        let vals = [(0b1, 1), (0b1011, 4), (0x3fff, 14), (0, 3), (0xabcdef, 28)];
        for (v, l) in vals {
            w.put(v, l);
        }
        w.finish();
        let mut r = BitReader::new(&bytes);
        for (v, l) in vals {
            assert_eq!(r.get(l).unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        let mut bytes = Vec::new();
        let mut w = BitWriter::new(&mut bytes);
        w.put(0b101, 3);
        w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3).unwrap(), 0b101);
        r.finish().unwrap();
        // Same stream with a flipped padding bit must not verify.
        let mut bad = Vec::new();
        let mut w = BitWriter::new(&mut bad);
        w.put(0b101, 3);
        w.finish();
        bad[0] ^= 1;
        let mut r = BitReader::new(&bad);
        assert_eq!(r.get(3).unwrap(), 0b101);
        assert!(r.finish().is_err());
    }

    #[test]
    fn skewed_and_uniform_alphabets_round_trip() {
        // Heavily skewed: symbol 0 dominates.
        let mut freq = vec![0u32; 300];
        freq[0] = 1_000_000;
        freq[1] = 3;
        freq[7] = 1;
        freq[299] = 40;
        let lens = code_lengths(&freq);
        assert!(lens[0] >= 1 && lens[0] <= 2, "dominant symbol stays short");
        round_trip_symbols(&freq, &[0, 0, 1, 299, 0, 7, 299, 0]);

        // Uniform 256-symbol alphabet: all codes length 8.
        let freq = vec![1u32; 256];
        let lens = code_lengths(&freq);
        assert!(lens.iter().all(|&l| l == 8));
        let stream: Vec<u16> = (0..256).collect();
        round_trip_symbols(&freq, &stream);
    }

    #[test]
    fn single_symbol_alphabet_is_completed_with_a_sibling() {
        let mut freq = vec![0u32; 64];
        freq[17] = 9;
        let lens = code_lengths(&freq);
        assert_eq!(lens[17], 1);
        assert_eq!(lens[0], 1, "never-emitted sibling completes the code");
        round_trip_symbols(&freq, &[17, 17, 17]);
    }

    #[test]
    fn deep_trees_are_length_limited() {
        // Fibonacci-ish frequencies force maximal Huffman depth; the
        // limiter must cap every code at MAX_CODE_LEN with a valid
        // Kraft sum.
        let mut freq = vec![0u32; 40];
        let (mut a, mut b) = (1u32, 1u32);
        for f in freq.iter_mut() {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lens = code_lengths(&freq);
        assert!(lens.iter().all(|&l| (l as usize) <= MAX_CODE_LEN));
        let kraft: u64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_LEN - l as usize))
            .sum();
        assert_eq!(kraft, 1 << MAX_CODE_LEN, "limited code must stay complete");
        Decoder::new(&lens).unwrap();
        let stream: Vec<u16> = (0..40).collect();
        round_trip_symbols(&freq, &stream);
    }

    #[test]
    fn invalid_tables_are_rejected() {
        // Three codes of length 1 over-subscribe.
        assert!(Decoder::new(&[1u8, 1, 1]).is_err());
        // A lone length-2 code is incomplete.
        assert!(Decoder::new(&[0u8, 2, 0]).is_err());
        // A single length-1 code is incomplete too (the encoder always
        // pairs it with a sibling).
        assert!(Decoder::new(&[1u8, 0, 0]).is_err());
        // Empty tables are fine (an alphabet the block never uses).
        assert!(Decoder::new(&[0u8, 0, 0]).is_ok());
    }
}
