//! Wire primitives: LEB128 varints, zigzag signed deltas, and the FNV-1a
//! checksum. Everything the trace format stores is built from these plus
//! fixed-width little-endian header fields.

use crate::TraceError;

/// Append an LEB128-encoded `u64` (7 payload bits per byte, continuation
/// in the high bit; 1 byte for values below 128).
#[inline(always)]
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Multi-byte continuation of [`get_varint`], out of the hot path
/// (almost every field of a loop-resident stream is a 1-byte delta).
#[cold]
fn get_varint_multi(buf: &[u8], pos: &mut usize, first: u8) -> Result<u64, TraceError> {
    let mut v = u64::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let &b = buf.get(*pos).ok_or(TraceError::Truncated)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(TraceError::Corrupt("varint overflows 64 bits"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Decode an LEB128 `u64` at `*pos`, advancing it.
#[inline(always)]
pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let &b = buf.get(*pos).ok_or(TraceError::Truncated)?;
    *pos += 1;
    if b < 0x80 {
        return Ok(u64::from(b));
    }
    get_varint_multi(buf, pos, b)
}

/// Map a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2, ... become 0, 1, 2, 3, ...).
#[inline(always)]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline(always)]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decode a zigzag-encoded signed delta.
#[inline(always)]
pub(crate) fn get_delta(buf: &[u8], pos: &mut usize) -> Result<i64, TraceError> {
    Ok(unzigzag(get_varint(buf, pos)?))
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Running FNV-1a 64-bit hash, used both for the trace footer checksum
/// and for kernel fingerprints.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64-bit hash of a byte string.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Payload checksum: FNV-1a over 64-bit little-endian words with a
/// zero-padded tail, mixed with the length (so padding cannot alias).
/// Not byte-compatible with [`fnv64`] — this one exists because the
/// footer checksum runs over multi-hundred-megabyte payloads on every
/// trace load and store, where byte-at-a-time hashing costs seconds.
#[must_use]
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().expect("8 bytes"))).wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(FNV_PRIME);
    }
    h ^ bytes.len() as u64
}

/// Seed for combining per-core payload checksums into the footer value.
pub(crate) const CHECKSUM_SEED: u64 = FNV_OFFSET;

/// Fold one per-core checksum into the footer combination.
pub(crate) fn checksum_combine(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Append a fixed-width little-endian `u64` (header/footer fields).
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a fixed-width little-endian `u32` (header fields).
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a fixed-width little-endian `u64` at `*pos`, advancing it.
pub(crate) fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let end = pos.checked_add(8).ok_or(TraceError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(TraceError::Truncated)?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// Read a fixed-width little-endian `u32` at `*pos`, advancing it.
pub(crate) fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, TraceError> {
    let end = pos.checked_add(4).ok_or(TraceError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(TraceError::Truncated)?;
    *pos = end;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_single_byte_below_128() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Err(TraceError::Truncated));
    }

    #[test]
    fn zigzag_round_trips_sign_flips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 0x7fff_ffff, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small regardless of sign.
        assert!(zigzag(-64) < 0x80);
        assert!(zigzag(63) < 0x80);
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b""), FNV_OFFSET);
    }
}
