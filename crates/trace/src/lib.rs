//! # swpf-trace — record/replay event traces for the timing simulator
//!
//! Every figure of the paper is a machine × workload × variant grid, and
//! functional execution is machine-independent: the retire-event stream
//! the pre-decoded engine reports through [`ExecObserver`] is identical
//! no matter which timing model is attached (the differential and
//! thread-invariance suites prove it). This crate decouples the two
//! halves: **record** the event stream once per kernel, then **replay**
//! it straight into each machine's timing model (`Core::retire` in
//! `swpf-sim`) with no interpreter in the loop.
//!
//! The format is a compact owned binary (see `stream` for the event
//! grammar, `block` for the v2 block compression, and DESIGN.md §6 for
//! the full layout):
//!
//! * a versioned header with a kernel **fingerprint** so stale cached
//!   traces are detected, not silently replayed;
//! * one varint + delta-encoded **event section per core**, so multicore
//!   grids (Fig. 9) record each core's stream and replay preserves the
//!   direct runner's step-granular interleaving — in v2, each section is
//!   chopped into fixed-size **LZ-compressed blocks**, each carrying its
//!   own length and checksum, so [`StreamingReplay`] can decode one
//!   block at a time in bounded memory;
//! * a checksummed **footer** (FNV-1a, folded over the header fields and
//!   every block checksum) rejecting torn or corrupted files.
//!
//! Recording composes with timing: [`StreamEncoder`] is itself an
//! [`ExecObserver`], and [`Tee`] fans one event out to two observers, so
//! a simulation can *record while it measures* — the experiment harness
//! records a group's first cell during its direct simulation and replays
//! the remaining machines from the trace.
//!
//! The replay equivalence contract — replayed `SimStats` are
//! bit-identical to direct simulation — is enforced by `swpf-sim` unit
//! tests, `swpf-bench`'s harness tests, and the CI `trace-equivalence`
//! job (all nine experiments).

pub mod analytics;
mod block;
mod huff;
mod stream;
mod streaming;
mod wire;

pub use analytics::{
    analyze_streaming, analyze_trace, count_pairs_in_trace, count_pairs_streaming,
    IndirectionProfile, MlpProfile, PairCounter, ReuseHistogram, TraceAnalytics, MAX_INDIRECTION,
    REUSE_BUCKETS,
};
pub use block::BLOCK_TARGET;
pub use stream::{EventCursor, EventSource, StreamEncoder};
pub use streaming::{StreamingCursor, StreamingReplay};
pub use wire::{fnv64, Fnv64};

use std::fmt;
use swpf_ir::interp::{Event, ExecObserver, Interp, RtVal, Step, Trap};
use wire::{checksum64, checksum_combine, get_u32, get_u64, put_u32, put_u64, CHECKSUM_SEED};

/// Leading file magic.
const MAGIC: &[u8; 8] = b"SWPFTRCE";
/// Trailing file magic.
const END_MAGIC: &[u8; 8] = b"SWPFEND.";
/// Current format version. Bump on any grammar or envelope change.
/// v1: raw per-core payloads. v2: block-compressed per-core payloads
/// (readable by [`StreamingReplay`] in bounded memory). This build
/// writes v2 and reads both.
pub const FORMAT_VERSION: u32 = 2;

/// The last raw-payload format version; still decoded by
/// [`Trace::from_bytes`] so existing cache files replay unchanged.
pub const FORMAT_VERSION_V1: u32 = 1;

/// Why a trace could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The leading or trailing magic bytes are wrong.
    BadMagic,
    /// The header names a version this build does not speak.
    UnsupportedVersion(u32),
    /// The footer checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the footer.
        stored: u64,
        /// Checksum computed over the decoded payloads.
        computed: u64,
    },
    /// A structurally invalid stream (the reason names the rule broken).
    Corrupt(&'static str),
    /// A replay asked for a core the trace does not contain.
    MissingCore(usize),
    /// A filesystem failure while streaming a trace file (the kind
    /// keeps the error `Copy`; the path is known to the caller).
    Io(std::io::ErrorKind),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadMagic => write!(f, "not a swpf trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build speaks {FORMAT_VERSION_V1}-{FORMAT_VERSION})"
                )
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            TraceError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
            TraceError::MissingCore(i) => write!(f, "trace has no stream for core {i}"),
            TraceError::Io(kind) => write!(f, "trace file i/o error: {kind}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One core's encoded stream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CoreTrace {
    events: u64,
    payload: Vec<u8>,
}

/// An owned, encoded retire-event trace: per-core streams plus the
/// kernel fingerprint they were recorded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Caller-chosen digest of everything the stream depends on (kernel
    /// module, workload data, scale, core count). [`Trace::from_bytes`]
    /// surfaces it so caches can reject stale files.
    pub fingerprint: u64,
    cores: Vec<CoreTrace>,
}

impl Trace {
    /// Number of per-core streams.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Recorded event count of one core's stream.
    ///
    /// # Panics
    /// If `core` is out of range.
    #[must_use]
    pub fn events(&self, core: usize) -> u64 {
        self.cores[core].events
    }

    /// Total encoded payload bytes across all cores (reporting only;
    /// excludes the envelope).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.cores.iter().map(|c| c.payload.len()).sum()
    }

    /// A streaming decode cursor over one core's events.
    ///
    /// # Errors
    /// [`TraceError::MissingCore`] if the trace has no such stream.
    pub fn cursor(&self, core: usize) -> Result<EventCursor<'_>, TraceError> {
        let ct = self.cores.get(core).ok_or(TraceError::MissingCore(core))?;
        Ok(EventCursor::new(&ct.payload, ct.events))
    }

    /// Serialise to the current (v2, block-compressed) on-disk
    /// envelope, with the default block size [`BLOCK_TARGET`].
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_block_size(BLOCK_TARGET)
    }

    /// Serialise to the v2 envelope with an explicit uncompressed block
    /// size. Exposed so tests (and size/ratio experiments) can force
    /// block-boundary straddles with tiny blocks; production callers
    /// use [`Trace::to_bytes`].
    ///
    /// # Panics
    /// If `block_size` is zero or exceeds `u32` range.
    #[must_use]
    pub fn to_bytes_with_block_size(&self, block_size: usize) -> Vec<u8> {
        assert!(block_size > 0, "block size must be positive");
        assert!(u32::try_from(block_size).is_ok(), "block size fits u32");
        let _span = swpf_obs::span("trace:encode");
        let mut out = Vec::with_capacity(self.payload_bytes() / 2 + 64);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.fingerprint);
        put_u32(&mut out, self.cores.len() as u32);
        let mut sum = CHECKSUM_SEED;
        sum = checksum_combine(sum, self.fingerprint);
        sum = checksum_combine(sum, self.cores.len() as u64);
        let mut scratch = block::MatchScratch::default();
        for c in &self.cores {
            let n_blocks = c.payload.len().div_ceil(block_size);
            put_u64(&mut out, c.events);
            put_u32(&mut out, n_blocks as u32);
            sum = checksum_combine(sum, c.events);
            sum = checksum_combine(sum, n_blocks as u64);
            // The block-section byte length is only known after
            // compression: reserve the field and patch it.
            let comp_total_at = out.len();
            put_u64(&mut out, 0);
            let section_start = out.len();
            for chunk in c.payload.chunks(block_size) {
                let _block_span = swpf_obs::enabled().then(|| swpf_obs::span("trace:encode_block"));
                let block_sum = checksum64(chunk);
                let (method, data) = block::compress_best(chunk, &mut scratch);
                if swpf_obs::enabled() {
                    swpf_obs::count(block::method_counter(method), 1);
                    swpf_obs::count("trace.encode.raw_bytes", chunk.len() as u64);
                    swpf_obs::count("trace.encode.compressed_bytes", data.len() as u64);
                }
                put_u32(&mut out, chunk.len() as u32);
                put_u32(&mut out, data.len() as u32);
                out.push(method);
                put_u64(&mut out, block_sum);
                out.extend_from_slice(data);
                sum = checksum_combine(sum, block_sum);
            }
            let comp_total = (out.len() - section_start) as u64;
            out[comp_total_at..comp_total_at + 8].copy_from_slice(&comp_total.to_le_bytes());
        }
        put_u64(&mut out, sum);
        out.extend_from_slice(END_MAGIC);
        out
    }

    /// Serialise to the legacy v1 envelope (raw, uncompressed
    /// payloads). Kept public so compatibility tests — and any tool
    /// that needs to measure the uncompressed baseline — can still
    /// produce v1 files; [`Trace::from_bytes`] reads them forever.
    #[must_use]
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let payload: usize = self.payload_bytes();
        let mut out = Vec::with_capacity(payload + 64 + 24 * self.cores.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, FORMAT_VERSION_V1);
        put_u64(&mut out, self.fingerprint);
        put_u32(&mut out, self.cores.len() as u32);
        let mut sum = CHECKSUM_SEED;
        for c in &self.cores {
            put_u64(&mut out, c.events);
            put_u64(&mut out, c.payload.len() as u64);
            out.extend_from_slice(&c.payload);
            sum = checksum_combine(sum, checksum64(&c.payload));
        }
        put_u64(&mut out, sum);
        out.extend_from_slice(END_MAGIC);
        out
    }

    /// Decode an envelope (v1 or v2), verifying magic, version, and
    /// every checksum — in v2, each block's checksum over its
    /// uncompressed bytes plus the footer fold over the header fields.
    ///
    /// # Errors
    /// Any [`TraceError`] the envelope violates. Event payloads are
    /// validated lazily, by [`EventCursor::next_event`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        let _span = swpf_obs::span("trace:decode");
        let mut pos = 0usize;
        if bytes.len() < MAGIC.len() {
            return Err(TraceError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        pos += MAGIC.len();
        let version = get_u32(bytes, &mut pos)?;
        let fingerprint = get_u64(bytes, &mut pos)?;
        let n_cores = get_u32(bytes, &mut pos)? as usize;
        let mut cores = Vec::with_capacity(n_cores.min(1 << 10));
        let mut sum = CHECKSUM_SEED;
        match version {
            FORMAT_VERSION_V1 => {
                for _ in 0..n_cores {
                    let events = get_u64(bytes, &mut pos)?;
                    let len = get_u64(bytes, &mut pos)?;
                    let len = usize::try_from(len).map_err(|_| TraceError::Truncated)?;
                    let end = pos.checked_add(len).ok_or(TraceError::Truncated)?;
                    let payload = bytes.get(pos..end).ok_or(TraceError::Truncated)?;
                    pos = end;
                    sum = checksum_combine(sum, checksum64(payload));
                    cores.push(CoreTrace {
                        events,
                        payload: payload.to_vec(),
                    });
                }
            }
            FORMAT_VERSION => {
                sum = checksum_combine(sum, fingerprint);
                sum = checksum_combine(sum, n_cores as u64);
                for _ in 0..n_cores {
                    let events = get_u64(bytes, &mut pos)?;
                    let n_blocks = get_u32(bytes, &mut pos)? as usize;
                    let comp_total = get_u64(bytes, &mut pos)?;
                    sum = checksum_combine(sum, events);
                    sum = checksum_combine(sum, n_blocks as u64);
                    let comp_total =
                        usize::try_from(comp_total).map_err(|_| TraceError::Truncated)?;
                    let section_end = pos.checked_add(comp_total).ok_or(TraceError::Truncated)?;
                    let mut payload = Vec::new();
                    for _ in 0..n_blocks {
                        let _block_span =
                            swpf_obs::enabled().then(|| swpf_obs::span("trace:decode_block"));
                        let raw_len = get_u32(bytes, &mut pos)? as usize;
                        let comp_len = get_u32(bytes, &mut pos)? as usize;
                        if raw_len > block::MAX_BLOCK || comp_len > block::MAX_BLOCK {
                            return Err(TraceError::Corrupt("implausible block size"));
                        }
                        let &method = bytes.get(pos).ok_or(TraceError::Truncated)?;
                        pos += 1;
                        swpf_obs::count(block::method_counter_decode(method), 1);
                        let block_sum = get_u64(bytes, &mut pos)?;
                        let end = pos.checked_add(comp_len).ok_or(TraceError::Truncated)?;
                        let data = bytes.get(pos..end).ok_or(TraceError::Truncated)?;
                        pos = end;
                        let start = payload.len();
                        match method {
                            block::METHOD_STORED => {
                                if comp_len != raw_len {
                                    return Err(TraceError::Corrupt(
                                        "stored block length mismatch",
                                    ));
                                }
                                payload.extend_from_slice(data);
                            }
                            block::METHOD_LZ => {
                                block::decompress_into(data, raw_len, &mut payload)?
                            }
                            block::METHOD_LZH => {
                                block::decompress_lzh_into(data, raw_len, &mut payload)?;
                            }
                            _ => return Err(TraceError::Corrupt("unknown block method")),
                        }
                        let computed = checksum64(&payload[start..]);
                        if computed != block_sum {
                            return Err(TraceError::ChecksumMismatch {
                                stored: block_sum,
                                computed,
                            });
                        }
                        sum = checksum_combine(sum, block_sum);
                    }
                    if pos != section_end {
                        return Err(TraceError::Corrupt("block section length mismatch"));
                    }
                    cores.push(CoreTrace { events, payload });
                }
            }
            v => return Err(TraceError::UnsupportedVersion(v)),
        }
        let stored = get_u64(bytes, &mut pos)?;
        let computed = sum;
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        let end = bytes
            .get(pos..pos + END_MAGIC.len())
            .ok_or(TraceError::Truncated)?;
        if end != END_MAGIC {
            return Err(TraceError::BadMagic);
        }
        if pos + END_MAGIC.len() != bytes.len() {
            return Err(TraceError::Corrupt("trailing bytes after end magic"));
        }
        Ok(Trace { fingerprint, cores })
    }
}

/// Accumulates one [`StreamEncoder`] per core and assembles the
/// [`Trace`].
#[derive(Debug)]
pub struct TraceRecorder {
    fingerprint: u64,
    streams: Vec<StreamEncoder>,
}

impl TraceRecorder {
    /// A recorder with `n_cores` empty streams.
    #[must_use]
    pub fn new(n_cores: usize, fingerprint: u64) -> Self {
        TraceRecorder {
            fingerprint,
            streams: (0..n_cores).map(|_| StreamEncoder::new()).collect(),
        }
    }

    /// The encoder for one core's stream.
    ///
    /// # Panics
    /// If `core` is out of range.
    pub fn stream(&mut self, core: usize) -> &mut StreamEncoder {
        &mut self.streams[core]
    }

    /// Finish every stream and build the trace.
    #[must_use]
    pub fn finish(self) -> Trace {
        Trace {
            fingerprint: self.fingerprint,
            cores: self
                .streams
                .into_iter()
                .map(|s| {
                    let (events, payload) = s.finish();
                    CoreTrace { events, payload }
                })
                .collect(),
        }
    }
}

/// Fans each event out to two observers, in order — the composition that
/// lets a recording stack on a timing model (record while measuring)
/// or on any other observer.
pub struct Tee<'a>(
    /// First receiver.
    pub &'a mut dyn ExecObserver,
    /// Second receiver.
    pub &'a mut dyn ExecObserver,
);

impl ExecObserver for Tee<'_> {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.0.on_event(ev);
        self.1.on_event(ev);
    }
}

/// Fans each event out to any number of observers, in order — the
/// N-receiver generalisation of [`Tee`]. This is how one functional
/// execution (or one trace decode pass) drives every machine of a grid
/// row at once: the event stream is observer-independent, so each
/// receiver sees exactly what a dedicated run would have shown it.
pub struct FanOut<'a>(
    /// Receivers, notified in order.
    pub Vec<&'a mut dyn ExecObserver>,
);

impl ExecObserver for FanOut<'_> {
    fn on_event(&mut self, ev: &Event<'_>) {
        for obs in &mut self.0 {
            obs.on_event(ev);
        }
    }
}

/// Drive an already-started interpreter cursor to completion, recording
/// every event into `enc` (with step boundaries) while also forwarding
/// to `extra` — pass a timing observer to record during a measured
/// simulation, or a [`swpf_ir::interp::NullObserver`] for a pure
/// recording pass.
///
/// # Errors
/// Any [`Trap`] the program raises.
pub fn record_cursor(
    interp: &mut Interp,
    enc: &mut StreamEncoder,
    extra: &mut dyn ExecObserver,
) -> Result<Option<RtVal>, Trap> {
    loop {
        let step = {
            let mut tee = Tee(enc, extra);
            interp.step_cursor(&mut tee)?
        };
        enc.end_step();
        match step {
            Step::Continue => {}
            Step::Done(v) => return Ok(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::interp::{CountingObserver, EventKind};
    use swpf_ir::prelude::*;
    use swpf_ir::ValueId;

    fn push_alu(rec: &mut TraceRecorder, core: usize, pc: u64) {
        let e = Event {
            pc,
            frame: 0,
            result: ValueId((pc & 0xffff_ffff) as u32),
            kind: EventKind::Alu,
            operands: &[],
        };
        rec.stream(core).push(&e);
        rec.stream(core).end_step();
    }

    #[test]
    fn envelope_round_trips_multicore() {
        let mut rec = TraceRecorder::new(3, 0xdead_beef);
        push_alu(&mut rec, 0, 1);
        push_alu(&mut rec, 2, 9);
        push_alu(&mut rec, 2, 10);
        // Core 1 stays empty on purpose.
        let trace = rec.finish();
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.fingerprint, 0xdead_beef);
        assert_eq!(back.num_cores(), 3);
        assert_eq!(back.events(0), 1);
        assert_eq!(back.events(1), 0);
        assert_eq!(back.events(2), 2);
        assert!(back.cursor(1).unwrap().next_event().unwrap().is_none());
        assert_eq!(back.cursor(3).unwrap_err(), TraceError::MissingCore(3));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut rec = TraceRecorder::new(1, 0);
        for pc in 0..32 {
            push_alu(&mut rec, 0, pc);
        }
        let mut bytes = rec.finish().to_bytes();
        // v2 layout: 24-byte header, 20-byte section prologue, 17-byte
        // block header, then the block's compressed bytes. Flip a bit
        // in the middle of the compressed data: the block checksum
        // (computed over the re-expanded bytes) must catch it.
        let comp_len = u32::from_le_bytes(bytes[48..52].try_into().unwrap()) as usize;
        assert!(comp_len > 0, "32 events encode at least one byte");
        let at = 61 + comp_len / 2;
        bytes[at] ^= 0x40;
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::ChecksumMismatch { .. }) | Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn v1_envelope_still_decodes() {
        let mut rec = TraceRecorder::new(2, 0xfeed);
        push_alu(&mut rec, 0, 1);
        push_alu(&mut rec, 1, 2);
        let trace = rec.finish();
        let v1 = trace.to_bytes_v1();
        let v2 = trace.to_bytes();
        assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(v2[8..12].try_into().unwrap()), 2);
        let from_v1 = Trace::from_bytes(&v1).expect("v1 decodes");
        let from_v2 = Trace::from_bytes(&v2).expect("v2 decodes");
        assert_eq!(from_v1, trace);
        assert_eq!(from_v1, from_v2);
    }

    /// Real-shaped loop streams must actually shrink: the whole point
    /// of v2 is that loop iterations are byte-periodic.
    #[test]
    fn v2_is_smaller_than_v1_on_loopy_streams() {
        let mut rec = TraceRecorder::new(1, 0);
        for i in 0..20_000u64 {
            let e = Event {
                pc: 7,
                frame: 0,
                result: ValueId(7),
                kind: EventKind::Load {
                    addr: 0x1000 + i * 8,
                    size: 8,
                },
                operands: &[],
            };
            rec.stream(0).push(&e);
            rec.stream(0).end_step();
        }
        let trace = rec.finish();
        let v1 = trace.to_bytes_v1().len();
        let v2 = trace.to_bytes().len();
        assert!(
            v2 * 5 <= v1,
            "expected >=5x shrink on a periodic stream, got {v1} -> {v2}"
        );
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let trace = TraceRecorder::new(1, 0).finish();
        let mut bytes = trace.to_bytes();
        bytes[0] = b'X';
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
        let mut bytes = trace.to_bytes();
        bytes[8] = 99; // version field
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        );
        assert_eq!(Trace::from_bytes(&bytes[..4]), Err(TraceError::Truncated));
    }

    /// Record a real kernel through the engine and replay the cursor
    /// against a counting observer: the tee'd recording must preserve
    /// the stream exactly.
    #[test]
    fn recorded_stream_matches_live_counts() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (a, n) = (b.arg(0), b.arg(1));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let acc = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let g = b.gep(a, i, 8);
            b.prefetch(g);
            let v = b.load(Type::I64, g);
            let acc2 = b.add(acc, v);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to(exit);
            b.ret(Some(acc));
        }
        let mut interp = Interp::new();
        let base = interp.alloc_array(64, 8).unwrap();
        let args = [RtVal::Int(base as i64), RtVal::Int(64)];
        interp.start(&m, fid, &args);

        let mut live = CountingObserver::default();
        let mut enc = StreamEncoder::new();
        let ret = record_cursor(&mut interp, &mut enc, &mut live).unwrap();
        assert_eq!(ret, Some(RtVal::Int(0)), "array is zero-filled");

        let mut rec = TraceRecorder::new(1, 7);
        *rec.stream(0) = enc;
        let trace = rec.finish();
        assert_eq!(trace.events(0), live.total);

        let mut replayed = CountingObserver::default();
        let mut cur = trace.cursor(0).unwrap();
        while let Some((ev, _)) = cur.next_event().unwrap() {
            replayed.on_event(&ev);
        }
        assert_eq!(replayed.total, live.total);
        assert_eq!(replayed.loads, live.loads);
        assert_eq!(replayed.prefetches, live.prefetches);
        assert_eq!(replayed.branches, live.branches);
    }

    /// The tee forwards to both receivers in order.
    #[test]
    fn tee_fans_out() {
        let mut a = CountingObserver::default();
        let mut b = CountingObserver::default();
        let e = Event {
            pc: 3,
            frame: 0,
            result: ValueId(3),
            kind: EventKind::Branch { taken: true },
            operands: &[],
        };
        Tee(&mut a, &mut b).on_event(&e);
        assert_eq!((a.total, a.branches), (1, 1));
        assert_eq!((b.total, b.branches), (1, 1));
    }
}
