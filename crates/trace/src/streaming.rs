//! Bounded-memory replay directly from a v2 trace file.
//!
//! [`Trace::from_bytes`] materialises every core's full uncompressed
//! payload, which is fine for test-scale corpora but defeats the point
//! of a compressed store at paper scale. [`StreamingReplay`] instead
//! reads the envelope header once, then hands out per-core
//! [`StreamingCursor`]s that decode **one block at a time**: the
//! resident window per cursor is the current uncompressed block, the
//! compressed scratch buffer, and the (kernel-static, small) operand
//! dictionary — independent of trace length. The memory contract is
//! enforced by the `streaming_mem` integration test with a counting
//! allocator.
//!
//! Integrity: the header magic/version and the per-core section
//! structure are validated at [`StreamingReplay::open`]; every block's
//! FNV checksum is verified over the *uncompressed* bytes before a
//! single event from it is surfaced. (The whole-file footer checksum is
//! redundant with the per-block sums and is only re-verified by the
//! full reader, `Trace::from_bytes`.) Each cursor opens its own file
//! handle, so multicore replay can interleave per-core streams at
//! arbitrary file offsets.
//!
//! Version-1 files are rejected with
//! [`TraceError::UnsupportedVersion`]: they carry no block structure to
//! stream. Cache layers treat that exactly like a stale fingerprint —
//! re-record and overwrite.

use crate::block::{
    decompress_into, decompress_lzh_into, MAX_BLOCK, METHOD_LZ, METHOD_LZH, METHOD_STORED,
};
use crate::stream::{DecodeState, EventSource};
use crate::wire::checksum64;
use crate::{TraceError, END_MAGIC, MAGIC};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use swpf_ir::interp::Event;

/// Map an I/O failure into the (Copy) trace error space; a clean EOF
/// mid-structure is a truncation like any other.
fn io_err(e: &std::io::Error) -> TraceError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TraceError::Truncated
    } else {
        TraceError::Io(e.kind())
    }
}

fn read_exact(f: &mut File, buf: &mut [u8]) -> Result<(), TraceError> {
    f.read_exact(buf).map_err(|e| io_err(&e))
}

fn read_u32(f: &mut File) -> Result<u32, TraceError> {
    let mut b = [0u8; 4];
    read_exact(f, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(f: &mut File) -> Result<u64, TraceError> {
    let mut b = [0u8; 8];
    read_exact(f, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Location and size of one core's block section within the file.
#[derive(Debug, Clone, Copy)]
struct CoreMeta {
    events: u64,
    n_blocks: u32,
    /// Absolute file offset of the first block header.
    offset: u64,
}

/// A v2 trace file opened for block-at-a-time replay. Holds only the
/// header metadata; event data stays on disk until a
/// [`StreamingCursor`] walks it.
#[derive(Debug)]
pub struct StreamingReplay {
    path: PathBuf,
    fingerprint: u64,
    cores: Vec<CoreMeta>,
}

impl StreamingReplay {
    /// Open a v2 trace file, reading and validating the envelope
    /// header and per-core section structure (but no event data).
    ///
    /// # Errors
    /// Any [`TraceError`] the envelope violates, including
    /// [`TraceError::Io`] for filesystem failures and
    /// [`TraceError::UnsupportedVersion`] for v1 files.
    pub fn open(path: &Path) -> Result<StreamingReplay, TraceError> {
        let mut f = File::open(path).map_err(|e| io_err(&e))?;
        let file_len = f.metadata().map_err(|e| io_err(&e))?.len();
        let mut magic = [0u8; 8];
        read_exact(&mut f, &mut magic)?;
        if magic != *MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = read_u32(&mut f)?;
        if version != crate::FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let fingerprint = read_u64(&mut f)?;
        let n_cores = read_u32(&mut f)? as usize;
        let mut cores = Vec::with_capacity(n_cores.min(1 << 10));
        let mut pos = 24u64;
        for _ in 0..n_cores {
            let events = read_u64(&mut f)?;
            let n_blocks = read_u32(&mut f)?;
            let comp_total = read_u64(&mut f)?;
            pos += 20;
            cores.push(CoreMeta {
                events,
                n_blocks,
                offset: pos,
            });
            pos = pos.checked_add(comp_total).ok_or(TraceError::Truncated)?;
            if pos > file_len {
                return Err(TraceError::Truncated);
            }
            f.seek(SeekFrom::Start(pos)).map_err(|e| io_err(&e))?;
        }
        // Footer: combined checksum (verified per-block during
        // streaming) and the end magic, which must close the file.
        let _footer_sum = read_u64(&mut f)?;
        let mut end = [0u8; 8];
        read_exact(&mut f, &mut end)?;
        if end != *END_MAGIC {
            return Err(TraceError::BadMagic);
        }
        if pos + 16 != file_len {
            return Err(TraceError::Corrupt("trailing bytes after end magic"));
        }
        Ok(StreamingReplay {
            path: path.to_path_buf(),
            fingerprint,
            cores,
        })
    }

    /// The kernel fingerprint recorded in the header.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of per-core streams.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Recorded event count of one core's stream.
    ///
    /// # Panics
    /// If `core` is out of range.
    #[must_use]
    pub fn events(&self, core: usize) -> u64 {
        self.cores[core].events
    }

    /// A block-at-a-time decode cursor over one core's events. Each
    /// cursor opens its own file handle (multicore replay reads several
    /// sections concurrently).
    ///
    /// # Errors
    /// [`TraceError::MissingCore`] or [`TraceError::Io`].
    pub fn cursor(&self, core: usize) -> Result<StreamingCursor, TraceError> {
        let meta = *self.cores.get(core).ok_or(TraceError::MissingCore(core))?;
        let mut file = File::open(&self.path).map_err(|e| io_err(&e))?;
        file.seek(SeekFrom::Start(meta.offset))
            .map_err(|e| io_err(&e))?;
        Ok(StreamingCursor {
            file,
            blocks_left: meta.n_blocks,
            remaining: meta.events,
            buf: Vec::new(),
            pos: 0,
            comp: Vec::new(),
            state: DecodeState::new(),
        })
    }
}

/// Decodes one core's events block by block. The uncompressed window
/// holds at most one block plus any event straddling its start; decode
/// state (delta mirrors, operand dictionary) persists across blocks,
/// exactly as if the payload were contiguous.
#[derive(Debug)]
pub struct StreamingCursor {
    file: File,
    blocks_left: u32,
    remaining: u64,
    /// Decoded-but-unconsumed window.
    buf: Vec<u8>,
    pos: usize,
    /// Compressed-bytes scratch, reused across blocks.
    comp: Vec<u8>,
    state: DecodeState,
}

impl StreamingCursor {
    /// Pull the next block into the window. Returns `false` when the
    /// section has no more blocks.
    fn refill(&mut self) -> Result<bool, TraceError> {
        if self.blocks_left == 0 {
            return Ok(false);
        }
        self.blocks_left -= 1;
        // Drop the consumed prefix first: this is what bounds the
        // window at one block plus a partial event.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let mut hdr = [0u8; 17];
        read_exact(&mut self.file, &mut hdr)?;
        let raw_len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
        let comp_len = u32::from_le_bytes(hdr[4..8].try_into().unwrap()) as usize;
        let method = hdr[8];
        let stored_sum = u64::from_le_bytes(hdr[9..17].try_into().unwrap());
        if raw_len > MAX_BLOCK || comp_len > MAX_BLOCK {
            return Err(TraceError::Corrupt("implausible block size"));
        }
        self.comp.resize(comp_len, 0);
        read_exact(&mut self.file, &mut self.comp)?;
        let start = self.buf.len();
        match method {
            METHOD_STORED => {
                if comp_len != raw_len {
                    return Err(TraceError::Corrupt("stored block length mismatch"));
                }
                self.buf.extend_from_slice(&self.comp);
            }
            METHOD_LZ => decompress_into(&self.comp, raw_len, &mut self.buf)?,
            METHOD_LZH => decompress_lzh_into(&self.comp, raw_len, &mut self.buf)?,
            _ => return Err(TraceError::Corrupt("unknown block method")),
        }
        let computed = checksum64(&self.buf[start..]);
        if computed != stored_sum {
            return Err(TraceError::ChecksumMismatch {
                stored: stored_sum,
                computed,
            });
        }
        Ok(true)
    }

    /// Decode the next event, refilling the window from disk as blocks
    /// are exhausted. Semantics match [`crate::EventCursor::next_event`].
    ///
    /// # Errors
    /// Any [`TraceError`] in the stream, including
    /// [`TraceError::ChecksumMismatch`] for a corrupted block (detected
    /// before any of its events are surfaced) and [`TraceError::Io`].
    pub fn next_event(&mut self) -> Result<Option<(Event<'_>, bool)>, TraceError> {
        if self.remaining == 0 {
            if self.pos != self.buf.len() || self.blocks_left != 0 {
                return Err(TraceError::Corrupt("trailing bytes after final event"));
            }
            return Ok(None);
        }
        loop {
            let mark = self.state.mark();
            let mut pos = self.pos;
            match self.state.decode_one(&self.buf, &mut pos) {
                Ok(raw) => {
                    self.pos = pos;
                    self.remaining -= 1;
                    let operands = self.state.operands(raw.slot);
                    return Ok(Some((
                        Event {
                            pc: raw.pc,
                            frame: raw.frame,
                            result: raw.result,
                            kind: raw.kind,
                            operands,
                        },
                        raw.end_of_step,
                    )));
                }
                // The event straddles the window's end: roll the state
                // back, append the next block, retry. A partial event
                // can only fail as Truncated (varints self-delimit), so
                // this never masks real corruption.
                Err(TraceError::Truncated) => {
                    self.state.restore(mark);
                    if !self.refill()? {
                        return Err(TraceError::Truncated);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl EventSource for StreamingCursor {
    #[inline]
    fn next_event(&mut self) -> Result<Option<(Event<'_>, bool)>, TraceError> {
        StreamingCursor::next_event(self)
    }
}
