//! Per-core event streams: the encoder behind the recording observer and
//! the streaming decode cursor replay feeds from.
//!
//! ## Event grammar
//!
//! Each retired event is one tag byte followed by varint fields (see
//! DESIGN.md §6 for the rationale):
//!
//! ```text
//! tag      u8   bits 0-2: kind code (Alu, Load, Store, Prefetch,
//!               Branch, Call, Ret, Alloc)
//!               bit 3: kind flag — Branch `taken` / Prefetch `valid` /
//!                      for Load and Store, "explicit access size
//!                      follows" (absent: the last size of that kind
//!                      repeats — almost always, loops touch one width)
//!               bit 4: MORE — another event follows within the same
//!                      interpreter step (phi copies retire with their
//!                      branch; multicore replay schedules by steps)
//!               bit 5: FRAME — a frame delta follows
//!               bit 6: OPS — the operand list is encoded inline and
//!                      defines the next operand-dictionary slot
//!               bit 7: RESULT — an explicit result id follows (absent:
//!                      the result is the low 32 bits of the pc, the
//!                      engine's invariant)
//! pc       zigzag varint, delta vs. the previous event's pc
//! [frame]  zigzag varint, delta vs. the previous frame id   (FRAME)
//! [result] varint u32                                       (RESULT)
//! Load/Store: addr zigzag varint (delta vs. the last address of the
//!             same kind), then size varint u32 iff the kind flag is set
//! Prefetch:   addr zigzag varint (delta vs. the last prefetch address)
//! [ops]    count varint + one varint u32 per operand id     (OPS)
//!          absent: zigzag varint referencing an existing dictionary
//!          slot, biased so sequential reuse encodes as zero
//! ```
//!
//! Operand lists are static per instruction (phis aside, whose chosen
//! incoming varies by CFG edge), so the stream carries each list once
//! and back-references it afterwards: the first occurrence is inlined
//! and appended to a dictionary both sides grow in lockstep; later
//! occurrences cost one (usually zero-valued) byte.

use crate::wire::{get_delta, get_varint, put_varint};
use crate::TraceError;
use std::collections::HashMap;
use swpf_ir::interp::{Event, EventKind, ExecObserver};
use swpf_ir::ValueId;

/// Functions covered by the dense pc map; engine pcs index far below.
const DENSE_FUNCS: usize = 256;
/// Values per function covered by the dense pc map.
const DENSE_VALUES: usize = 1 << 16;

/// pc → operand-dictionary slot. Engine pcs are `(func << 32) | value`
/// with small indices, so lookups — one per encoded event — are dense
/// two-level array reads in the common case; arbitrary pcs (the codec
/// stays general for hand-built events) fall back to a hash map.
#[derive(Debug, Default)]
struct PcMap {
    /// `dense[func][value]` holds the slot, `u32::MAX` meaning absent.
    dense: Vec<Vec<u32>>,
    spill: HashMap<u64, u32>,
}

impl PcMap {
    #[inline(always)]
    fn split(pc: u64) -> (usize, usize) {
        ((pc >> 32) as usize, (pc & 0xffff_ffff) as usize)
    }

    #[inline(always)]
    fn get(&self, pc: u64) -> Option<u32> {
        let (f, v) = Self::split(pc);
        if f < DENSE_FUNCS && v < DENSE_VALUES {
            match self.dense.get(f).and_then(|d| d.get(v)) {
                Some(&slot) if slot != u32::MAX => Some(slot),
                _ => None,
            }
        } else {
            self.spill.get(&pc).copied()
        }
    }

    fn set(&mut self, pc: u64, slot: u32) {
        debug_assert_ne!(slot, u32::MAX, "slot sentinel");
        let (f, v) = Self::split(pc);
        if f < DENSE_FUNCS && v < DENSE_VALUES {
            if self.dense.len() <= f {
                self.dense.resize_with(f + 1, Vec::new);
            }
            let d = &mut self.dense[f];
            if d.len() <= v {
                d.resize(v + 1, u32::MAX);
            }
            d[v] = slot;
        } else {
            self.spill.insert(pc, slot);
        }
    }
}

const KIND_ALU: u8 = 0;
const KIND_LOAD: u8 = 1;
const KIND_STORE: u8 = 2;
const KIND_PREFETCH: u8 = 3;
const KIND_BRANCH: u8 = 4;
const KIND_CALL: u8 = 5;
const KIND_RET: u8 = 6;
const KIND_ALLOC: u8 = 7;

const TAG_KIND: u8 = 0b0000_0111;
const TAG_FLAG: u8 = 0b0000_1000;
const TAG_MORE: u8 = 0b0001_0000;
const TAG_FRAME: u8 = 0b0010_0000;
const TAG_OPS: u8 = 0b0100_0000;
const TAG_RESULT: u8 = 0b1000_0000;

/// Mirrored per-stream delta state (the encoder and the cursor advance
/// identical copies of this).
#[derive(Debug, Default, Clone)]
struct DeltaState {
    last_pc: u64,
    last_frame: u64,
    last_load_addr: u64,
    last_store_addr: u64,
    last_pf_addr: u64,
    /// Last access sizes; 0 (no real access has it) forces the first
    /// load/store of a stream to carry its size explicitly.
    last_load_size: u32,
    last_store_size: u32,
    /// Last operand-dictionary slot used; `u32::MAX` so the bias
    /// `last + 1` starts at slot 0.
    last_slot: u32,
}

impl DeltaState {
    fn new() -> Self {
        DeltaState {
            last_slot: u32::MAX,
            ..DeltaState::default()
        }
    }
}

/// Append an LEB128 varint to the per-event stack buffer.
#[inline(always)]
fn buf_varint(tmp: &mut [u8; 64], n: &mut usize, mut v: u64) {
    while v >= 0x80 {
        tmp[*n] = (v as u8) | 0x80;
        *n += 1;
        v >>= 7;
    }
    tmp[*n] = v as u8;
    *n += 1;
}

/// Append a zigzag-encoded signed delta to the per-event stack buffer.
#[inline(always)]
fn buf_delta(tmp: &mut [u8; 64], n: &mut usize, d: i64) {
    buf_varint(tmp, n, crate::wire::zigzag(d));
}

/// Encodes one core's retire-event stream. Implements [`ExecObserver`],
/// so it can sit directly on the engine or stack on a timing observer
/// through [`crate::Tee`].
///
/// Call [`StreamEncoder::end_step`] after every interpreter step so the
/// stream records step boundaries — multicore replay interleaves cores
/// at step granularity, exactly like direct multicore simulation.
#[derive(Debug)]
pub struct StreamEncoder {
    payload: Vec<u8>,
    events: u64,
    /// Offset of the previous event's tag within the current step, for
    /// retrofitting the MORE bit when a follower arrives.
    step_tag_at: Option<usize>,
    st: DeltaState,
    /// Operand-dictionary lookup: pc of the defining instruction → slot.
    dict: PcMap,
    /// Slot → range into `pool`.
    lists: Vec<(u32, u32)>,
    pool: Vec<ValueId>,
}

impl Default for StreamEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamEncoder {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        StreamEncoder {
            payload: Vec::new(),
            events: 0,
            step_tag_at: None,
            st: DeltaState::new(),
            dict: PcMap::default(),
            lists: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Events encoded so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Encoded payload size in bytes so far.
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Append one event.
    ///
    /// Sits on the record path's per-event hot path, so the whole
    /// fixed-size part of the record is assembled in a stack buffer and
    /// lands in the payload with a single `extend_from_slice`; only the
    /// rare inline operand list writes to the payload directly.
    pub fn push(&mut self, ev: &Event<'_>) {
        // The previous event of this step now has a follower.
        if let Some(at) = self.step_tag_at {
            self.payload[at] |= TAG_MORE;
        }

        let (code, flag) = match ev.kind {
            EventKind::Alu => (KIND_ALU, false),
            EventKind::Load { size, .. } => (KIND_LOAD, size != self.st.last_load_size),
            EventKind::Store { size, .. } => (KIND_STORE, size != self.st.last_store_size),
            EventKind::Prefetch { valid, .. } => (KIND_PREFETCH, valid),
            EventKind::Branch { taken } => (KIND_BRANCH, taken),
            EventKind::Call => (KIND_CALL, false),
            EventKind::Ret => (KIND_RET, false),
            EventKind::Alloc => (KIND_ALLOC, false),
        };
        let frame_delta = ev.frame.wrapping_sub(self.st.last_frame) as i64;
        let result_explicit = u64::from(ev.result.0) != ev.pc & 0xffff_ffff;
        let existing_slot = self.dict.get(ev.pc).filter(|&slot| {
            let (at, len) = self.lists[slot as usize];
            self.pool[at as usize..(at + len) as usize] == *ev.operands
        });

        let mut tag = code;
        if flag {
            tag |= TAG_FLAG;
        }
        if frame_delta != 0 {
            tag |= TAG_FRAME;
        }
        if result_explicit {
            tag |= TAG_RESULT;
        }
        if existing_slot.is_none() {
            tag |= TAG_OPS;
        }

        // Worst case fits easily: tag 1 + pc 10 + frame 10 + result 5
        // + addr 10 + size 5 + slot backreference 10 = 51 bytes.
        let mut tmp = [0u8; 64];
        tmp[0] = tag;
        let mut n = 1usize;
        buf_delta(&mut tmp, &mut n, ev.pc.wrapping_sub(self.st.last_pc) as i64);
        self.st.last_pc = ev.pc;
        if frame_delta != 0 {
            buf_delta(&mut tmp, &mut n, frame_delta);
            self.st.last_frame = ev.frame;
        }
        if result_explicit {
            buf_varint(&mut tmp, &mut n, u64::from(ev.result.0));
        }

        match ev.kind {
            EventKind::Load { addr, size } => {
                buf_delta(
                    &mut tmp,
                    &mut n,
                    addr.wrapping_sub(self.st.last_load_addr) as i64,
                );
                self.st.last_load_addr = addr;
                if flag {
                    buf_varint(&mut tmp, &mut n, u64::from(size));
                    self.st.last_load_size = size;
                }
            }
            EventKind::Store { addr, size } => {
                buf_delta(
                    &mut tmp,
                    &mut n,
                    addr.wrapping_sub(self.st.last_store_addr) as i64,
                );
                self.st.last_store_addr = addr;
                if flag {
                    buf_varint(&mut tmp, &mut n, u64::from(size));
                    self.st.last_store_size = size;
                }
            }
            EventKind::Prefetch { addr, .. } => {
                buf_delta(
                    &mut tmp,
                    &mut n,
                    addr.wrapping_sub(self.st.last_pf_addr) as i64,
                );
                self.st.last_pf_addr = addr;
            }
            _ => {}
        }

        if let Some(slot) = existing_slot {
            let expected = i64::from(self.st.last_slot.wrapping_add(1));
            buf_delta(&mut tmp, &mut n, i64::from(slot) - expected);
            self.st.last_slot = slot;
        }

        self.step_tag_at = Some(self.payload.len());
        self.payload.extend_from_slice(&tmp[..n]);

        if existing_slot.is_none() {
            // First sighting of this (pc, operand list): inline it and
            // grow the dictionary. Rare — loops reuse their lists.
            put_varint(&mut self.payload, ev.operands.len() as u64);
            for op in ev.operands {
                put_varint(&mut self.payload, u64::from(op.0));
            }
            let at = self.pool.len() as u32;
            self.pool.extend_from_slice(ev.operands);
            let slot = self.lists.len() as u32;
            self.lists.push((at, ev.operands.len() as u32));
            self.dict.set(ev.pc, slot);
            self.st.last_slot = slot;
        }
        self.events += 1;
    }

    /// Mark the end of an interpreter step (the events pushed since the
    /// previous boundary form one step).
    pub fn end_step(&mut self) {
        self.step_tag_at = None;
    }

    /// Consume the encoder, returning `(event count, payload)`.
    #[must_use]
    pub fn finish(self) -> (u64, Vec<u8>) {
        (self.events, self.payload)
    }
}

impl ExecObserver for StreamEncoder {
    fn on_event(&mut self, ev: &Event<'_>) {
        self.push(ev);
    }
}

/// Everything a decoder carries between events: the mirrored delta
/// state plus the operand dictionary grown in lockstep with the
/// encoder. Shared by the in-memory [`EventCursor`] and the block-wise
/// [`crate::StreamingCursor`] — both drive [`DecodeState::decode_one`],
/// which is the single implementation of the event grammar's read side.
#[derive(Debug)]
pub(crate) struct DecodeState {
    st: DeltaState,
    lists: Vec<(u32, u32)>,
    pool: Vec<ValueId>,
}

/// A rollback point for [`DecodeState`]: the delta state is cloned, the
/// dictionary (append-only) is captured by length. Lets a streaming
/// decoder retry an event that ran off the end of its current window
/// after fetching the next block.
#[derive(Debug)]
pub(crate) struct DecodeMark {
    st: DeltaState,
    lists_len: usize,
    pool_len: usize,
}

/// One decoded event, with operands referenced by dictionary slot (the
/// caller materialises the slice from its own `DecodeState` so the
/// borrow does not pin the state mutably).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawEvent {
    pub pc: u64,
    pub frame: u64,
    pub result: ValueId,
    pub kind: EventKind,
    pub slot: u32,
    pub end_of_step: bool,
}

impl DecodeState {
    pub(crate) fn new() -> Self {
        DecodeState {
            st: DeltaState::new(),
            lists: Vec::new(),
            pool: Vec::new(),
        }
    }

    pub(crate) fn mark(&self) -> DecodeMark {
        DecodeMark {
            st: self.st.clone(),
            lists_len: self.lists.len(),
            pool_len: self.pool.len(),
        }
    }

    pub(crate) fn restore(&mut self, mark: DecodeMark) {
        self.st = mark.st;
        self.lists.truncate(mark.lists_len);
        self.pool.truncate(mark.pool_len);
    }

    /// The operand list of a slot returned by [`DecodeState::decode_one`].
    #[inline(always)]
    pub(crate) fn operands(&self, slot: u32) -> &[ValueId] {
        // Safety: `slot` was bounds-checked against `lists` by
        // `decode_one` (the inline arm pushes the entry it indexes), and
        // every `lists` range is within `pool` by construction — both
        // are only ever extended together. Same validate-then-unchecked
        // shape as the engine's register file (`swpf_ir::exec::rd`).
        debug_assert!((slot as usize) < self.lists.len());
        let (at, len) = unsafe { *self.lists.get_unchecked(slot as usize) };
        debug_assert!((at + len) as usize <= self.pool.len());
        unsafe { self.pool.get_unchecked(at as usize..(at + len) as usize) }
    }

    /// Decode one event from `buf` at `*pos`, advancing `pos` past it.
    ///
    /// On error the state may have advanced partially; callers that
    /// retry (streaming refill) must bracket the call with
    /// [`DecodeState::mark`] / [`DecodeState::restore`]. A partial
    /// event always fails with [`TraceError::Truncated`]: varints are
    /// self-delimiting and the tag fixes the field list, so a prefix of
    /// a valid encoding can never decode as a different complete event.
    ///
    /// # Errors
    /// [`TraceError::Truncated`] or [`TraceError::Corrupt`] on a
    /// malformed payload.
    #[inline]
    pub(crate) fn decode_one(
        &mut self,
        buf: &[u8],
        at: &mut usize,
    ) -> Result<RawEvent, TraceError> {
        let mut pos = *at;
        let &tag = buf.get(pos).ok_or(TraceError::Truncated)?;
        pos += 1;
        let flag = tag & TAG_FLAG != 0;
        let end_of_step = tag & TAG_MORE == 0;

        let pc = self
            .st
            .last_pc
            .wrapping_add(get_delta(buf, &mut pos)? as u64);
        self.st.last_pc = pc;

        if tag & TAG_FRAME != 0 {
            let d = get_delta(buf, &mut pos)?;
            self.st.last_frame = self.st.last_frame.wrapping_add(d as u64);
        }
        let frame = self.st.last_frame;

        let result = if tag & TAG_RESULT != 0 {
            let r = get_varint(buf, &mut pos)?;
            ValueId(u32::try_from(r).map_err(|_| TraceError::Corrupt("result id overflows u32"))?)
        } else {
            ValueId((pc & 0xffff_ffff) as u32)
        };

        let kind = match tag & TAG_KIND {
            KIND_ALU => EventKind::Alu,
            KIND_LOAD => {
                let d = get_delta(buf, &mut pos)?;
                let addr = self.st.last_load_addr.wrapping_add(d as u64);
                self.st.last_load_addr = addr;
                if flag {
                    let size = get_varint(buf, &mut pos)?;
                    self.st.last_load_size = u32::try_from(size)
                        .map_err(|_| TraceError::Corrupt("access size overflows u32"))?;
                }
                EventKind::Load {
                    addr,
                    size: self.st.last_load_size,
                }
            }
            KIND_STORE => {
                let d = get_delta(buf, &mut pos)?;
                let addr = self.st.last_store_addr.wrapping_add(d as u64);
                self.st.last_store_addr = addr;
                if flag {
                    let size = get_varint(buf, &mut pos)?;
                    self.st.last_store_size = u32::try_from(size)
                        .map_err(|_| TraceError::Corrupt("access size overflows u32"))?;
                }
                EventKind::Store {
                    addr,
                    size: self.st.last_store_size,
                }
            }
            KIND_PREFETCH => {
                let d = get_delta(buf, &mut pos)?;
                let addr = self.st.last_pf_addr.wrapping_add(d as u64);
                self.st.last_pf_addr = addr;
                EventKind::Prefetch { addr, valid: flag }
            }
            KIND_BRANCH => EventKind::Branch { taken: flag },
            KIND_CALL => EventKind::Call,
            KIND_RET => EventKind::Ret,
            KIND_ALLOC => EventKind::Alloc,
            _ => unreachable!("3-bit kind code"),
        };

        let slot = if tag & TAG_OPS != 0 {
            let count = get_varint(buf, &mut pos)?;
            let count = usize::try_from(count)
                .ok()
                .filter(|&c| c <= (1 << 24))
                .ok_or(TraceError::Corrupt("implausible operand count"))?;
            let at = self.pool.len() as u32;
            for _ in 0..count {
                let id = get_varint(buf, &mut pos)?;
                let id = u32::try_from(id)
                    .map_err(|_| TraceError::Corrupt("operand id overflows u32"))?;
                self.pool.push(ValueId(id));
            }
            let slot = self.lists.len() as u32;
            self.lists.push((at, count as u32));
            slot
        } else {
            let expected = i64::from(self.st.last_slot.wrapping_add(1));
            let slot = expected + get_delta(buf, &mut pos)?;
            u32::try_from(slot)
                .ok()
                .filter(|&s| (s as usize) < self.lists.len())
                .ok_or(TraceError::Corrupt("operand slot out of range"))?
        };
        self.st.last_slot = slot;
        *at = pos;
        Ok(RawEvent {
            pc,
            frame,
            result,
            kind,
            slot,
            end_of_step,
        })
    }
}

/// Streaming decoder over one core's payload. Produced by
/// [`crate::Trace::cursor`]; yields [`Event`]s in retire order without
/// materialising the stream.
#[derive(Debug)]
pub struct EventCursor<'t> {
    buf: &'t [u8],
    pos: usize,
    remaining: u64,
    state: DecodeState,
}

impl<'t> EventCursor<'t> {
    pub(crate) fn new(payload: &'t [u8], events: u64) -> Self {
        EventCursor {
            buf: payload,
            pos: 0,
            remaining: events,
            state: DecodeState::new(),
        }
    }

    /// Decode the next event. Returns the event plus `end_of_step`
    /// (`true` when the event is the last of its interpreter step), or
    /// `None` when the stream is exhausted.
    ///
    /// This sits on replay's per-event hot path (it competes with the
    /// pre-decoded engine's per-instruction cost); the grammar itself
    /// is decoded by [`DecodeState::decode_one`].
    ///
    /// # Errors
    /// [`TraceError::Truncated`] or [`TraceError::Corrupt`] on a
    /// malformed payload.
    #[inline]
    pub fn next_event(&mut self) -> Result<Option<(Event<'_>, bool)>, TraceError> {
        if self.remaining == 0 {
            if self.pos != self.buf.len() {
                return Err(TraceError::Corrupt("trailing bytes after final event"));
            }
            return Ok(None);
        }
        self.remaining -= 1;
        let raw = self.state.decode_one(self.buf, &mut self.pos)?;
        let operands = self.state.operands(raw.slot);
        Ok(Some((
            Event {
                pc: raw.pc,
                frame: raw.frame,
                result: raw.result,
                kind: raw.kind,
                operands,
            },
            raw.end_of_step,
        )))
    }
}

/// Anything that yields a retire-event stream with step boundaries —
/// the in-memory [`EventCursor`] and the block-at-a-time
/// [`crate::StreamingCursor`]. Replay loops in `swpf-sim` are generic
/// over this, so the direct-replay and bounded-memory streaming paths
/// share one implementation.
pub trait EventSource {
    /// Next event plus its `end_of_step` flag, or `None` at the end of
    /// the stream.
    ///
    /// # Errors
    /// Any [`TraceError`] in the underlying stream.
    fn next_event(&mut self) -> Result<Option<(Event<'_>, bool)>, TraceError>;
}

impl EventSource for EventCursor<'_> {
    #[inline]
    fn next_event(&mut self) -> Result<Option<(Event<'_>, bool)>, TraceError> {
        EventCursor::next_event(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u64, frame: u64, kind: EventKind, operands: &[ValueId]) -> (Event<'_>, bool) {
        (
            Event {
                pc,
                frame,
                result: ValueId((pc & 0xffff_ffff) as u32),
                kind,
                operands,
            },
            true,
        )
    }

    #[test]
    fn encodes_and_decodes_a_small_stream() {
        let mut enc = StreamEncoder::new();
        let ops_a = [ValueId(1), ValueId(2)];
        let ops_b = [ValueId(3)];
        let events = [
            ev(5, 0, EventKind::Alu, &ops_a),
            ev(
                6,
                0,
                EventKind::Load {
                    addr: 0x1_0000,
                    size: 8,
                },
                &ops_b,
            ),
            ev(5, 0, EventKind::Alu, &ops_a), // dict reuse
            ev(7, 1, EventKind::Branch { taken: false }, &[]),
        ];
        for (e, _) in &events {
            enc.push(e);
            enc.end_step();
        }
        let (n, payload) = enc.finish();
        assert_eq!(n, 4);
        let mut cur = EventCursor::new(&payload, n);
        for (want, _) in &events {
            let (got, end) = cur.next_event().unwrap().expect("event present");
            assert!(end);
            assert_eq!(got.pc, want.pc);
            assert_eq!(got.frame, want.frame);
            assert_eq!(got.result, want.result);
            assert_eq!(got.kind, want.kind);
            assert_eq!(got.operands, want.operands);
        }
        assert!(cur.next_event().unwrap().is_none());
    }

    #[test]
    fn more_bit_marks_step_structure() {
        let mut enc = StreamEncoder::new();
        let (a, _) = ev(1, 0, EventKind::Alu, &[]);
        let (b, _) = ev(2, 0, EventKind::Branch { taken: true }, &[]);
        let (c, _) = ev(3, 0, EventKind::Ret, &[]);
        // Step 1: phi copy + branch. Step 2: ret.
        enc.push(&a);
        enc.push(&b);
        enc.end_step();
        enc.push(&c);
        enc.end_step();
        let (n, payload) = enc.finish();
        let mut cur = EventCursor::new(&payload, n);
        assert!(!cur.next_event().unwrap().unwrap().1, "phi copy continues");
        assert!(cur.next_event().unwrap().unwrap().1, "branch ends step 1");
        assert!(cur.next_event().unwrap().unwrap().1, "ret ends step 2");
    }

    #[test]
    fn dict_reuse_is_one_byte_per_repeat() {
        let mut enc = StreamEncoder::new();
        let ops = [ValueId(7), ValueId(8)];
        let (e, _) = ev(9, 0, EventKind::Alu, &ops);
        enc.push(&e);
        enc.end_step();
        let first = enc.payload_len();
        for _ in 0..10 {
            enc.push(&e);
            enc.end_step();
        }
        let per_repeat = (enc.payload_len() - first) / 10;
        // tag + zero pc delta + slot backreference = 3 bytes.
        assert!(per_repeat <= 3, "repeat costs {per_repeat} bytes");
    }

    #[test]
    fn explicit_result_round_trips() {
        let mut enc = StreamEncoder::new();
        let e = Event {
            pc: 42,
            frame: 0,
            result: ValueId(7), // != pc & 0xffffffff
            kind: EventKind::Alloc,
            operands: &[],
        };
        enc.push(&e);
        enc.end_step();
        let (n, payload) = enc.finish();
        let mut cur = EventCursor::new(&payload, n);
        let (got, _) = cur.next_event().unwrap().unwrap();
        assert_eq!(got.result, ValueId(7));
        assert_eq!(got.kind, EventKind::Alloc);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = StreamEncoder::new();
        let (e, _) = ev(1, 0, EventKind::Alu, &[]);
        enc.push(&e);
        let (n, mut payload) = enc.finish();
        payload.push(0);
        let mut cur = EventCursor::new(&payload, n);
        cur.next_event().unwrap();
        assert!(matches!(
            cur.next_event(),
            Err(TraceError::Corrupt("trailing bytes after final event"))
        ));
    }
}
