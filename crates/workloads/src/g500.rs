//! Graph500 seq-csr: breadth-first search over a Kronecker graph.
//!
//! BFS in compressed-sparse-row form has the richest prefetch structure
//! of the suite (paper §5.1): from the work list one can prefetch the
//! vertex (row) list, the edge list, and the parent/visited list, each a
//! step deeper in the dependence chain; and within a vertex's edges one
//! can prefetch `parent[edges[j]]` at short distance.
//!
//! The automatic pass only captures the inner `parent[edges[j]]`
//! stride-indirect — the work-list-based prefetches need knowledge it
//! cannot prove (the queue arrays swap roles every level, defeating the
//! store-aliasing analysis exactly as complex control flow defeated the
//! paper's pass). The manual variant adds the staggered work-list
//! prefetches of vertex, edge and parent data.

use crate::util::emit_clamped_lookahead;
use crate::{Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swpf_ir::interp::{Interp, RtVal};
use swpf_ir::prelude::*;

/// Which of the paper's two graph inputs to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphSize {
    /// The `-s 16` analogue: parent/visited data partially cache-resident.
    Small,
    /// The `-s 21` analogue: all structures exceed the LLC.
    Large,
}

/// Graph500 BFS benchmark.
#[derive(Debug, Clone)]
pub struct Graph500 {
    /// log2 of the vertex count.
    pub scale_bits: u32,
    /// Directed edges per vertex (each added in both directions).
    pub edge_factor: u64,
    size: GraphSize,
    seed: u64,
}

impl Graph500 {
    /// Scaled configuration for one of the two paper inputs.
    #[must_use]
    pub fn new(scale: Scale, size: GraphSize) -> Self {
        let (scale_bits, edge_factor) = match (scale, size) {
            (Scale::Paper, GraphSize::Small) => (14, 10),
            (Scale::Paper, GraphSize::Large) => (17, 10),
            (Scale::Test, GraphSize::Small) => (7, 4),
            (Scale::Test, GraphSize::Large) => (8, 4),
        };
        Graph500 {
            scale_bits,
            edge_factor,
            size,
            seed: 0x500,
        }
    }

    /// Build the BFS kernel.
    ///
    /// `manual_c`: when set, adds the paper's manual prefetches — the
    /// staggered work-list chain (queue → row → edges) and the
    /// short-distance `parent[edges[j]]` prefetch in the edge loop.
    #[allow(clippy::too_many_lines)]
    fn build(&self, manual_c: Option<i64>) -> Module {
        let mut m = Module::new("g500");
        // kernel(row: ptr, edges: ptr, parent: ptr, q: ptr, nextq: ptr, qsize0: i64) -> i64
        let fid = m.declare_function(
            "kernel",
            &[
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::I64,
            ],
            Type::I64,
        );
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (row, edges, parent, q0, nq0, qsize0) =
            (b.arg(0), b.arg(1), b.arg(2), b.arg(3), b.arg(4), b.arg(5));
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let q0i = b.cast(CastOp::PtrToInt, q0, Type::I64);
        let nq0i = b.cast(CastOp::PtrToInt, nq0, Type::I64);

        let entry = b.current_block();
        let level_header = b.create_block("level_header");
        let work_header = b.create_block("work_header");
        let work_body = b.create_block("work_body");
        let edge_header = b.create_block("edge_header");
        let edge_body = b.create_block("edge_body");
        let edge_then = b.create_block("edge_then");
        let edge_merge = b.create_block("edge_merge");
        let work_latch = b.create_block("work_latch");
        let level_latch = b.create_block("level_latch");
        let exit = b.create_block("exit");

        b.br(level_header);

        // --- level loop: while (qsize > 0), swapping the two queues ----
        b.switch_to(level_header);
        let curq = b.phi(Type::I64, &[(entry, q0i)]);
        let nxtq = b.phi(Type::I64, &[(entry, nq0i)]);
        let qsize = b.phi(Type::I64, &[(entry, qsize0)]);
        let visited = b.phi(Type::I64, &[(entry, qsize0)]);
        // The queue pointer is materialised here — outside the work loop —
        // so the work loop sees a loop-invariant look-ahead array base.
        let curqp = b.cast(CastOp::IntToPtr, curq, Type::Ptr);
        let lc = b.icmp(Pred::Sgt, qsize, zero);
        b.cond_br(lc, work_header, exit);

        // --- work loop: for i in 0..qsize ------------------------------
        b.switch_to(work_header);
        let i = b.phi(Type::I64, &[(level_header, zero)]);
        let nq_count = b.phi(Type::I64, &[(level_header, zero)]);
        let wc = b.icmp(Pred::Slt, i, qsize);
        b.cond_br(wc, work_body, level_latch);

        b.switch_to(work_body);
        if let Some(c) = manual_c {
            // Stride prefetch of the work list itself.
            let cc = b.const_i64(c.max(1));
            let ahead = b.add(i, cc);
            let gq = b.gep(curqp, ahead, 8);
            b.prefetch(gq);
            // Staggered: vertex (row) list from the work list at c/2.
            let qm1 = b.sub(qsize, one);
            let idx1 = emit_clamped_lookahead(&mut b, i, (c / 2).max(1), qm1);
            let gq1 = b.gep(curqp, idx1, 8);
            let v1 = b.load(Type::I64, gq1);
            let gr1 = b.gep(row, v1, 8);
            b.prefetch(gr1);
            // Deeper: edge list from the work list at c/4.
            let idx2 = emit_clamped_lookahead(&mut b, i, (c / 4).max(1), qm1);
            let gq2 = b.gep(curqp, idx2, 8);
            let v2 = b.load(Type::I64, gq2);
            let gr2 = b.gep(row, v2, 8);
            let rs2 = b.load(Type::I64, gr2);
            let ge2 = b.gep(edges, rs2, 8);
            b.prefetch(ge2);
        }
        let gv = b.gep(curqp, i, 8);
        let v = b.load(Type::I64, gv);
        let grs = b.gep(row, v, 8);
        let rs = b.load(Type::I64, grs);
        let v1 = b.add(v, one);
        let gre = b.gep(row, v1, 8);
        let re = b.load(Type::I64, gre);
        b.br(edge_header);

        // --- edge loop: for j in rs..re --------------------------------
        b.switch_to(edge_header);
        let j = b.phi(Type::I64, &[(work_body, rs)]);
        let nq_inner = b.phi(Type::I64, &[(work_body, nq_count)]);
        let ec = b.icmp(Pred::Slt, j, re);
        b.cond_br(ec, edge_body, work_latch);

        b.switch_to(edge_body);
        if let Some(c) = manual_c {
            // Short-distance parent prefetch within this vertex's edges.
            let short = (c / 4).max(4);
            let rem1 = b.sub(re, one);
            let jdx = emit_clamped_lookahead(&mut b, j, short, rem1);
            let gje = b.gep(edges, jdx, 8);
            let ee = b.load(Type::I64, gje);
            let gpe = b.gep(parent, ee, 8);
            b.prefetch(gpe);
        }
        let ge = b.gep(edges, j, 8);
        let e = b.load(Type::I64, ge);
        let gp = b.gep(parent, e, 8);
        let p = b.load(Type::I64, gp);
        let unvisited = b.icmp(Pred::Slt, p, zero);
        b.cond_br(unvisited, edge_then, edge_merge);

        b.switch_to(edge_then);
        b.store(v, gp);
        let nxtqp = b.cast(CastOp::IntToPtr, nxtq, Type::Ptr);
        let gnq = b.gep(nxtqp, nq_inner, 8);
        b.store(e, gnq);
        let nq2 = b.add(nq_inner, one);
        b.br(edge_merge);

        b.switch_to(edge_merge);
        let nq_m = b.phi(Type::I64, &[(edge_body, nq_inner), (edge_then, nq2)]);
        let j2 = b.add(j, one);
        b.add_phi_incoming(j, edge_merge, j2);
        b.add_phi_incoming(nq_inner, edge_merge, nq_m);
        b.br(edge_header);

        // --- latches ----------------------------------------------------
        b.switch_to(work_latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, work_latch, i2);
        b.add_phi_incoming(nq_count, work_latch, nq_inner);
        b.br(work_header);

        b.switch_to(level_latch);
        let visited2 = b.add(visited, nq_count);
        b.add_phi_incoming(curq, level_latch, nxtq);
        b.add_phi_incoming(nxtq, level_latch, curq);
        b.add_phi_incoming(qsize, level_latch, nq_count);
        b.add_phi_incoming(visited, level_latch, visited2);
        b.br(level_header);

        b.switch_to(exit);
        b.ret(Some(visited));
        let _ = b;
        m
    }
}

impl Workload for Graph500 {
    fn name(&self) -> &'static str {
        match self.size {
            GraphSize::Small => "G500-s16",
            GraphSize::Large => "G500-s21",
        }
    }

    fn build_baseline(&self) -> Module {
        self.build(None)
    }

    fn build_manual(&self, c: i64) -> Module {
        self.build(Some(c))
    }

    fn setup(&self, interp: &mut Interp) -> Vec<RtVal> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nv = 1u64 << self.scale_bits;
        let ne = nv * self.edge_factor;
        // R-MAT edge generation (A=0.57, B=0.19, C=0.19, D=0.05).
        let mut pairs = Vec::with_capacity(ne as usize * 2);
        for _ in 0..ne {
            let (mut src, mut dst) = (0u64, 0u64);
            for bit in (0..self.scale_bits).rev() {
                let r: f64 = rng.random();
                let (sbit, dbit) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                src |= sbit << bit;
                dst |= dbit << bit;
            }
            pairs.push((src, dst));
            pairs.push((dst, src));
        }
        // CSR by counting sort.
        let mut degree = vec![0u64; nv as usize];
        for &(s, _) in &pairs {
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u64; nv as usize + 1];
        for i in 0..nv as usize {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[nv as usize];
        let mut adjacency = vec![0u64; total as usize];
        let mut cursor = offsets.clone();
        for &(s, d) in &pairs {
            adjacency[cursor[s as usize] as usize] = d;
            cursor[s as usize] += 1;
        }

        let row = interp.alloc_array(nv + 1, 8).expect("row");
        for (i, &o) in offsets.iter().enumerate() {
            interp.mem().write(row + i as u64 * 8, 8, o).expect("ok");
        }
        let edges = interp.alloc_array(total.max(1), 8).expect("edges");
        for (i, &e) in adjacency.iter().enumerate() {
            interp.mem().write(edges + i as u64 * 8, 8, e).expect("ok");
        }
        let parent = interp.alloc_array(nv, 8).expect("parent");
        for i in 0..nv {
            interp.mem().write(parent + i * 8, 8, u64::MAX).expect("ok");
        }
        // Queues sized for the worst case.
        let q = interp.alloc_array(nv, 8).expect("queue");
        let nextq = interp.alloc_array(nv, 8).expect("next queue");
        // Root: the highest-degree vertex, so the traversal is large.
        let root = (0..nv as usize).max_by_key(|&i| degree[i]).unwrap_or(0) as u64;
        interp.mem().write(parent + root * 8, 8, root).expect("ok");
        interp.mem().write(q, 8, root).expect("ok");
        vec![
            RtVal::Int(row as i64),
            RtVal::Int(edges as i64),
            RtVal::Int(parent as i64),
            RtVal::Int(q as i64),
            RtVal::Int(nextq as i64),
            RtVal::Int(1),
        ]
    }

    fn checksum(&self, interp: &Interp, args: &[RtVal], ret: Option<RtVal>) -> u64 {
        let parent = args[2].as_int() as u64;
        let nv = 1u64 << self.scale_bits;
        let mut h = ret.map_or(0, |v| v.as_int() as u64);
        for i in 0..nv {
            let p = interp.mem_ref().read(parent + i * 8, 8).expect("in bounds");
            h = (h ^ p).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::interp::NullObserver;
    use swpf_ir::verifier::verify_module;

    fn run(ws: &Graph500, m: &Module) -> (u64, u64) {
        verify_module(m).expect("verifies");
        let mut interp = Interp::new();
        let args = ws.setup(&mut interp);
        let f = m.find_function("kernel").unwrap();
        let ret = interp.run(m, f, &args, &mut NullObserver).expect("runs");
        let visited = ret.expect("returns visited count").as_int() as u64;
        (visited, ws.checksum(&interp, &args, ret))
    }

    #[test]
    fn bfs_visits_most_of_the_graph() {
        let ws = Graph500::new(Scale::Test, GraphSize::Small);
        let (visited, _) = run(&ws, &ws.build_baseline());
        let nv = 1u64 << ws.scale_bits;
        assert!(visited > nv / 4, "visited {visited} of {nv}");
        assert!(visited <= nv);
    }

    #[test]
    fn manual_matches_baseline() {
        let ws = Graph500::new(Scale::Test, GraphSize::Small);
        assert_eq!(
            run(&ws, &ws.build_baseline()).1,
            run(&ws, &ws.build_manual(64)).1
        );
    }

    #[test]
    fn auto_pass_gets_edge_to_parent_only() {
        let ws = Graph500::new(Scale::Test, GraphSize::Small);
        let mut m = ws.build_baseline();
        let report = swpf_core::run_on_module(&mut m, &swpf_core::PassConfig::default());
        verify_module(&m).unwrap();
        // The inner stride-indirect parent[edges[j]] is found...
        assert!(
            !report.functions[0].prefetches.is_empty(),
            "inner chain found: {report}"
        );
        // ...and results are preserved.
        assert_eq!(run(&ws, &ws.build_baseline()).1, run(&ws, &m).1);
    }
}
