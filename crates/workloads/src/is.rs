//! Integer Sort (NAS IS): the bucket-counting kernel.
//!
//! The performance-critical loop of NAS Integer Sort ranks keys by
//! incrementing one bucket per key: `key_buff1[key_buff2[i]]++` (paper
//! code listing 1). `key_buff2` is walked sequentially (hardware-
//! prefetchable); `key_buff1` is hit at data-dependent indices — the
//! canonical stride-indirect pattern.
//!
//! Besides the baseline and the paper-optimal manual variant (staggered
//! prefetches to both arrays), [`IntegerSort::build_fig2_variant`]
//! reproduces the four schemes of Fig. 2: the *intuitive* single
//! prefetch, offsets that are too small or too large, and the optimal
//! staggered pair.

use crate::util::{counted_loop, emit_clamped_lookahead};
use crate::{KernelVariant, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swpf_ir::interp::{Interp, RtVal};
use swpf_ir::prelude::*;

/// The Fig. 2 prefetching schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2Scheme {
    /// Only the indirect prefetch at the default distance — what a
    /// programmer would naively write (line 4 of listing 1 alone).
    Intuitive,
    /// Both prefetches but with a tiny look-ahead: fills arrive too late.
    OffsetTooSmall,
    /// Both prefetches with a huge look-ahead: cache pollution, lines
    /// evicted before use.
    OffsetTooBig,
    /// The staggered pair at the paper's `c = 64`.
    Optimal,
}

/// NAS Integer Sort bucket-counting benchmark.
#[derive(Debug, Clone)]
pub struct IntegerSort {
    /// Number of keys (`key_buff2` length).
    pub num_keys: u64,
    /// Number of buckets (`key_buff1` length); the indirect target.
    pub num_buckets: u64,
    seed: u64,
}

impl IntegerSort {
    /// Scaled configuration: 2 MiB of keys into a 4 MiB bucket array
    /// (exceeds every simulated LLC).
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Paper => IntegerSort {
                num_keys: 1 << 19,
                num_buckets: 1 << 20,
                seed: 0x15,
            },
            Scale::Test => IntegerSort {
                num_keys: 1 << 10,
                num_buckets: 1 << 9,
                seed: 0x15,
            },
        }
    }

    /// Build the kernel. `prefetch`: optional `(indirect_off,
    /// stride_off)` manual prefetch distances; `None` for each part
    /// omits that prefetch.
    fn build(&self, indirect_off: Option<i64>, stride_off: Option<i64>) -> Module {
        let mut m = Module::new("is");
        // kernel(key_buff1: ptr, key_buff2: ptr, n: i64)
        let fid = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], None);
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (kb1, kb2, n) = (b.arg(0), b.arg(1), b.arg(2));
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        counted_loop(&mut b, zero, n, &[], |b, i, _| {
            // Manual prefetches first, exactly as in code listing 1.
            if let Some(off) = indirect_off {
                let nm1 = b.sub(n, one);
                let idx = emit_clamped_lookahead(b, i, off, nm1);
                let g2 = b.gep(kb2, idx, 4);
                let k = b.load(Type::I32, g2);
                let kw = b.cast(CastOp::Zext, k, Type::I64);
                let g1 = b.gep(kb1, kw, 4);
                b.prefetch(g1);
            }
            if let Some(off) = stride_off {
                let offc = b.const_i64(off);
                let ahead = b.add(i, offc);
                let g2 = b.gep(kb2, ahead, 4);
                b.prefetch(g2);
            }
            // key_buff1[key_buff2[i]]++
            let g2 = b.gep(kb2, i, 4);
            let k = b.load(Type::I32, g2);
            let kw = b.cast(CastOp::Zext, k, Type::I64);
            let g1 = b.gep(kb1, kw, 4);
            let v = b.load(Type::I32, g1);
            let one32 = b.constant(Constant::Int(1, Type::I32));
            let v2 = b.add(v, one32);
            b.store(v2, g1);
            vec![]
        });
        b.ret(None);
        let _ = b;
        m
    }

    /// One of the four Fig. 2 schemes.
    #[must_use]
    pub fn build_fig2_variant(&self, scheme: Fig2Scheme) -> Module {
        match scheme {
            Fig2Scheme::Intuitive => self.build(Some(32), None),
            Fig2Scheme::OffsetTooSmall => self.build(Some(8), Some(16)),
            Fig2Scheme::OffsetTooBig => self.build(Some(512), Some(1024)),
            Fig2Scheme::Optimal => self.build(Some(32), Some(64)),
        }
    }
}

impl Workload for IntegerSort {
    fn name(&self) -> &'static str {
        "IS"
    }

    fn build_baseline(&self) -> Module {
        self.build(None, None)
    }

    fn build_manual(&self, c: i64) -> Module {
        // t = 2 loads: stride at c, indirect at c/2 (paper eq. 1).
        self.build(Some((c / 2).max(1)), Some(c.max(1)))
    }

    fn setup(&self, interp: &mut Interp) -> Vec<RtVal> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let kb1 = interp
            .alloc_array(self.num_buckets, 4)
            .expect("bucket array");
        let kb2 = interp.alloc_array(self.num_keys, 4).expect("key array");
        for i in 0..self.num_keys {
            let key = rng.random_range(0..self.num_buckets);
            interp.mem().write(kb2 + i * 4, 4, key).expect("in bounds");
        }
        vec![
            RtVal::Int(kb1 as i64),
            RtVal::Int(kb2 as i64),
            RtVal::Int(self.num_keys as i64),
        ]
    }

    fn checksum(&self, interp: &Interp, args: &[RtVal], _ret: Option<RtVal>) -> u64 {
        // FNV over the bucket counters.
        let base = args[0].as_int() as u64;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..self.num_buckets {
            let v = interp.mem_ref().read(base + i * 4, 4).expect("in bounds");
            h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn build_variant(&self, variant: KernelVariant) -> Option<Module> {
        match variant {
            KernelVariant::Baseline => Some(self.build_baseline()),
            KernelVariant::Manual { look_ahead } => Some(self.build_manual(look_ahead)),
            KernelVariant::Fig2(scheme) => Some(self.build_fig2_variant(scheme)),
            KernelVariant::ManualDepth { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::interp::NullObserver;
    use swpf_ir::verifier::verify_module;

    fn run(ws: &IntegerSort, m: &Module) -> u64 {
        verify_module(m).expect("verifies");
        let mut interp = Interp::new();
        let args = ws.setup(&mut interp);
        let f = m.find_function("kernel").unwrap();
        let ret = interp.run(m, f, &args, &mut NullObserver).expect("runs");
        ws.checksum(&interp, &args, ret)
    }

    #[test]
    fn all_variants_compute_identical_buckets() {
        let ws = IntegerSort::new(Scale::Test);
        let want = run(&ws, &ws.build_baseline());
        assert_eq!(run(&ws, &ws.build_manual(64)), want);
        for scheme in [
            Fig2Scheme::Intuitive,
            Fig2Scheme::OffsetTooSmall,
            Fig2Scheme::OffsetTooBig,
            Fig2Scheme::Optimal,
        ] {
            assert_eq!(run(&ws, &ws.build_fig2_variant(scheme)), want, "{scheme:?}");
        }
    }

    #[test]
    fn auto_pass_finds_the_indirect_chain() {
        let ws = IntegerSort::new(Scale::Test);
        let mut m = ws.build_baseline();
        let report = swpf_core::run_on_module(&mut m, &swpf_core::PassConfig::default());
        assert_eq!(
            report.functions[0].prefetches.len(),
            1,
            "one indirect chain: {report}"
        );
        assert_eq!(report.functions[0].prefetches[0].chain_len, 2);
        assert_eq!(report.functions[0].prefetches[0].offsets, vec![64, 32]);
        verify_module(&m).unwrap();
        // And the transformed kernel computes the same buckets.
        let want = run(&ws, &ws.build_baseline());
        assert_eq!(run(&ws, &m), want);
    }

    #[test]
    fn checksum_differs_between_inputs() {
        let a = IntegerSort::new(Scale::Test);
        let mut b = IntegerSort::new(Scale::Test);
        b.seed = 999;
        let ca = run(&a, &a.build_baseline());
        let cb = run(&b, &b.build_baseline());
        assert_ne!(ca, cb);
    }
}
