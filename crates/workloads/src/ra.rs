//! RandomAccess (HPCC GUPS): hash-scrambled updates to a huge table.
//!
//! The HPC Challenge RandomAccess benchmark streams pseudo-random values
//! and updates `table[f(v)] ^= v` where `f` hashes the value into the
//! table — more address computation per element than IS or CG (§5.1).
//!
//! The kernel processes the stream in 128-element chunks through an
//! inner loop, mirroring the original benchmark's structure. This is
//! what limits the *automatic* pass on RA: its look-ahead clamps to the
//! 128-iteration inner bound, so the first elements of every chunk still
//! miss — whereas the *manual* variant looks ahead across chunk
//! boundaries using the flat stream index (paper §6.1, A53 discussion).

use crate::util::{counted_loop, emit_clamped_lookahead, emit_hash};
use crate::{Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swpf_ir::interp::{Interp, RtVal};
use swpf_ir::prelude::*;

/// HPCC RandomAccess benchmark.
#[derive(Debug, Clone)]
pub struct RandomAccess {
    /// log2 of the table length (entries are u64).
    pub table_bits: u32,
    /// Total number of updates (a multiple of the chunk size).
    pub updates: u64,
    /// Inner-loop chunk length (the original benchmark uses 128).
    pub chunk: u64,
    seed: u64,
}

impl RandomAccess {
    /// Scaled configuration: a 16 MiB table (far beyond every simulated
    /// LLC) updated in 128-element chunks.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Paper => RandomAccess {
                table_bits: 21,
                updates: 1 << 19,
                chunk: 128,
                seed: 0x6A,
            },
            Scale::Test => RandomAccess {
                table_bits: 10,
                updates: 1 << 10,
                chunk: 32,
                seed: 0x6A,
            },
        }
    }

    fn build(&self, manual_c: Option<i64>) -> Module {
        let mut m = Module::new("ra");
        // kernel(table: ptr, ran: ptr, nchunks: i64, chunk: i64, mask: i64, total: i64)
        let fid = m.declare_function(
            "kernel",
            &[
                Type::Ptr,
                Type::Ptr,
                Type::I64,
                Type::I64,
                Type::I64,
                Type::I64,
            ],
            None,
        );
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (table, ran, nchunks, chunk, mask, total) =
            (b.arg(0), b.arg(1), b.arg(2), b.arg(3), b.arg(4), b.arg(5));
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        counted_loop(&mut b, zero, nchunks, &[], |b, i, _| {
            // Chunk base pointer: &ran[i * chunk].
            let flat_base = b.mul(i, chunk);
            let chunk_base = b.gep(ran, flat_base, 8);
            counted_loop(b, zero, chunk, &[], |b, j, _| {
                if let Some(c) = manual_c {
                    // Manual: look ahead across chunk boundaries in the
                    // flat stream — runtime knowledge the pass lacks.
                    let flat = b.add(flat_base, j);
                    let tm1 = b.sub(total, one);
                    let idx = emit_clamped_lookahead(b, flat, (c / 2).max(1), tm1);
                    let g = b.gep(ran, idx, 8);
                    let v = b.load(Type::I64, g);
                    let h = emit_hash(b, v, mask);
                    let gt = b.gep(table, h, 8);
                    b.prefetch(gt);
                    let cc = b.const_i64(c.max(1));
                    let ahead = b.add(flat, cc);
                    let gr = b.gep(ran, ahead, 8);
                    b.prefetch(gr);
                }
                // v = ran[i*chunk + j]; table[hash(v)] ^= v.
                let g = b.gep(chunk_base, j, 8);
                let v = b.load(Type::I64, g);
                let h = emit_hash(b, v, mask);
                let gt = b.gep(table, h, 8);
                let t = b.load(Type::I64, gt);
                let t2 = b.xor(t, v);
                b.store(t2, gt);
                vec![]
            });
            vec![]
        });
        b.ret(None);
        let _ = b;
        m
    }
}

impl Workload for RandomAccess {
    fn name(&self) -> &'static str {
        "RA"
    }

    fn build_baseline(&self) -> Module {
        self.build(None)
    }

    fn build_manual(&self, c: i64) -> Module {
        self.build(Some(c))
    }

    fn setup(&self, interp: &mut Interp) -> Vec<RtVal> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let table_len = 1u64 << self.table_bits;
        let table = interp.alloc_array(table_len, 8).expect("table");
        for i in 0..table_len {
            interp.mem().write(table + i * 8, 8, i).expect("ok");
        }
        let ran = interp.alloc_array(self.updates, 8).expect("stream");
        for i in 0..self.updates {
            let v: u64 = rng.random();
            interp.mem().write(ran + i * 8, 8, v).expect("ok");
        }
        vec![
            RtVal::Int(table as i64),
            RtVal::Int(ran as i64),
            RtVal::Int((self.updates / self.chunk) as i64),
            RtVal::Int(self.chunk as i64),
            RtVal::Int((table_len - 1) as i64),
            RtVal::Int(self.updates as i64),
        ]
    }

    fn checksum(&self, interp: &Interp, args: &[RtVal], _ret: Option<RtVal>) -> u64 {
        let table = args[0].as_int() as u64;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..(1u64 << self.table_bits) {
            let v = interp.mem_ref().read(table + i * 8, 8).expect("in bounds");
            h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::interp::NullObserver;
    use swpf_ir::verifier::verify_module;

    fn run(ws: &RandomAccess, m: &Module) -> u64 {
        verify_module(m).expect("verifies");
        let mut interp = Interp::new();
        let args = ws.setup(&mut interp);
        let f = m.find_function("kernel").unwrap();
        let ret = interp.run(m, f, &args, &mut NullObserver).expect("runs");
        ws.checksum(&interp, &args, ret)
    }

    #[test]
    fn manual_matches_baseline() {
        let ws = RandomAccess::new(Scale::Test);
        assert_eq!(
            run(&ws, &ws.build_baseline()),
            run(&ws, &ws.build_manual(64))
        );
    }

    #[test]
    fn auto_pass_takes_hash_chain_within_chunks() {
        let ws = RandomAccess::new(Scale::Test);
        let mut m = ws.build_baseline();
        let report = swpf_core::run_on_module(&mut m, &swpf_core::PassConfig::default());
        verify_module(&m).unwrap();
        let recs = &report.functions[0].prefetches;
        assert!(
            recs.iter().any(|p| p.chain_len == 2),
            "hash-indirect chain found: {report}"
        );
        assert_eq!(run(&ws, &ws.build_baseline()), run(&ws, &m));
    }
}
