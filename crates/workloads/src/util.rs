//! Shared IR-construction helpers for the benchmark kernels.

use swpf_ir::prelude::*;
use swpf_ir::BlockId;

/// Scaffolding for a counted `for (i = lo; i < hi; i++)` loop.
///
/// Creates header/body/exit blocks, the induction-variable phi and the
/// loop-carried phis for `carried` (initialised to the given values).
/// `body` receives the builder, the induction variable and the carried
/// phis, and returns the next iteration's carried values. Returns the
/// carried phis' exit values (the phi nodes themselves — valid in the
/// exit block) and leaves the builder positioned in the (new) exit
/// block.
pub fn counted_loop(
    b: &mut FunctionBuilder<'_>,
    lo: ValueId,
    hi: ValueId,
    carried: &[ValueId],
    body: impl FnOnce(&mut FunctionBuilder<'_>, ValueId, &[ValueId]) -> Vec<ValueId>,
) -> Vec<ValueId> {
    let pre = b.current_block();
    let header = b.create_block("header");
    let body_bb = b.create_block("body");
    let exit = b.create_block("exit");
    b.br(header);
    b.switch_to(header);
    let iv = b.phi(Type::I64, &[(pre, lo)]);
    let phis: Vec<ValueId> = carried
        .iter()
        .map(|&init| {
            let ty = b.func().value(init).ty.expect("carried values are typed");
            b.phi(ty, &[(pre, init)])
        })
        .collect();
    let cond = b.icmp(Pred::Slt, iv, hi);
    b.cond_br(cond, body_bb, exit);
    b.switch_to(body_bb);
    let next = body(b, iv, &phis);
    assert_eq!(next.len(), phis.len(), "carried value count mismatch");
    let one = b.const_i64(1);
    let iv_next = b.add(iv, one);
    let latch = b.current_block();
    b.add_phi_incoming(iv, latch, iv_next);
    for (&phi, &val) in phis.iter().zip(&next) {
        b.add_phi_incoming(phi, latch, val);
    }
    b.br(header);
    b.switch_to(exit);
    phis
}

/// A `while (cond_ptr != 0)` pointer-chasing loop used by HJ-8's bucket
/// chains. `body` receives the current node pointer (as an i64 address)
/// and carried values, returning (next pointer, next carried values).
/// Leaves the builder in the exit block and returns the carried phis.
pub fn chase_loop(
    b: &mut FunctionBuilder<'_>,
    first: ValueId,
    carried: &[ValueId],
    body: impl FnOnce(&mut FunctionBuilder<'_>, ValueId, &[ValueId]) -> (ValueId, Vec<ValueId>),
) -> Vec<ValueId> {
    let pre = b.current_block();
    let header = b.create_block("chase_header");
    let body_bb = b.create_block("chase_body");
    let exit = b.create_block("chase_exit");
    b.br(header);
    b.switch_to(header);
    let cur = b.phi(Type::I64, &[(pre, first)]);
    let phis: Vec<ValueId> = carried
        .iter()
        .map(|&init| {
            let ty = b.func().value(init).ty.expect("carried values are typed");
            b.phi(ty, &[(pre, init)])
        })
        .collect();
    let zero = b.const_i64(0);
    let cond = b.icmp(Pred::Ne, cur, zero);
    b.cond_br(cond, body_bb, exit);
    b.switch_to(body_bb);
    let (next_ptr, next) = body(b, cur, &phis);
    assert_eq!(next.len(), phis.len(), "carried value count mismatch");
    let latch = b.current_block();
    b.add_phi_incoming(cur, latch, next_ptr);
    for (&phi, &val) in phis.iter().zip(&next) {
        b.add_phi_incoming(phi, latch, val);
    }
    b.br(header);
    b.switch_to(exit);
    phis
}

/// Emit the multiplicative-xorshift hash the RA and HJ kernels use:
/// `h = ((x * GOLDEN) ^ ((x * GOLDEN) >> 29)) & mask`.
pub fn emit_hash(b: &mut FunctionBuilder<'_>, x: ValueId, mask: ValueId) -> ValueId {
    let golden = b.const_i64(0x9E37_79B9_7F4A_7C15u64 as i64);
    let m = b.mul(x, golden);
    let sh = b.const_i64(29);
    let shifted = b.lshr(m, sh);
    let mixed = b.xor(m, shifted);
    b.and(mixed, mask)
}

/// The same hash on host data, for building verifiable inputs.
#[must_use]
pub fn host_hash(x: u64, mask: u64) -> u64 {
    let m = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (m ^ (m >> 29)) & mask
}

/// Emit a branchless `min(a, b)`-clamped look-ahead index:
/// `min(iv + off, limit)`. Used by the manual-prefetch kernel variants.
pub fn emit_clamped_lookahead(
    b: &mut FunctionBuilder<'_>,
    iv: ValueId,
    off: i64,
    limit: ValueId,
) -> ValueId {
    let off_c = b.const_i64(off);
    let ahead = b.add(iv, off_c);
    b.smin(ahead, limit)
}

/// The entry block id of the function currently being built.
#[must_use]
pub fn entry() -> BlockId {
    BlockId(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::interp::{Interp, NullObserver, RtVal};
    use swpf_ir::verifier::verify_module;
    use swpf_ir::Module;

    #[test]
    fn counted_loop_accumulates() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let n = b.arg(0);
            let zero = b.const_i64(0);
            let sums = counted_loop(&mut b, zero, n, &[zero], |b, i, carried| {
                let s = b.add(carried[0], i);
                vec![s]
            });
            b.ret(Some(sums[0]));
        }
        verify_module(&m).unwrap();
        let mut interp = Interp::new();
        let f = m.find_function("f").unwrap();
        let r = interp
            .run(&m, f, &[RtVal::Int(10)], &mut NullObserver)
            .unwrap();
        assert_eq!(r, Some(RtVal::Int(45)));
    }

    #[test]
    fn chase_loop_walks_chain() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let head = b.arg(0);
            let zero = b.const_i64(0);
            let headi = b.cast(CastOp::PtrToInt, head, Type::I64);
            let counts = chase_loop(&mut b, headi, &[zero], |b, cur, carried| {
                let one = b.const_i64(1);
                let c2 = b.add(carried[0], one);
                let curp = b.cast(CastOp::IntToPtr, cur, Type::Ptr);
                let next = b.load(Type::I64, curp);
                (next, vec![c2])
            });
            b.ret(Some(counts[0]));
        }
        verify_module(&m).unwrap();
        // Three-node chain: each node is one i64 "next" pointer.
        let mut interp = Interp::new();
        let n1 = interp.alloc_array(1, 8).unwrap();
        let n2 = interp.alloc_array(1, 8).unwrap();
        let n3 = interp.alloc_array(1, 8).unwrap();
        interp.mem().write(n1, 8, n2).unwrap();
        interp.mem().write(n2, 8, n3).unwrap();
        interp.mem().write(n3, 8, 0).unwrap();
        let f = m.find_function("f").unwrap();
        let r = interp
            .run(&m, f, &[RtVal::Int(n1 as i64)], &mut NullObserver)
            .unwrap();
        assert_eq!(r, Some(RtVal::Int(3)));
    }

    #[test]
    fn hash_matches_host_hash() {
        let mut m = Module::new("t");
        let fid = m.declare_function("h", &[Type::I64, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (x, mask) = (b.arg(0), b.arg(1));
            let h = emit_hash(&mut b, x, mask);
            b.ret(Some(h));
        }
        verify_module(&m).unwrap();
        let f = m.find_function("h").unwrap();
        for x in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX / 3] {
            let mut interp = Interp::new();
            let r = interp
                .run(
                    &m,
                    f,
                    &[RtVal::Int(x as i64), RtVal::Int(0xFFFF)],
                    &mut NullObserver,
                )
                .unwrap();
            assert_eq!(r, Some(RtVal::Int(host_hash(x, 0xFFFF) as i64)));
        }
    }
}
