//! Conjugate Gradient (NAS CG): the sparse matrix–vector product.
//!
//! CG's time goes into `y = A·x` over a CSR sparse matrix: for each row,
//! `sum += vals[j] * x[col[j]]`. The column-index array is walked
//! sequentially; the dense vector `x` is hit indirectly. As in the paper,
//! the irregular dataset (`x`) is smaller than the other benchmarks' —
//! it fits in the simulated L2 — so prefetching helps less on the
//! out-of-order machines and the TLB is not a bottleneck (§5.1).

use crate::util::{counted_loop, emit_clamped_lookahead};
use crate::{Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swpf_ir::interp::{Interp, RtVal};
use swpf_ir::prelude::*;

/// NAS CG's CSR SpMV benchmark.
#[derive(Debug, Clone)]
pub struct ConjugateGradient {
    /// Rows (and columns) of the square sparse matrix.
    pub nrows: u64,
    /// Average non-zeros per row.
    pub nnz_per_row: u64,
    seed: u64,
}

impl ConjugateGradient {
    /// Scaled configuration: a 49152-row matrix whose dense vector
    /// (384 KiB) exceeds L2 but fits the Haswell L3 — the paper's
    /// "smaller irregular dataset than IS, less of a challenge for the
    /// TLB" relationship — with ~96 nnz/row so rows are longer than the
    /// default look-ahead distance.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Paper => ConjugateGradient {
                nrows: 49_152,
                nnz_per_row: 96,
                seed: 0xC6,
            },
            Scale::Test => ConjugateGradient {
                nrows: 64,
                nnz_per_row: 8,
                seed: 0xC6,
            },
        }
    }

    /// Build the SpMV kernel, optionally with manual prefetches at
    /// look-ahead `c`.
    fn build(&self, manual_c: Option<i64>) -> Module {
        let mut m = Module::new("cg");
        // kernel(row: ptr, col: ptr, vals: ptr, x: ptr, y: ptr, nrows: i64)
        let fid = m.declare_function(
            "kernel",
            &[
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::I64,
            ],
            None,
        );
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (row, col, vals, x, y, nrows) =
            (b.arg(0), b.arg(1), b.arg(2), b.arg(3), b.arg(4), b.arg(5));
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let fzero = b.constant(Constant::Float(0.0));
        counted_loop(&mut b, zero, nrows, &[], |b, r, _| {
            let g_rs = b.gep(row, r, 8);
            let rs = b.load(Type::I64, g_rs);
            let r1 = b.add(r, one);
            let g_re = b.gep(row, r1, 8);
            let re = b.load(Type::I64, g_re);
            let sums = counted_loop(b, rs, re, &[fzero], |b, j, carried| {
                if let Some(c) = manual_c {
                    // Indirect prefetch of x[col[j + c/2]] (clamped) and a
                    // staggered stride prefetch of col[j + c].
                    let rem1 = b.sub(re, one);
                    let idx = emit_clamped_lookahead(b, j, (c / 2).max(1), rem1);
                    let g = b.gep(col, idx, 8);
                    let ci = b.load(Type::I64, g);
                    let gx = b.gep(x, ci, 8);
                    b.prefetch(gx);
                    let cc = b.const_i64(c.max(1));
                    let ahead = b.add(j, cc);
                    let gc = b.gep(col, ahead, 8);
                    b.prefetch(gc);
                }
                let g_c = b.gep(col, j, 8);
                let cidx = b.load(Type::I64, g_c);
                let g_x = b.gep(x, cidx, 8);
                let xv = b.load(Type::F64, g_x);
                let g_v = b.gep(vals, j, 8);
                let av = b.load(Type::F64, g_v);
                let prod = b.binary(BinOp::Fmul, av, xv);
                let sum = b.binary(BinOp::Fadd, carried[0], prod);
                vec![sum]
            });
            let g_y = b.gep(y, r, 8);
            b.store(sums[0], g_y);
            vec![]
        });
        b.ret(None);
        let _ = b;
        m
    }
}

impl Workload for ConjugateGradient {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn build_baseline(&self) -> Module {
        self.build(None)
    }

    fn build_manual(&self, c: i64) -> Module {
        self.build(Some(c))
    }

    fn setup(&self, interp: &mut Interp) -> Vec<RtVal> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.nrows;
        // Row offsets: nnz_per_row ± 50%.
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut total = 0u64;
        offsets.push(0u64);
        for _ in 0..n {
            let lo = (self.nnz_per_row / 2).max(1);
            let hi = self.nnz_per_row * 3 / 2;
            total += rng.random_range(lo..=hi);
            offsets.push(total);
        }
        let row = interp.alloc_array(n + 1, 8).expect("row offsets");
        for (i, &o) in offsets.iter().enumerate() {
            interp.mem().write(row + i as u64 * 8, 8, o).expect("ok");
        }
        let col = interp.alloc_array(total, 8).expect("col indices");
        let vals = interp.alloc_array(total, 8).expect("values");
        for j in 0..total {
            let c = rng.random_range(0..n);
            interp.mem().write(col + j * 8, 8, c).expect("ok");
            let v: f64 = rng.random_range(-1.0..1.0);
            interp
                .mem()
                .write(vals + j * 8, 8, v.to_bits())
                .expect("ok");
        }
        let x = interp.alloc_array(n, 8).expect("x vector");
        for i in 0..n {
            let v: f64 = rng.random_range(-1.0..1.0);
            interp.mem().write(x + i * 8, 8, v.to_bits()).expect("ok");
        }
        let y = interp.alloc_array(n, 8).expect("y vector");
        vec![
            RtVal::Int(row as i64),
            RtVal::Int(col as i64),
            RtVal::Int(vals as i64),
            RtVal::Int(x as i64),
            RtVal::Int(y as i64),
            RtVal::Int(n as i64),
        ]
    }

    fn checksum(&self, interp: &Interp, args: &[RtVal], _ret: Option<RtVal>) -> u64 {
        let y = args[4].as_int() as u64;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..self.nrows {
            let bits = interp.mem_ref().read(y + i * 8, 8).expect("in bounds");
            h = (h ^ bits).wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::interp::NullObserver;
    use swpf_ir::verifier::verify_module;

    fn run(ws: &ConjugateGradient, m: &Module) -> u64 {
        verify_module(m).expect("verifies");
        let mut interp = Interp::new();
        let args = ws.setup(&mut interp);
        let f = m.find_function("kernel").unwrap();
        let ret = interp.run(m, f, &args, &mut NullObserver).expect("runs");
        ws.checksum(&interp, &args, ret)
    }

    #[test]
    fn manual_matches_baseline() {
        let ws = ConjugateGradient::new(Scale::Test);
        assert_eq!(
            run(&ws, &ws.build_baseline()),
            run(&ws, &ws.build_manual(64))
        );
    }

    #[test]
    fn auto_pass_prefetches_the_vector_gather() {
        let ws = ConjugateGradient::new(Scale::Test);
        let mut m = ws.build_baseline();
        let report = swpf_core::run_on_module(&mut m, &swpf_core::PassConfig::default());
        verify_module(&m).unwrap();
        assert!(
            report.functions[0]
                .prefetches
                .iter()
                .any(|p| p.chain_len == 2),
            "x[col[j]] chain found: {report}"
        );
        // The inner loop's bound is the loaded row end: clamping must use
        // the loop bound, not an allocation.
        assert!(report.functions[0]
            .prefetches
            .iter()
            .any(|p| matches!(p.clamp, swpf_core::ClampSource::LoopBound { .. })));
        assert_eq!(run(&ws, &ws.build_baseline()), run(&ws, &m));
    }
}
