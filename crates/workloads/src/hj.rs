//! Hash Join: hash-table probe kernel (2 or 8 elements per bucket).
//!
//! Mimics a main-memory database hash join (paper §5.1): each probe key
//! is hashed (Fibonacci hashing — multiply and shift) into a bucket of
//! two inline slots plus an overflow chain. The **HJ-2** input fills
//! every bucket with exactly two elements (no chain walk); **HJ-8** adds
//! a three-node chain, so a probe chases four dependent cache lines.
//!
//! The same kernel serves both configurations — only the data differs,
//! as in the paper. The chain walk is a pointer-chasing `while` loop, so
//! the automatic pass (correctly) refuses to prefetch it: the chain
//! length is a runtime property of the input. The manual variant
//! ([`HashJoin::build_manual_depth`]) exploits that runtime knowledge
//! with staggered prefetches to the bucket and up to three chain nodes —
//! the stagger-depth study of Fig. 7.

use crate::util::emit_clamped_lookahead;
use crate::{KernelVariant, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swpf_ir::interp::{Interp, RtVal};
use swpf_ir::prelude::*;

/// Fibonacci-hash multiplier (odd, hence invertible mod 2^64).
pub const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiplicative inverse of [`HASH_MULT`] mod 2^64.
#[must_use]
pub fn hash_mult_inverse() -> u64 {
    // Newton's iteration: x_{n+1} = x_n * (2 - a * x_n).
    let a = HASH_MULT;
    let mut x = a; // correct mod 2^3
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    debug_assert_eq!(a.wrapping_mul(x), 1);
    x
}

/// Bucket layout: `k0 @0, k1 @8, next @16, pad @24` — 32 bytes.
pub const BUCKET_BYTES: u64 = 32;

/// How many elements each bucket holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemsPerBucket {
    /// Two inline elements, empty chain (HJ-2).
    Two,
    /// Two inline elements plus a three-node chain of two each (HJ-8).
    Eight,
}

/// The hash-join probe benchmark.
#[derive(Debug, Clone)]
pub struct HashJoin {
    /// log2 of the bucket count.
    pub bucket_bits: u32,
    /// Number of probe lookups.
    pub probes: u64,
    /// Bucket occupancy configuration.
    pub epb: ElemsPerBucket,
    seed: u64,
}

impl HashJoin {
    /// Scaled configuration; the hash table exceeds the simulated LLC in
    /// both variants.
    #[must_use]
    pub fn new(scale: Scale, epb: ElemsPerBucket) -> Self {
        match scale {
            Scale::Paper => HashJoin {
                bucket_bits: if epb == ElemsPerBucket::Two { 18 } else { 15 },
                probes: if epb == ElemsPerBucket::Two {
                    1 << 19
                } else {
                    1 << 17
                },
                epb,
                seed: 0x7B,
            },
            Scale::Test => HashJoin {
                bucket_bits: 6,
                probes: 1 << 9,
                epb,
                seed: 0x7B,
            },
        }
    }

    fn shift(&self) -> u64 {
        64 - u64::from(self.bucket_bits)
    }

    /// Build the probe kernel; `manual` is `(c, depth)` for staggered
    /// manual prefetching of the first `depth` irregular accesses.
    ///
    /// The probe *stops at the first match*, as a real join lookup does —
    /// this is what makes prefetching the deepest chain node a poor
    /// trade (Fig. 7): most probes never reach it.
    fn build(&self, manual: Option<(i64, usize)>) -> Module {
        let mut m = Module::new("hj");
        // kernel(keys: ptr, ht: ptr, nkeys: i64, shift: i64) -> i64 matches
        let fid = m.declare_function(
            "kernel",
            &[Type::Ptr, Type::Ptr, Type::I64, Type::I64],
            Type::I64,
        );
        let mut b = FunctionBuilder::new(m.function_mut(fid));
        let (keys, ht, nkeys, shift) = (b.arg(0), b.arg(1), b.arg(2), b.arg(3));
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let mult = b.const_i64(HASH_MULT as i64);

        let entry = b.current_block();
        let header = b.create_block("header");
        let body = b.create_block("body");
        let chase_hdr = b.create_block("chase_header");
        let chase_body = b.create_block("chase_body");
        let chase_latch = b.create_block("chase_latch");
        let merge = b.create_block("merge");
        let exit = b.create_block("exit");

        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, &[(entry, zero)]);
        let count = b.phi(Type::I64, &[(entry, zero)]);
        let cond = b.icmp(Pred::Slt, i, nkeys);
        b.cond_br(cond, body, exit);

        b.switch_to(body);
        if let Some((c, depth)) = manual {
            emit_manual_prefetches(&mut b, keys, ht, nkeys, shift, mult, i, c, depth);
        }
        // k = keys[i]; h = (k * MULT) >> shift.
        let gk = b.gep(keys, i, 8);
        let k = b.load(Type::I64, gk);
        let kg = b.mul(k, mult);
        let h = b.lshr(kg, shift);
        // Probe the two inline slots; matched inline -> skip the chain.
        let g0 = b.gep_field(ht, h, BUCKET_BYTES, 0);
        let k0 = b.load(Type::I64, g0);
        let g1 = b.gep_field(ht, h, BUCKET_BYTES, 8);
        let k1 = b.load(Type::I64, g1);
        let gn = b.gep_field(ht, h, BUCKET_BYTES, 16);
        let nxt = b.load(Type::I64, gn);
        let e0 = b.icmp(Pred::Eq, k0, k);
        let e1 = b.icmp(Pred::Eq, k1, k);
        let sel0 = b.select(e0, one, zero);
        let sel1 = b.select(e1, one, zero);
        let inline_hits = b.or(sel0, sel1);
        let inline_found = b.icmp(Pred::Ne, inline_hits, zero);
        b.cond_br(inline_found, merge, chase_hdr);

        // Walk the overflow chain until a match or the end.
        b.switch_to(chase_hdr);
        let cur = b.phi(Type::I64, &[(body, nxt)]);
        let alive = b.icmp(Pred::Ne, cur, zero);
        b.cond_br(alive, chase_body, merge);

        b.switch_to(chase_body);
        let curp = b.cast(CastOp::IntToPtr, cur, Type::Ptr);
        let nk0 = b.load(Type::I64, curp);
        let g8 = b.gep_field(curp, zero, 8, 8);
        let nk1 = b.load(Type::I64, g8);
        let g16 = b.gep_field(curp, zero, 8, 16);
        let nn = b.load(Type::I64, g16);
        let ee0 = b.icmp(Pred::Eq, nk0, k);
        let ee1 = b.icmp(Pred::Eq, nk1, k);
        let s0 = b.select(ee0, one, zero);
        let s1 = b.select(ee1, one, zero);
        let node_hits = b.or(s0, s1);
        let node_found = b.icmp(Pred::Ne, node_hits, zero);
        b.cond_br(node_found, merge, chase_latch);

        b.switch_to(chase_latch);
        b.add_phi_incoming(cur, chase_latch, nn);
        b.br(chase_hdr);

        b.switch_to(merge);
        let found = b.phi(
            Type::I64,
            &[(body, one), (chase_hdr, zero), (chase_body, one)],
        );
        let count2 = b.add(count, found);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, merge, i2);
        b.add_phi_incoming(count, merge, count2);
        b.br(header);

        b.switch_to(exit);
        b.ret(Some(count));
        let _ = b;
        m
    }

    /// Manual variant prefetching only the first `depth` of the four
    /// irregular accesses (bucket + 3 chain nodes), Fig. 7's knob.
    #[must_use]
    pub fn build_manual_depth(&self, c: i64, depth: usize) -> Module {
        self.build(Some((c, depth.clamp(1, 4))))
    }
}

/// Staggered manual prefetches: the paper's HJ-8 discussion — fetch the
/// bucket at the largest offset, then each chain node one step closer,
/// so every link's address generator hits lines fetched by the previous
/// stagger (offsets `c, 3c/4, c/2, c/4`).
#[allow(clippy::too_many_arguments)]
fn emit_manual_prefetches(
    b: &mut FunctionBuilder<'_>,
    keys: ValueId,
    ht: ValueId,
    nkeys: ValueId,
    shift: ValueId,
    mult: ValueId,
    i: ValueId,
    c: i64,
    depth: usize,
) {
    let one = b.const_i64(1);
    let nm1 = b.sub(nkeys, one);
    // Stride prefetch for the probe-key stream itself. It sits one
    // stagger step beyond the deepest real key load (at offset c), so
    // that every look-ahead key read below hits a line fetched by this
    // prefetch a quarter-`c` of iterations earlier — the staggering rule
    // of the paper's code listing 1.
    let cc = b.const_i64((c + c / 4).max(2));
    let ahead = b.add(i, cc);
    let gs = b.gep(keys, ahead, 8);
    b.prefetch(gs);
    for level in 1..=depth {
        let off = (c * (4 - (level as i64 - 1)) / 4).max(1);
        let idx = emit_clamped_lookahead(b, i, off, nm1);
        let gk = b.gep(keys, idx, 8);
        let k = b.load(Type::I64, gk);
        let kg = b.mul(k, mult);
        let h = b.lshr(kg, shift);
        if level == 1 {
            let ga = b.gep(ht, h, BUCKET_BYTES);
            b.prefetch(ga);
            continue;
        }
        // Walk level-1 chain links with real loads, prefetch the last.
        // Null links are redirected to the (always valid) table base so
        // the generated loads cannot fault on short chains.
        let zero = b.const_i64(0);
        let ht_int = b.cast(CastOp::PtrToInt, ht, Type::I64);
        let gn = b.gep_field(ht, h, BUCKET_BYTES, 16);
        let mut cur = b.load(Type::I64, gn);
        for _ in 0..level.saturating_sub(2) {
            let is_null = b.icmp(Pred::Eq, cur, zero);
            let safe = b.select(is_null, ht_int, cur);
            let curp = b.cast(CastOp::IntToPtr, safe, Type::Ptr);
            let g16 = b.gep_field(curp, zero, 8, 16);
            cur = b.load(Type::I64, g16);
        }
        let curp = b.cast(CastOp::IntToPtr, cur, Type::Ptr);
        b.prefetch(curp);
    }
}

impl Workload for HashJoin {
    fn name(&self) -> &'static str {
        match self.epb {
            ElemsPerBucket::Two => "HJ-2",
            ElemsPerBucket::Eight => "HJ-8",
        }
    }

    fn build_baseline(&self) -> Module {
        self.build(None)
    }

    fn build_manual(&self, c: i64) -> Module {
        // Fig. 7: prefetching the first three of HJ-8's four irregular
        // accesses is optimal on every system; HJ-2 has just the bucket.
        match self.epb {
            ElemsPerBucket::Two => self.build(Some((c, 1))),
            ElemsPerBucket::Eight => self.build(Some((c, 3))),
        }
    }

    fn setup(&self, interp: &mut Interp) -> Vec<RtVal> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nbuckets = 1u64 << self.bucket_bits;
        let shift = self.shift();
        let inv = hash_mult_inverse();
        // A key that lands in bucket `bkt`: invert the hash.
        let key_for = |bkt: u64, rng: &mut StdRng| -> u64 {
            let low: u64 = rng.random_range(1..(1u64 << shift));
            ((bkt << shift) | low).wrapping_mul(inv)
        };

        let ht = interp
            .alloc_array(nbuckets, BUCKET_BYTES as u32)
            .expect("hash table");
        let mut build_keys = Vec::new();
        let chain_nodes = match self.epb {
            ElemsPerBucket::Two => 0u64,
            ElemsPerBucket::Eight => 3,
        };
        // Chain nodes live in one array, assigned in shuffled order so
        // node addresses are cache-unfriendly.
        let total_nodes = nbuckets * chain_nodes;
        let nodes = if total_nodes > 0 {
            interp.alloc_array(total_nodes, 32).expect("chain nodes")
        } else {
            0
        };
        let mut node_order: Vec<u64> = (0..total_nodes).collect();
        for i in (1..node_order.len()).rev() {
            let j = rng.random_range(0..=i);
            node_order.swap(i, j);
        }
        let mut next_node = 0usize;
        for bkt in 0..nbuckets {
            let base = ht + bkt * BUCKET_BYTES;
            let k0 = key_for(bkt, &mut rng);
            let k1 = key_for(bkt, &mut rng);
            build_keys.push(k0);
            build_keys.push(k1);
            interp.mem().write(base, 8, k0).expect("ok");
            interp.mem().write(base + 8, 8, k1).expect("ok");
            let mut prev_next_field = base + 16;
            for _ in 0..chain_nodes {
                let node_addr = nodes + node_order[next_node] * 32;
                next_node += 1;
                let nk0 = key_for(bkt, &mut rng);
                let nk1 = key_for(bkt, &mut rng);
                build_keys.push(nk0);
                build_keys.push(nk1);
                interp.mem().write(node_addr, 8, nk0).expect("ok");
                interp.mem().write(node_addr + 8, 8, nk1).expect("ok");
                interp
                    .mem()
                    .write(prev_next_field, 8, node_addr)
                    .expect("ok");
                prev_next_field = node_addr + 16;
            }
            interp.mem().write(prev_next_field, 8, 0).expect("ok");
        }
        // Probe keys: drawn uniformly from the build side (every probe
        // matches, at a uniformly random position within its bucket —
        // the join-style access the paper's HJ kernels model).
        let keys = interp.alloc_array(self.probes, 8).expect("probe keys");
        for i in 0..self.probes {
            let k = build_keys[rng.random_range(0..build_keys.len())];
            interp.mem().write(keys + i * 8, 8, k).expect("ok");
        }
        vec![
            RtVal::Int(keys as i64),
            RtVal::Int(ht as i64),
            RtVal::Int(self.probes as i64),
            RtVal::Int(shift as i64),
        ]
    }

    fn checksum(&self, _interp: &Interp, _args: &[RtVal], ret: Option<RtVal>) -> u64 {
        ret.map_or(0, |v| v.as_int() as u64)
    }

    fn build_variant(&self, variant: KernelVariant) -> Option<Module> {
        match variant {
            KernelVariant::Baseline => Some(self.build_baseline()),
            KernelVariant::Manual { look_ahead } => Some(self.build_manual(look_ahead)),
            // The stagger-depth knob only means something for the
            // chain-walking HJ-8 configuration.
            KernelVariant::ManualDepth { look_ahead, depth }
                if self.epb == ElemsPerBucket::Eight =>
            {
                Some(self.build_manual_depth(look_ahead, depth))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swpf_ir::interp::NullObserver;
    use swpf_ir::verifier::verify_module;

    fn run(ws: &HashJoin, m: &Module) -> u64 {
        verify_module(m).expect("verifies");
        let mut interp = Interp::new();
        let args = ws.setup(&mut interp);
        let f = m.find_function("kernel").unwrap();
        let ret = interp.run(m, f, &args, &mut NullObserver).expect("runs");
        ws.checksum(&interp, &args, ret)
    }

    #[test]
    fn hash_inverse_is_correct() {
        assert_eq!(HASH_MULT.wrapping_mul(hash_mult_inverse()), 1);
    }

    #[test]
    fn probes_find_matches_in_both_configs() {
        for epb in [ElemsPerBucket::Two, ElemsPerBucket::Eight] {
            let ws = HashJoin::new(Scale::Test, epb);
            let matches = run(&ws, &ws.build_baseline());
            assert_eq!(
                matches, ws.probes,
                "every probe key is present exactly once ({epb:?})"
            );
        }
    }

    #[test]
    fn manual_variants_preserve_results() {
        for epb in [ElemsPerBucket::Two, ElemsPerBucket::Eight] {
            let ws = HashJoin::new(Scale::Test, epb);
            let want = run(&ws, &ws.build_baseline());
            assert_eq!(run(&ws, &ws.build_manual(64)), want, "{epb:?}");
            for depth in 1..=4 {
                assert_eq!(
                    run(&ws, &ws.build_manual_depth(16, depth)),
                    want,
                    "{epb:?} depth {depth}"
                );
            }
        }
    }

    #[test]
    fn auto_pass_gets_bucket_but_not_chain() {
        let ws = HashJoin::new(Scale::Test, ElemsPerBucket::Eight);
        let mut m = ws.build_baseline();
        let report = swpf_core::run_on_module(&mut m, &swpf_core::PassConfig::default());
        verify_module(&m).unwrap();
        let recs = &report.functions[0].prefetches;
        // The stride-hash-indirect bucket accesses are prefetched...
        assert!(
            recs.iter().any(|p| p.chain_len == 2),
            "bucket chain found: {report}"
        );
        // ...but the pointer-chased chain nodes are not (non-IV phi).
        assert!(report.functions[0]
            .skipped
            .iter()
            .any(|s| s.reason == swpf_core::SkipReason::ContainsNonIvPhi));
        // Results unchanged.
        let want = run(&ws, &ws.build_baseline());
        assert_eq!(run(&ws, &m), want);
    }
}
