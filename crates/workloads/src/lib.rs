//! # swpf-workloads — the paper's benchmark suite as IR programs
//!
//! Seven benchmark configurations from the CGO'17 evaluation (§5.1),
//! rebuilt as `swpf-ir` kernels with deterministic `rand`-generated
//! inputs:
//!
//! | name      | pattern | paper source |
//! |-----------|---------|--------------|
//! | IS        | `key_buff1[key_buff2[i]]++` bucket ranking | NAS Integer Sort |
//! | CG        | CSR SpMV `x[col[j]]` | NAS Conjugate Gradient |
//! | RA        | hash-scrambled table updates in 128-element chunks | HPCC RandomAccess |
//! | HJ-2      | hash + two-entry bucket probe | hash join, 2 elems/bucket |
//! | HJ-8      | hash + bucket + 3-node chain walk | hash join, 8 elems/bucket |
//! | G500-s16  | BFS over a small Kronecker graph | Graph500 seq-csr |
//! | G500-s21  | BFS over a large Kronecker graph | Graph500 seq-csr |
//!
//! Each workload provides a **baseline** module (no prefetches — the
//! input to the automatic pass) and a **manual** module with the best
//! hand-placed prefetches the paper describes, including the knowledge a
//! compiler cannot have: HJ-8's fixed chain length, RA's outer-loop
//! look-ahead across its 128-iteration inner chunks, and G500's edge-list
//! prefetching from the BFS work list.
//!
//! Sizes are scaled (together with `swpf-sim`'s cache capacities, see
//! DESIGN.md §4) so that every paper-relevant ratio holds: the indirect
//! target structures exceed the simulated LLC, CG's dense vector sits in
//! L2, and G500-s16 is partially cache-resident while s21 is not.

pub mod cg;
pub mod g500;
pub mod hj;
pub mod is;
pub mod ra;
pub mod util;

use swpf_ir::interp::{Interp, RtVal};
use swpf_ir::Module;

/// Workload size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Evaluation sizes (minutes of simulation across the full suite).
    Paper,
    /// Tiny sizes for unit tests (milliseconds).
    Test,
}

/// A benchmark: kernel builders plus data setup and a result checksum.
pub trait Workload {
    /// Display name matching the paper's figures ("IS", "HJ-2", ...).
    fn name(&self) -> &'static str;

    /// The kernel without any software prefetches (pass input).
    fn build_baseline(&self) -> Module;

    /// The kernel with the paper's best manual prefetches, scheduled with
    /// look-ahead constant `c`.
    fn build_manual(&self, c: i64) -> Module;

    /// Allocate and initialise the input data; returns kernel arguments.
    /// Deterministic for a fixed workload configuration.
    fn setup(&self, interp: &mut Interp) -> Vec<RtVal>;

    /// Digest of the kernel's observable result (return value and/or
    /// memory), for checking that transformed kernels compute the same
    /// thing. `args` are the values returned by [`Workload::setup`].
    fn checksum(&self, interp: &Interp, args: &[RtVal], ret: Option<RtVal>) -> u64;
}

/// The paper's seven benchmark configurations, in figure order.
#[must_use]
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(is::IntegerSort::new(scale)),
        Box::new(cg::ConjugateGradient::new(scale)),
        Box::new(ra::RandomAccess::new(scale)),
        Box::new(hj::HashJoin::new(scale, hj::ElemsPerBucket::Two)),
        Box::new(hj::HashJoin::new(scale, hj::ElemsPerBucket::Eight)),
        Box::new(g500::Graph500::new(scale, g500::GraphSize::Small)),
        Box::new(g500::Graph500::new(scale, g500::GraphSize::Large)),
    ]
}

/// The four benchmarks used in the look-ahead sweep of Fig. 6
/// (IS, CG, RA, HJ-2 — the paper shows "only the simpler benchmarks").
#[must_use]
pub fn fig6_suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(is::IntegerSort::new(scale)),
        Box::new(cg::ConjugateGradient::new(scale)),
        Box::new(ra::RandomAccess::new(scale)),
        Box::new(hj::HashJoin::new(scale, hj::ElemsPerBucket::Two)),
    ]
}
