//! # swpf-workloads — the paper's benchmark suite as IR programs
//!
//! Seven benchmark configurations from the CGO'17 evaluation (§5.1),
//! rebuilt as `swpf-ir` kernels with deterministic `rand`-generated
//! inputs:
//!
//! | name      | pattern | paper source |
//! |-----------|---------|--------------|
//! | IS        | `key_buff1[key_buff2[i]]++` bucket ranking | NAS Integer Sort |
//! | CG        | CSR SpMV `x[col[j]]` | NAS Conjugate Gradient |
//! | RA        | hash-scrambled table updates in 128-element chunks | HPCC RandomAccess |
//! | HJ-2      | hash + two-entry bucket probe | hash join, 2 elems/bucket |
//! | HJ-8      | hash + bucket + 3-node chain walk | hash join, 8 elems/bucket |
//! | G500-s16  | BFS over a small Kronecker graph | Graph500 seq-csr |
//! | G500-s21  | BFS over a large Kronecker graph | Graph500 seq-csr |
//!
//! Each workload provides a **baseline** module (no prefetches — the
//! input to the automatic pass) and a **manual** module with the best
//! hand-placed prefetches the paper describes, including the knowledge a
//! compiler cannot have: HJ-8's fixed chain length, RA's outer-loop
//! look-ahead across its 128-iteration inner chunks, and G500's edge-list
//! prefetching from the BFS work list.
//!
//! Sizes are scaled (together with `swpf-sim`'s cache capacities, see
//! DESIGN.md §4) so that every paper-relevant ratio holds: the indirect
//! target structures exceed the simulated LLC, CG's dense vector sits in
//! L2, and G500-s16 is partially cache-resident while s21 is not.

pub mod cg;
pub mod g500;
pub mod hj;
pub mod is;
pub mod ra;
pub mod util;

use swpf_ir::interp::{Interp, RtVal};
use swpf_ir::Module;

/// Workload size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Evaluation sizes (minutes of simulation across the full suite).
    Paper,
    /// Tiny sizes for unit tests (milliseconds).
    Test,
}

impl Scale {
    /// Lower-case label matching the `SWPF_SCALE` values.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Test => "test",
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    /// Parse a `SWPF_SCALE` value. Only `test` and `paper` are valid;
    /// anything else is an error so a typo cannot silently run the
    /// (much slower) paper-scale configuration.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "test" => Ok(Scale::Test),
            "paper" => Ok(Scale::Paper),
            other => Err(format!(
                "unknown SWPF_SCALE value `{other}` (expected `test` or `paper`)"
            )),
        }
    }
}

/// Stable identifier for one of the suite's benchmark configurations —
/// the declarative half of a [`Workload`], used by experiment specs to
/// name grid axes without holding built instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// NAS Integer Sort.
    Is,
    /// NAS Conjugate Gradient.
    Cg,
    /// HPCC RandomAccess.
    Ra,
    /// Hash join, two elements per bucket.
    Hj2,
    /// Hash join, eight elements per bucket (bucket + chain walk).
    Hj8,
    /// Graph500 BFS, small Kronecker graph.
    G500Small,
    /// Graph500 BFS, large Kronecker graph.
    G500Large,
}

impl WorkloadId {
    /// The paper's seven benchmark configurations, in figure order.
    pub const ALL: [WorkloadId; 7] = [
        WorkloadId::Is,
        WorkloadId::Cg,
        WorkloadId::Ra,
        WorkloadId::Hj2,
        WorkloadId::Hj8,
        WorkloadId::G500Small,
        WorkloadId::G500Large,
    ];

    /// The four benchmarks of the Fig. 6 look-ahead sweep.
    pub const FIG6: [WorkloadId; 4] = [
        WorkloadId::Is,
        WorkloadId::Cg,
        WorkloadId::Ra,
        WorkloadId::Hj2,
    ];

    /// Display name matching [`Workload::name`] and the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Is => "IS",
            WorkloadId::Cg => "CG",
            WorkloadId::Ra => "RA",
            WorkloadId::Hj2 => "HJ-2",
            WorkloadId::Hj8 => "HJ-8",
            WorkloadId::G500Small => "G500-s16",
            WorkloadId::G500Large => "G500-s21",
        }
    }

    /// Build the workload at the given scale.
    #[must_use]
    pub fn instantiate(self, scale: Scale) -> Box<dyn Workload> {
        match self {
            WorkloadId::Is => Box::new(is::IntegerSort::new(scale)),
            WorkloadId::Cg => Box::new(cg::ConjugateGradient::new(scale)),
            WorkloadId::Ra => Box::new(ra::RandomAccess::new(scale)),
            WorkloadId::Hj2 => Box::new(hj::HashJoin::new(scale, hj::ElemsPerBucket::Two)),
            WorkloadId::Hj8 => Box::new(hj::HashJoin::new(scale, hj::ElemsPerBucket::Eight)),
            WorkloadId::G500Small => Box::new(g500::Graph500::new(scale, g500::GraphSize::Small)),
            WorkloadId::G500Large => Box::new(g500::Graph500::new(scale, g500::GraphSize::Large)),
        }
    }
}

/// A kernel variant a workload can build itself (no compiler pass
/// involved): the enumeration experiment grids sweep over. Pass-generated
/// variants (auto, ICC-like) are layered on top by `swpf-bench`, which
/// owns the pass configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelVariant {
    /// No software prefetches — the pass input and speedup denominator.
    Baseline,
    /// The paper's best manual prefetches at look-ahead `c`.
    Manual {
        /// Look-ahead constant in loop iterations.
        look_ahead: i64,
    },
    /// Manual prefetches covering only the first `depth` irregular
    /// accesses of a chain (Fig. 7; HJ-8 only).
    ManualDepth {
        /// Look-ahead constant in loop iterations.
        look_ahead: i64,
        /// How many of the chain's accesses to prefetch (1–4).
        depth: usize,
    },
    /// One of the Fig. 2 hand-written schemes (IS only).
    Fig2(is::Fig2Scheme),
}

impl KernelVariant {
    /// Stable label used in artifact cell keys and printed tables.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            KernelVariant::Baseline => "baseline".to_string(),
            KernelVariant::Manual { look_ahead } => format!("manual_c{look_ahead}"),
            KernelVariant::ManualDepth { look_ahead, depth } => {
                format!("manual_c{look_ahead}_d{depth}")
            }
            KernelVariant::Fig2(s) => match s {
                is::Fig2Scheme::Intuitive => "fig2_intuitive".to_string(),
                is::Fig2Scheme::OffsetTooSmall => "fig2_too_small".to_string(),
                is::Fig2Scheme::OffsetTooBig => "fig2_too_big".to_string(),
                is::Fig2Scheme::Optimal => "fig2_optimal".to_string(),
            },
        }
    }
}

/// A benchmark: kernel builders plus data setup and a result checksum.
///
/// `Send + Sync` is required so experiment harnesses can share one
/// instance across worker threads; implementations are plain
/// configuration data.
pub trait Workload: Send + Sync {
    /// Display name matching the paper's figures ("IS", "HJ-2", ...).
    fn name(&self) -> &'static str;

    /// The kernel without any software prefetches (pass input).
    fn build_baseline(&self) -> Module;

    /// The kernel with the paper's best manual prefetches, scheduled with
    /// look-ahead constant `c`.
    fn build_manual(&self, c: i64) -> Module;

    /// Allocate and initialise the input data; returns kernel arguments.
    /// Deterministic for a fixed workload configuration.
    fn setup(&self, interp: &mut Interp) -> Vec<RtVal>;

    /// Digest of the kernel's observable result (return value and/or
    /// memory), for checking that transformed kernels compute the same
    /// thing. `args` are the values returned by [`Workload::setup`].
    fn checksum(&self, interp: &Interp, args: &[RtVal], ret: Option<RtVal>) -> u64;

    /// Build `variant`, or `None` if this workload does not support it
    /// (e.g. the Fig. 2 schemes exist only for IS). Baseline and plain
    /// manual variants are supported everywhere by default.
    fn build_variant(&self, variant: KernelVariant) -> Option<Module> {
        match variant {
            KernelVariant::Baseline => Some(self.build_baseline()),
            KernelVariant::Manual { look_ahead } => Some(self.build_manual(look_ahead)),
            KernelVariant::ManualDepth { .. } | KernelVariant::Fig2(_) => None,
        }
    }
}

/// The paper's seven benchmark configurations, in figure order.
#[must_use]
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    WorkloadId::ALL
        .iter()
        .map(|id| id.instantiate(scale))
        .collect()
}

/// The four benchmarks used in the look-ahead sweep of Fig. 6
/// (IS, CG, RA, HJ-2 — the paper shows "only the simpler benchmarks").
#[must_use]
pub fn fig6_suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    WorkloadId::FIG6
        .iter()
        .map(|id| id.instantiate(scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_ids_match_instance_names() {
        for id in WorkloadId::ALL {
            assert_eq!(id.name(), id.instantiate(Scale::Test).name());
        }
    }

    #[test]
    fn scale_parses_and_rejects() {
        assert_eq!("test".parse::<Scale>(), Ok(Scale::Test));
        assert_eq!("paper".parse::<Scale>(), Ok(Scale::Paper));
        let err = "TEST".parse::<Scale>().unwrap_err();
        assert!(err.contains("TEST"), "error names the bad value: {err}");
        assert!("".parse::<Scale>().is_err());
    }

    #[test]
    fn variant_labels_are_distinct() {
        let all = [
            KernelVariant::Baseline,
            KernelVariant::Manual { look_ahead: 64 },
            KernelVariant::Manual { look_ahead: 4 },
            KernelVariant::ManualDepth {
                look_ahead: 64,
                depth: 3,
            },
            KernelVariant::Fig2(is::Fig2Scheme::Intuitive),
            KernelVariant::Fig2(is::Fig2Scheme::Optimal),
        ];
        let labels: std::collections::HashSet<String> = all.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn default_variants_supported_everywhere() {
        for id in WorkloadId::ALL {
            let w = id.instantiate(Scale::Test);
            assert!(w.build_variant(KernelVariant::Baseline).is_some());
            assert!(w
                .build_variant(KernelVariant::Manual { look_ahead: 16 })
                .is_some());
        }
    }

    #[test]
    fn specialised_variants_gated_to_their_workloads() {
        let fig2 = KernelVariant::Fig2(is::Fig2Scheme::Optimal);
        let depth = KernelVariant::ManualDepth {
            look_ahead: 64,
            depth: 2,
        };
        for id in WorkloadId::ALL {
            let w = id.instantiate(Scale::Test);
            assert_eq!(w.build_variant(fig2).is_some(), id == WorkloadId::Is);
            assert_eq!(w.build_variant(depth).is_some(), id == WorkloadId::Hj8);
        }
    }
}
