//! The `tune` experiment: search-based auto-tuning of prefetch
//! parameters over the workload × machine grid.
//!
//! Unlike the nine figure reproductions, this experiment is *searched*,
//! not swept: the grid it evaluates is chosen at runtime by the
//! `swpf-tune` strategies. It therefore runs through [`run_tune`]
//! rather than the declarative grid harness, but feeds the same
//! downstream machinery — [`CellResult`]s (one per evaluated point ×
//! machine, each carrying its effective `params`), derived
//! [`TableSection`]s, [`Check`] verdicts, and a `RESULTS/tune.json`
//! artifact through [`write_artifact`].
//!
//! Per workload, each strategy gets a **fresh** evaluator, so its
//! reported interpretation count and wall time are the honest cost of
//! running that strategy alone (the point cache still shares work
//! *across the machines* of one strategy's searches — one
//! interpretation per candidate, fanned out to every machine).
//!
//! The derived table quantifies the paper's §Scheduling claim per
//! workload × machine: `heur_%opt` is how close the static `c = 64`
//! heuristic sits to the exhaustive oracle (100 = optimal), and the
//! shape checks pin the subsystem's contracts — tuned never worse than
//! the heuristic, and golden-section ≡ the oracle wherever the measured
//! distance curve is strictly unimodal, at ≤ half the oracle's
//! evaluations.

use crate::harness::{
    print_sections, profile_window_json, structural_checks, write_artifact_with_profile,
    CellResult, Check, ExperimentResult, Row, TableSection,
};
use std::path::Path;
use std::time::Instant;
use swpf_sim::MachineConfig;
use swpf_tune::{
    distance_curve, strictly_unimodal, tune_cell, Evaluator, Exhaustive, GoldenSection, HillClimb,
    SearchSpace, Strategy, TuneReport,
};
use swpf_workloads::{Scale, WorkloadId};

/// A searched experiment: the grid axes plus the search configuration.
pub struct TuneExperiment {
    /// Artifact name ("tune"); also the `RESULTS/<name>.json` stem.
    pub name: &'static str,
    /// Human title for tables and logs.
    pub title: &'static str,
    /// Workload scale to tune at.
    pub scale: Scale,
    /// Machines tuned for (each gets its own best config).
    pub machines: Vec<MachineConfig>,
    /// Workloads tuned.
    pub workloads: Vec<WorkloadId>,
    /// The searchable parameter space.
    pub space: SearchSpace,
    /// Evaluation budget of the hill-climbing strategy.
    pub hill_budget: usize,
}

/// The tuned reports of one workload: per machine, one report per
/// strategy, plus per-strategy evaluator costs.
struct WorkloadTuning {
    /// `[machine][strategy]` in [`STRATEGY_NAMES`] order.
    reports: Vec<Vec<TuneReport>>,
    /// Per-strategy (interpretations, wall seconds).
    costs: Vec<(usize, f64)>,
}

/// Strategy order of [`WorkloadTuning::reports`] and the cost table.
const STRATEGY_NAMES: [&str; 3] = ["exhaustive", "golden", "hill"];

/// Run one strategy over every machine of the grid on a fresh
/// evaluator; returns the per-machine reports, the evaluated points as
/// cells, and the strategy's cost.
fn run_strategy(
    exp: &TuneExperiment,
    workload: WorkloadId,
    strategy: &dyn Strategy,
    oracles: Option<&[TuneReport]>,
) -> (Vec<TuneReport>, Vec<CellResult>, (usize, f64)) {
    let w = workload.instantiate(exp.scale);
    let mut eval = Evaluator::new(w.as_ref(), &exp.machines);
    let t0 = Instant::now();
    let reports: Vec<TuneReport> = (0..exp.machines.len())
        .map(|mi| {
            let oracle = oracles.map(|o| o[mi].chosen_cycles);
            tune_cell(strategy, &exp.space, mi, &mut eval, oracle)
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();

    // Every distinct point this strategy evaluated becomes one cell per
    // machine (the fan-out gave every machine its stats for free).
    let mut cells = Vec::new();
    let wall_each = wall * 1e3 / (eval.points().len() * exp.machines.len()).max(1) as f64;
    for point in eval.points() {
        for (mi, m) in exp.machines.iter().enumerate() {
            cells.push(CellResult {
                machine: m.name,
                workload: w.name(),
                variant: format!("{}_{}", strategy.name(), point.config.cache_key()),
                cores: vec![point.stats[mi]],
                wall_ms: wall_each,
                replayed: mi > 0,
                params: point.config.parameters(),
                tier: swpf_ir::interp::Tier::from_env().label(),
                perf: Vec::new(),
            });
        }
    }
    (reports, cells, (eval.interpretations(), wall))
}

/// Tune every cell of the experiment's grid with every strategy.
///
/// # Panics
/// On a malformed search space or simulation traps — tuning
/// configuration errors.
#[must_use]
pub fn run_tune(exp: &TuneExperiment) -> (ExperimentResult, Vec<TableSection>, Vec<Check>) {
    exp.space.assert_well_formed();
    let t0 = Instant::now();
    let mut cells = Vec::new();
    let mut tunings = Vec::new();

    for &workload in &exp.workloads {
        let (oracles, oracle_cells, oracle_cost) = run_strategy(exp, workload, &Exhaustive, None);
        let (goldens, golden_cells, golden_cost) =
            run_strategy(exp, workload, &GoldenSection, Some(&oracles));
        let hill = HillClimb {
            budget: exp.hill_budget,
        };
        let (hills, hill_cells, hill_cost) = run_strategy(exp, workload, &hill, Some(&oracles));

        cells.extend(oracle_cells);
        cells.extend(golden_cells);
        cells.extend(hill_cells);
        tunings.push(WorkloadTuning {
            reports: (0..exp.machines.len())
                .map(|mi| vec![oracles[mi].clone(), goldens[mi].clone(), hills[mi].clone()])
                .collect(),
            costs: vec![oracle_cost, golden_cost, hill_cost],
        });
    }

    let result = ExperimentResult {
        name: exp.name,
        title: exp.title,
        scale: exp.scale,
        machines: exp.machines.clone(),
        cells,
        threads: 1,
        wall_s: t0.elapsed().as_secs_f64(),
        trace_policy: "fanout".to_string(),
    };
    let derived = derive(exp, &tunings);
    let mut checks = structural_checks(&result, &derived);
    checks.extend(tuning_checks(exp, &tunings));
    (result, derived, checks)
}

/// Per-machine comparison tables plus the aggregate search-cost table.
fn derive(exp: &TuneExperiment, tunings: &[WorkloadTuning]) -> Vec<TableSection> {
    let columns = [
        "heuristic",
        "golden",
        "hill",
        "oracle",
        "heur_%opt",
        "gold_%opt",
        "best_c",
        "pts_gold",
        "pts_orac",
    ];
    let mut sections: Vec<TableSection> = exp
        .machines
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let rows = exp
                .workloads
                .iter()
                .zip(tunings)
                .map(|(w, t)| {
                    let [oracle, golden, hill] = &t.reports[mi][..] else {
                        unreachable!("three strategies per cell")
                    };
                    Row {
                        name: w.name().to_string(),
                        values: vec![
                            golden.heuristic_cycles as f64,
                            golden.chosen_cycles as f64,
                            hill.chosen_cycles as f64,
                            oracle.chosen_cycles as f64,
                            golden.heuristic_pct_of_oracle(),
                            golden.pct_of_oracle(),
                            golden.chosen.look_ahead as f64,
                            golden.points.len() as f64,
                            oracle.points.len() as f64,
                        ],
                    }
                })
                .collect();
            TableSection::new(
                format!("Tuning ({}) — cycles: heuristic c=64 vs. searched", m.name),
                columns.iter().map(ToString::to_string).collect(),
                rows,
            )
        })
        .collect();

    // Aggregate search cost: the fan-out means interpretations count
    // candidates, not candidates × machines.
    let cost_rows = STRATEGY_NAMES
        .iter()
        .enumerate()
        .map(|(si, s)| {
            let points: usize = tunings
                .iter()
                .flat_map(|t| &t.reports)
                .map(|r| r[si].points.len())
                .sum();
            let interps: usize = tunings.iter().map(|t| t.costs[si].0).sum();
            let wall: f64 = tunings.iter().map(|t| t.costs[si].1).sum();
            Row {
                name: (*s).to_string(),
                values: vec![points as f64, interps as f64, wall],
            }
        })
        .collect();
    let mut cost = TableSection::new(
        "Search cost (all workloads)",
        vec![
            "points".to_string(),
            "interpretations".to_string(),
            "wall_s".to_string(),
        ],
        cost_rows,
    );
    cost.notes.push(format!(
        "points: per-machine search requests ({} machines share each \
         candidate's single interpretation via fan-out)",
        exp.machines.len()
    ));
    sections.push(cost);
    sections
}

/// The tuning subsystem's contracts as shape checks.
fn tuning_checks(exp: &TuneExperiment, tunings: &[WorkloadTuning]) -> Vec<Check> {
    let mut checks = Vec::new();
    for (w, t) in exp.workloads.iter().zip(tunings) {
        for (m, reports) in exp.machines.iter().zip(&t.reports) {
            let [oracle, golden, hill] = &reports[..] else {
                unreachable!("three strategies per cell")
            };
            let cell = format!("{}_{}", m.name, w.name());

            // Tuned configs are never worse than the paper heuristic
            // (by construction: the heuristic is always a candidate).
            for r in [golden, hill] {
                checks.push(Check::new(
                    format!("tuned_beats_heuristic_{}_{cell}", r.strategy),
                    r.chosen_cycles <= r.heuristic_cycles,
                    format!(
                        "{} {} vs heuristic {} cycles",
                        r.strategy, r.chosen_cycles, r.heuristic_cycles
                    ),
                ));
            }

            // Bracketing must pay: at most half the oracle's points.
            checks.push(Check::new(
                format!("golden_frugal_{cell}"),
                golden.points.len() * 2 <= oracle.points.len(),
                format!(
                    "golden evaluated {} vs exhaustive {} points",
                    golden.points.len(),
                    oracle.points.len()
                ),
            ));

            // Where Fig. 6's unimodality actually holds in the measured
            // curve, golden-section provably finds the oracle's optimum.
            let curve = distance_curve(&exp.space, &oracle.points);
            if strictly_unimodal(&curve) {
                checks.push(Check::new(
                    format!("golden_matches_oracle_{cell}"),
                    golden.chosen_cycles == oracle.chosen_cycles,
                    format!(
                        "unimodal cell: golden {} vs oracle {} cycles",
                        golden.chosen_cycles, oracle.chosen_cycles
                    ),
                ));
            } else {
                checks.push(Check::new(
                    format!("golden_matches_oracle_{cell}"),
                    true,
                    "distance curve not strictly unimodal: equivalence not claimed".to_string(),
                ));
            }
        }
    }
    checks
}

/// Run the tune experiment end to end — search, print the tables,
/// write `RESULTS/tune.json`, print every check verdict — mirroring
/// [`crate::harness::run_and_report`] for searched experiments.
///
/// # Panics
/// If the artifact cannot be written.
pub fn run_and_report(exp: &TuneExperiment, out_dir: &Path) -> (ExperimentResult, Vec<Check>) {
    let pre = swpf_obs::enabled().then(|| swpf_obs::snapshot().summary());
    let (result, derived, checks) = {
        let _span = swpf_obs::enabled().then(|| swpf_obs::span(format!("experiment:{}", exp.name)));
        run_tune(exp)
    };
    let profile = pre.map(|p| profile_window_json(&p, &swpf_obs::snapshot().summary()));
    println!(
        "\n#### {} — {} [scale={}, {} evaluated cells, {:.2}s]",
        result.name,
        result.title,
        result.scale.label(),
        result.cells.len(),
        result.wall_s,
    );
    print_sections(&derived);
    let path = write_artifact_with_profile(out_dir, &result, &derived, &checks, profile)
        .unwrap_or_else(|e| panic!("cannot write artifact for {}: {e}", result.name));
    println!("\nartifact: {}", path.display());
    for check in &checks {
        let verdict = if check.passed { "ok  " } else { "FAIL" };
        println!("check {verdict} {} — {}", check.name, check.detail);
    }
    (result, checks)
}
