//! Fig. 10 — prefetch speedup with 4 KiB vs. 2 MiB (transparent huge)
//! pages on Haswell, for the TLB-sensitive benchmarks IS, RA and HJ-2.
//!
//! Each bar is normalised to *no prefetching under the same page
//! policy*. With small pages, software prefetching also warms the TLB
//! (a side benefit); with huge pages that benefit disappears for IS/RA
//! but page-table-bound HJ-2 keeps more headroom for the prefetch
//! itself (paper §6.2).
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the table and writes
//! `RESULTS/fig10.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("fig10")
}
