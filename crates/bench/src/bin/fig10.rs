//! Fig. 10 — prefetch speedup with 4 KiB vs. 2 MiB (transparent huge)
//! pages on Haswell, for the TLB-sensitive benchmarks IS, RA and HJ-2.
//!
//! Each bar is normalised to *no prefetching under the same page
//! policy*. With small pages, software prefetching also warms the TLB
//! (a side benefit); with huge pages that benefit disappears for IS/RA
//! but page-table-bound HJ-2 keeps more headroom for the prefetch
//! itself (paper §6.2).

use swpf_bench::{auto_module, scale_from_env, simulate};
use swpf_core::PassConfig;
use swpf_sim::MachineConfig;

fn main() {
    let scale = scale_from_env();
    let config = PassConfig::default();
    let small = MachineConfig::haswell().with_small_pages();
    let huge = MachineConfig::haswell().with_huge_pages();
    println!("=== Fig. 10 — Haswell: prefetch speedup by page size ===");
    println!("{:<10} {:>12} {:>12}", "bench", "small-pages", "huge-pages");
    for w in swpf_workloads::suite(scale) {
        if !matches!(w.name(), "IS" | "RA" | "HJ-2") {
            continue;
        }
        let auto = auto_module(w.as_ref(), &config);
        let sp = {
            let base = simulate(&small, w.as_ref(), &w.build_baseline());
            simulate(&small, w.as_ref(), &auto).speedup_vs(&base)
        };
        let hp = {
            let base = simulate(&huge, w.as_ref(), &w.build_baseline());
            simulate(&huge, w.as_ref(), &auto).speedup_vs(&base)
        };
        println!("{:<10} {:>12.2} {:>12.2}", w.name(), sp, hp);
    }
}
