//! Fig. 6 — speedup vs. look-ahead distance `c` for IS, CG, RA and HJ-2
//! on all four systems (manual insertion, as in the paper §6.2).
//!
//! The paper's finding: the best look-ahead is surprisingly consistent —
//! `c = 64` is near-optimal everywhere, being too late costs more than
//! being too early, so `c` can be set generously.

use swpf_bench::{scale_from_env, simulate};
use swpf_sim::MachineConfig;

fn main() {
    let scale = scale_from_env();
    let distances: Vec<i64> = vec![4, 8, 16, 32, 64, 128, 256];
    for w in swpf_workloads::fig6_suite(scale) {
        println!(
            "\n=== Fig. 6 — {}: speedup vs. look-ahead distance ===",
            w.name()
        );
        print!("{:<10}", "system");
        for c in &distances {
            print!(" {c:>7}");
        }
        println!();
        for machine in MachineConfig::all_systems() {
            let base = simulate(&machine, w.as_ref(), &w.build_baseline());
            print!("{:<10}", machine.name);
            for &c in &distances {
                let s = simulate(&machine, w.as_ref(), &w.build_manual(c));
                print!(" {:>7.2}", s.speedup_vs(&base));
            }
            println!();
        }
    }
}
