//! Fig. 6 — speedup vs. look-ahead distance `c` for IS, CG, RA and HJ-2
//! on all four systems (manual insertion, as in the paper §6.2).
//!
//! The paper's finding: the best look-ahead is surprisingly consistent —
//! `c = 64` is near-optimal everywhere, being too late costs more than
//! being too early, so `c` can be set generously.
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the tables and writes
//! `RESULTS/fig6.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("fig6")
}
