//! Search-based selection of the cleanup pass pipeline: per workload ×
//! machine, find the pipeline ordering that minimises simulated cycles
//! and report the margin against the compiler's default pipeline (bare
//! `swpf`) and the full heuristic (`swpf,gvn,sccp,licm,cse,dce`).
//!
//! Each candidate pipeline is compiled once and interpreted once, with
//! its event stream fanned out to every machine — search cost scales
//! with candidates, not candidates × machines. Two strategies run per
//! cell: the exhaustive oracle over the curated candidate set and a
//! budgeted hill-climb along the probe order.
//!
//! Prints the comparison tables, writes `RESULTS/pipeline_search.json`,
//! and exits non-zero on shape-check failure (what the CI
//! `pipeline-search-smoke` job keys on).
//!
//! ```sh
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin pipeline_search
//! cargo run --release -p swpf-bench --bin pipeline_search -- --out RESULTS
//! ```

use swpf_bench::harness::{cli_options, finish_profiling, init_profiling};
use swpf_bench::{experiments, pipeline_search, scale_from_env};

fn main() -> std::process::ExitCode {
    let scale = scale_from_env();
    let opts = cli_options();
    let profile = init_profiling(&opts);
    let exp = experiments::pipeline_search(scale);
    let (_, checks) = pipeline_search::run_and_report(&exp, &opts.out_dir);
    if let Some(path) = profile {
        finish_profiling(&path);
    }
    if checks.iter().all(|c| c.passed) {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
