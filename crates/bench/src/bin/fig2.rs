//! Fig. 2 — software-prefetch scheme quality on Integer Sort.
//!
//! Reproduces the paper's motivating measurement: the *intuitive* single
//! indirect prefetch leaves performance on the table, offsets that are
//! too small fetch too late, offsets that are too large pollute the
//! cache, and only the staggered pair at a good distance reaches full
//! speedup (paper, Haswell: 1.08× intuitive vs. 1.30× optimal).
//!
//! The paper shows Haswell only; we print every machine because on our
//! scaled model the cost of the unprefetched look-ahead load (the thing
//! the intuitive scheme forgets) shows most clearly on the in-order
//! cores, which stall on its L2 hits.

use swpf_bench::{scale_from_env, simulate};
use swpf_sim::MachineConfig;
use swpf_workloads::is::{Fig2Scheme, IntegerSort};
use swpf_workloads::Workload;

fn main() {
    let is = IntegerSort::new(scale_from_env());
    println!("=== Fig. 2 — IS: prefetching-scheme speedups ===");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "system", "intuitive", "too-small", "too-big", "optimal"
    );
    for machine in MachineConfig::all_systems() {
        let base = simulate(&machine, &is, &is.build_baseline());
        print!("{:<10}", machine.name);
        for scheme in [
            Fig2Scheme::Intuitive,
            Fig2Scheme::OffsetTooSmall,
            Fig2Scheme::OffsetTooBig,
            Fig2Scheme::Optimal,
        ] {
            let stats = simulate(&machine, &is, &is.build_fig2_variant(scheme));
            print!(" {:>10.3}", stats.speedup_vs(&base));
        }
        println!();
    }
}
