//! Fig. 2 — software-prefetch scheme quality on Integer Sort.
//!
//! Reproduces the paper's motivating measurement: the *intuitive* single
//! indirect prefetch leaves performance on the table, offsets that are
//! too small fetch too late, offsets that are too large pollute the
//! cache, and only the staggered pair at a good distance reaches full
//! speedup (paper, Haswell: 1.08× intuitive vs. 1.30× optimal).
//!
//! The paper shows Haswell only; we print every machine because on our
//! scaled model the cost of the unprefetched look-ahead load (the thing
//! the intuitive scheme forgets) shows most clearly on the in-order
//! cores, which stall on its L2 hits.
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the table and writes
//! `RESULTS/fig2.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("fig2")
}
