//! Developer tool: dump full simulator statistics for one workload on
//! every machine, baseline vs. auto-prefetched vs. manual. Not part of
//! the figure set; useful when calibrating the machine models.
//!
//! Usage: `debug_stats [IS|CG|RA|HJ-2|HJ-8|G500-s16|G500-s21]`

use swpf_bench::{auto_module, scale_from_env, simulate};
use swpf_core::PassConfig;
use swpf_sim::{MachineConfig, SimStats};

fn dump(tag: &str, s: &SimStats) {
    println!(
        "  {tag:<9} cyc={:>12} inst={:>10} ld={:>9} pf={:>8} l1m={:>8} l2m={:>8} tlbm={:>8} dramR={:>8} dramW={:>8} late={:>7} drop={:>6} redun={:>7} ipc={:.2}",
        s.cycles,
        s.insts.total,
        s.insts.loads,
        s.insts.prefetches,
        s.l1_misses,
        s.l2_misses,
        s.tlb_misses,
        s.dram_lines_read,
        s.dram_lines_written,
        s.mem.late_fill_hits,
        s.mem.sw_prefetches_dropped,
        s.mem.sw_prefetches_redundant,
        s.ipc(),
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "IS".to_string());
    let scale = scale_from_env();
    let config = PassConfig::default();
    let suite = swpf_workloads::suite(scale);
    let w = suite
        .iter()
        .find(|w| w.name() == which)
        .unwrap_or_else(|| panic!("unknown workload `{which}`"));
    for machine in MachineConfig::all_systems() {
        println!("{} / {}", machine.name, w.name());
        let base = simulate(&machine, w.as_ref(), &w.build_baseline());
        dump("base", &base);
        let auto = simulate(&machine, w.as_ref(), &auto_module(w.as_ref(), &config));
        dump("auto", &auto);
        let manual = simulate(&machine, w.as_ref(), &w.build_manual(config.look_ahead));
        dump("manual", &manual);
        println!(
            "  speedup: auto {:.2}x manual {:.2}x",
            auto.speedup_vs(&base),
            manual.speedup_vs(&base)
        );
    }
}
