//! Developer tool: dump full simulator statistics for one workload on
//! every machine, baseline vs. auto-prefetched vs. manual, plus each
//! variant's static code profile (decoded instruction count and memory-op
//! sites from the `ExecImage`) so static code-size overhead can be read
//! against the dynamic counts. Not part of the figure set; useful when
//! calibrating the machine models.
//!
//! Usage: `debug_stats [IS|CG|RA|HJ-2|HJ-8|G500-s16|G500-s21]`

use swpf_bench::{auto_module, scale_from_env, simulate};
use swpf_core::PassConfig;
use swpf_ir::exec::ExecImage;
use swpf_ir::Module;
use swpf_sim::{MachineConfig, SimStats};

fn dump(tag: &str, s: &SimStats) {
    println!(
        "  {tag:<9} cyc={:>12} inst={:>10} ld={:>9} pf={:>8} l1m={:>8} l2m={:>8} tlbm={:>8} dramR={:>8} dramW={:>8} late={:>7} drop={:>6} redun={:>7} ipc={:.2}",
        s.cycles,
        s.insts.total,
        s.insts.loads,
        s.insts.prefetches,
        s.l1_misses,
        s.l2_misses,
        s.tlb_misses,
        s.dram_lines_read,
        s.dram_lines_written,
        s.mem.late_fill_hits,
        s.mem.sw_prefetches_dropped,
        s.mem.sw_prefetches_redundant,
        s.ipc(),
    );
}

/// Static code profile of the kernel: decoded instruction count plus
/// load/store/prefetch site counts, read from the decoded image's
/// per-instruction metadata.
fn dump_static(tag: &str, m: &Module) {
    let f = m.find_function("kernel").expect("kernel exists");
    let image = ExecImage::build(m);
    let (mut loads, mut stores, mut prefetches) = (0u32, 0u32, 0u32);
    for v in 0..m.function(f).num_values() as u64 {
        let Some(meta) = image.static_meta((u64::from(f.0) << 32) | v) else {
            continue;
        };
        loads += u32::from(meta.is_load);
        stores += u32::from(meta.is_store);
        prefetches += u32::from(meta.is_prefetch);
    }
    println!(
        "  {tag:<9} static: {} decoded inst, {loads} load / {stores} store / {prefetches} prefetch sites",
        image.code_len(f),
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "IS".to_string());
    let scale = scale_from_env();
    let config = PassConfig::default();
    let suite = swpf_workloads::suite(scale);
    let w = suite
        .iter()
        .find(|w| w.name() == which)
        .unwrap_or_else(|| panic!("unknown workload `{which}`"));
    println!("static code profile / {}", w.name());
    dump_static("base", &w.build_baseline());
    dump_static("auto", &auto_module(w.as_ref(), &config));
    dump_static("manual", &w.build_manual(config.look_ahead));
    for machine in MachineConfig::all_systems() {
        println!("{} / {}", machine.name, w.name());
        let base = simulate(&machine, w.as_ref(), &w.build_baseline());
        dump("base", &base);
        let auto = simulate(&machine, w.as_ref(), &auto_module(w.as_ref(), &config));
        dump("auto", &auto);
        let manual = simulate(&machine, w.as_ref(), &w.build_manual(config.look_ahead));
        dump("manual", &manual);
        println!(
            "  speedup: auto {:.2}x manual {:.2}x",
            auto.speedup_vs(&base),
            manual.speedup_vs(&base)
        );
    }
}
