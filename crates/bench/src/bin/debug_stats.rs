//! Developer tool: dump full simulator statistics for one workload on
//! every machine, baseline vs. auto-prefetched vs. manual, plus each
//! variant's static code profile (decoded instruction count and memory-op
//! sites from the `ExecImage`) so static code-size overhead can be read
//! against the dynamic counts. Not part of the figure set; useful when
//! calibrating the machine models.
//!
//! Per-PC profiling (`swpf_sim::perf`) is force-enabled: each variant
//! row is followed by its prefetch-outcome partition, and the
//! conservation invariant (`timely + late + early_evicted + redundant +
//! dropped + unused == issued`) is asserted per cell — so this binary
//! doubles as a profiling smoke check.
//!
//! Usage: `debug_stats [IS|CG|RA|HJ-2|HJ-8|G500-s16|G500-s21]`
//! (no argument: every workload in the suite)

use std::sync::Arc;
use swpf_bench::{auto_module, scale_from_env};
use swpf_core::PassConfig;
use swpf_ir::exec::ExecImage;
use swpf_ir::Module;
use swpf_sim::{MachineConfig, SimRun, SimStats};
use swpf_workloads::Workload;

fn dump(tag: &str, s: &SimStats) {
    println!(
        "  {tag:<9} cyc={:>12} inst={:>10} ld={:>9} pf={:>8} l1m={:>8} l2m={:>8} tlbm={:>8} dramR={:>8} dramW={:>8} late={:>7} drop={:>6} redun={:>7} ipc={:.2}",
        s.cycles,
        s.insts.total,
        s.insts.loads,
        s.insts.prefetches,
        s.l1_misses,
        s.l2_misses,
        s.tlb_misses,
        s.dram_lines_read,
        s.dram_lines_written,
        s.mem.late_fill_hits,
        s.mem.sw_prefetches_dropped,
        s.mem.sw_prefetches_redundant(),
        s.ipc(),
    );
}

/// Print the prefetch-outcome partition and assert its conservation
/// invariant plus consistency with the aggregate counters.
fn dump_perf(machine: &str, workload: &str, tag: &str, run: &SimRun) {
    let p = run.perf.as_ref().expect("perf profiling force-enabled");
    let t = p.totals();
    println!(
        "  {tag:<9}   perf: issued={:>8} timely={:>8} late={:>7} early={:>7} redun_res={:>7} redun_inf={:>7} drop={:>6} unused={:>6} sites={:>3} lead_mean={:>6.0}cyc stall={:>10}cyc",
        t.issued,
        t.timely,
        t.late,
        t.early_evicted,
        t.redundant_resident,
        t.redundant_inflight,
        t.dropped,
        t.unused_at_end,
        p.sites.len(),
        t.lead_cycles.mean(),
        p.total_stall_cycles(),
    );
    assert!(
        p.conserved(),
        "{machine}/{workload}/{tag}: outcome partition must be conserved: {t:?}"
    );
    // The partition totals must agree with the aggregate counters the
    // memory system keeps unconditionally.
    let mem = run.stats.mem;
    assert_eq!(t.issued, mem.sw_prefetches, "{machine}/{workload}/{tag}");
    assert_eq!(
        t.dropped, mem.sw_prefetches_dropped,
        "{machine}/{workload}/{tag}"
    );
    assert_eq!(
        t.redundant_resident, mem.sw_prefetches_redundant_resident,
        "{machine}/{workload}/{tag}"
    );
    assert_eq!(
        t.redundant_inflight, mem.sw_prefetches_redundant_inflight,
        "{machine}/{workload}/{tag}"
    );
}

/// Static code profile of the kernel: decoded instruction count plus
/// load/store/prefetch site counts, read from the decoded image's
/// per-instruction metadata.
fn dump_static(tag: &str, m: &Module) {
    let f = m.find_function("kernel").expect("kernel exists");
    let image = ExecImage::build(m);
    let (mut loads, mut stores, mut prefetches) = (0u32, 0u32, 0u32);
    for v in 0..m.function(f).num_values() as u64 {
        let Some(meta) = image.static_meta((u64::from(f.0) << 32) | v) else {
            continue;
        };
        loads += u32::from(meta.is_load);
        stores += u32::from(meta.is_store);
        prefetches += u32::from(meta.is_prefetch);
    }
    println!(
        "  {tag:<9} static: {} decoded inst, {loads} load / {stores} store / {prefetches} prefetch sites",
        image.code_len(f),
    );
}

/// Simulate with per-PC profiling attached.
fn simulate_perf(cfg: &MachineConfig, w: &dyn Workload, m: &Module) -> SimRun {
    let f = m.find_function("kernel").expect("kernel exists");
    let image = Arc::new(ExecImage::build(m));
    swpf_sim::run_on_machine_image_perf(cfg, &image, f, |interp| w.setup(interp))
}

fn run_workload(w: &dyn Workload, config: &PassConfig) {
    println!("static code profile / {}", w.name());
    dump_static("base", &w.build_baseline());
    dump_static("auto", &auto_module(w, config));
    dump_static("manual", &w.build_manual(config.look_ahead));
    for machine in MachineConfig::all_systems() {
        println!("{} / {}", machine.name, w.name());
        let base = simulate_perf(&machine, w, &w.build_baseline());
        dump("base", &base.stats);
        dump_perf(machine.name, w.name(), "base", &base);
        let auto = simulate_perf(&machine, w, &auto_module(w, config));
        dump("auto", &auto.stats);
        dump_perf(machine.name, w.name(), "auto", &auto);
        let manual = simulate_perf(&machine, w, &w.build_manual(config.look_ahead));
        dump("manual", &manual.stats);
        dump_perf(machine.name, w.name(), "manual", &manual);
        println!(
            "  speedup: auto {:.2}x manual {:.2}x",
            auto.stats.speedup_vs(&base.stats),
            manual.stats.speedup_vs(&base.stats)
        );
    }
}

fn main() {
    swpf_sim::perf::set_enabled(true);
    let which = std::env::args().nth(1);
    let scale = scale_from_env();
    let config = PassConfig::default();
    let suite = swpf_workloads::suite(scale);
    match which {
        Some(name) => {
            let w = suite
                .iter()
                .find(|w| w.name() == name)
                .unwrap_or_else(|| panic!("unknown workload `{name}`"));
            run_workload(w.as_ref(), &config);
        }
        // No argument: the whole suite, asserting the conservation
        // invariant on every workload × machine × variant cell.
        None => {
            for w in &suite {
                run_workload(w.as_ref(), &config);
            }
        }
    }
}
