//! Superinstruction miner: rank the most frequent adjacent
//! retired-instruction pairs across the full trace corpus — all seven
//! workloads × {baseline, manual, auto} — to choose the bytecode tier's
//! fused-opcode catalogue (`swpf_ir::bytecode::FUSE_TABLE`).
//!
//! Each kernel is interpreted once and recorded into a `swpf-trace`
//! stream (the same corpus format the record/replay harness uses); the
//! pair statistics are then read back out of the encoded trace through
//! `swpf_trace::analytics`, with every event classified to its opcode
//! mnemonic via `ExecImage::op_class_table`. Pairs whose first opcode is
//! a plain (non-control, non-phi) instruction are statically adjacent in
//! bytecode — retired back-to-back with the first falling through — so
//! they are exactly the fusible candidates; the rest are reported but
//! marked unfusible.
//!
//! With `--trace-dir` (or `SWPF_TRACE_DIR`) the miner shares the
//! harness's persistent trace cache: fingerprint-matching kernels are
//! streamed from disk block-at-a-time instead of re-interpreted, and
//! fresh recordings are stored back for the next consumer.
//!
//! ```sh
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin mine_pairs
//! cargo run --release -p swpf-bench --bin mine_pairs -- --top 30 --json RESULTS/pairs.json
//! cargo run --release -p swpf-bench --bin mine_pairs -- --trace-dir traces
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use swpf_bench::harness::{kernel_fingerprint, trace_cache_path};
use swpf_bench::{auto_module, scale_from_env};
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::Interp;
use swpf_trace::{
    count_pairs_in_trace, count_pairs_streaming, PairCounter, StreamingReplay, TraceRecorder,
};
use swpf_workloads::{suite, KernelVariant};

/// Can this pair be fused into a superinstruction? The second word of a
/// fused pair executes as the head's fall-through successor, so the
/// first opcode must be a plain op: no control transfer (its successor
/// is not `ip + 1`), no phi (a phi retires inside a branch's edge
/// application, not as its own word), no call (the successor executes
/// in a different frame). The second half may be any code word — even a
/// branch — but not a phi (not a word) and not a call (it would return
/// control from inside the fused handler).
fn fusible(first: &str, second: &str) -> bool {
    !matches!(first, "br" | "cbr" | "ret" | "call" | "phi" | "falloff")
        && !matches!(second, "phi" | "call" | "falloff")
}

fn main() {
    let mut top = 20usize;
    let mut json_out: Option<String> = None;
    let mut trace_dir: Option<PathBuf> = std::env::var_os("SWPF_TRACE_DIR").map(PathBuf::from);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => {
                top = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--top needs a number"));
            }
            "--json" => json_out = Some(args.next().expect("--json needs a path")),
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(
                    args.next().expect("--trace-dir needs a directory"),
                ));
            }
            other => {
                eprintln!("usage: mine_pairs [--top N] [--json FILE] [--trace-dir DIR]");
                panic!("unknown argument `{other}`");
            }
        }
    }

    let scale = scale_from_env();
    let mut total: PairCounter<&'static str> = PairCounter::new();
    println!("mining retired-pair frequencies at scale={}", scale.label());
    for w in suite(scale) {
        for variant in ["baseline", "manual", "auto"] {
            let module = match variant {
                "baseline" => w.build_baseline(),
                "manual" => w
                    .build_variant(KernelVariant::Manual { look_ahead: 64 })
                    .expect("manual supported everywhere"),
                "auto" => auto_module(w.as_ref(), &swpf_core::PassConfig::default()),
                _ => unreachable!(),
            };
            let func = module.find_function("kernel").expect("kernel exists");
            let image = Arc::new(ExecImage::build(&module));
            let classes = image.op_class_table();

            // Harness-compatible cache identity: same trace key (the
            // variant's module key) and same fingerprint recipe, so the
            // miner and the figure grids share one corpus on disk.
            let trace_key = match variant {
                "manual" => "manual_c64",
                key => key,
            };
            let text_hash = swpf_trace::fnv64(swpf_ir::printer::print_module(&module).as_bytes());
            let fingerprint = kernel_fingerprint(w.name(), scale, 1, text_hash);
            let path = trace_dir
                .as_deref()
                .map(|d| trace_cache_path(d, scale, w.name(), trace_key));

            // Warm path: stream the cached recording block-at-a-time.
            let cached = path
                .as_deref()
                .and_then(|p| match StreamingReplay::open(p) {
                    Ok(replay) if replay.fingerprint() == fingerprint => {
                        count_pairs_streaming(&replay, |ev| classes.get(&ev.pc).copied()).ok()
                    }
                    _ => None,
                });
            let (pairs, from) = match cached {
                Some(pairs) => (pairs, "cache"),
                None => {
                    // Record the kernel into the corpus format, then
                    // read the pair statistics back out of the encoded
                    // stream (persisting it when a cache dir is set).
                    let mut interp = Interp::new();
                    let args = w.setup(&mut interp);
                    let mut rec = TraceRecorder::new(1, fingerprint);
                    interp
                        .run_with_image(Arc::clone(&image), func, &args, rec.stream(0))
                        .unwrap_or_else(|t| panic!("{}/{variant} trapped: {t}", w.name()));
                    let trace = rec.finish();
                    if let Some(p) = &path {
                        if let Some(dir) = p.parent() {
                            std::fs::create_dir_all(dir).ok();
                        }
                        if let Err(e) = std::fs::write(p, trace.to_bytes()) {
                            eprintln!("warning: cannot store {}: {e}", p.display());
                        }
                    }
                    let pairs = count_pairs_in_trace(&trace, |ev| classes.get(&ev.pc).copied())
                        .expect("freshly recorded trace decodes");
                    (pairs, "interp")
                }
            };
            println!(
                "  {:<6} {variant:<8} {:>12} events  ({from})",
                w.name(),
                pairs.observed()
            );
            total.merge(&pairs);
        }
    }

    let mut ranked = total.ranked();
    // Sub-sort equal counts lexicographically for deterministic output.
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let observed = total.observed();
    println!("\n{observed} retired events total; top {top} adjacent pairs:");
    println!(
        "{:>4}  {:<22} {:>14} {:>7}  fusible",
        "#", "pair", "count", "%"
    );
    for (i, ((first, second), n)) in ranked.iter().take(top).enumerate() {
        println!(
            "{:>4}  {:<22} {:>14} {:>6.2}%  {}",
            i + 1,
            format!("{first},{second}"),
            n,
            100.0 * *n as f64 / observed as f64,
            if fusible(first, second) { "yes" } else { "no" }
        );
    }

    if let Some(path) = json_out {
        let rows: Vec<String> = ranked
            .iter()
            .take(top)
            .map(|((first, second), n)| {
                format!(
                    "    {{\"first\": \"{first}\", \"second\": \"{second}\", \"count\": {n}, \"fusible\": {}}}",
                    fusible(first, second)
                )
            })
            .collect();
        let doc = format!(
            "{{\n  \"scale\": \"{}\",\n  \"observed\": {observed},\n  \"pairs\": [\n{}\n  ]\n}}\n",
            scale.label(),
            rows.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\nwrote {path}");
    }
}
