//! Compile-time probe for the pass-manager analysis cache: the A/B
//! source of `BENCH_pass.json`.
//!
//! The `swpf-tune` evaluator compiles every candidate configuration
//! from a clone of one pristine baseline module, so its pre-mutation
//! analyses (dominators, loops, induction variables, object roots) are
//! identical across candidates. The pass-manager path computes them
//! once in a shared primed `AnalysisManager` and forks it per candidate
//! ([`Evaluator`]); the pre-pass-manager behaviour recomputed all of
//! them per candidate. This probe measures exactly that compile phase —
//! clone + pass pipeline + verify for every point of the default
//! 25-point search space — with the cache on and off, interleaved
//! A/B within each repetition so the container's wall-clock drift
//! cancels (compare within a rep, not across reps).
//!
//! Each sweep runs under a `swpf-obs` span named
//! `sweep:<workload>:<cached|uncached>`; the reported wall times are
//! the span-summary means (total over `--reps` repetitions divided by
//! the span count), so the JSON here and a `prof_report` of the same
//! process agree by construction.
//!
//! ```sh
//! cargo run --release -p swpf-bench --bin pass_probe -- [--reps N]
//! ```
//!
//! Output: one JSON document on stdout with per-workload wall times,
//! cached/uncached ratios, and the analyses-computed counters that
//! explain them.

use swpf_bench::json::Json;
use swpf_core::PassConfig;
use swpf_sim::MachineConfig;
use swpf_tune::{Evaluator, SearchSpace};
use swpf_workloads::{Scale, WorkloadId};

/// The full cleanup pipeline of the `pipeline` A/B group.
const FULL_PIPELINE: &str = "swpf,gvn,sccp,licm,cse,dce";

/// The local-only reference pipeline the full one is gated against.
const LOCAL_PIPELINE: &str = "swpf,cse,dce";

/// One full compile sweep: every point of `space` through a fresh
/// evaluator, under the span named `label`. Returns the analyses
/// computed during the sweep; wall time lives in the span.
fn sweep(
    id: WorkloadId,
    machines: &[MachineConfig],
    space: &SearchSpace,
    cached: bool,
    label: &str,
) -> usize {
    let w = id.instantiate(Scale::Paper);
    let _span = swpf_obs::span(label.to_string());
    let mut ev = if cached {
        Evaluator::new(w.as_ref(), machines)
    } else {
        Evaluator::new(w.as_ref(), machines).without_analysis_caching()
    };
    for i in 0..space.len() {
        let _ = ev.compile_candidate(&space.at(i));
    }
    ev.analyses_computed()
}

/// One pipeline-compile sweep: every point of `space` compiled through
/// the pipeline `spec` on a fresh (cached) evaluator, under the span
/// named `label` — the A/B source of the `bench_gate` compile-phase
/// pipeline gate.
fn pipeline_sweep(
    id: WorkloadId,
    machines: &[MachineConfig],
    space: &SearchSpace,
    spec: &str,
    label: &str,
) {
    let w = id.instantiate(Scale::Paper);
    let _span = swpf_obs::span(label.to_string());
    let mut ev = Evaluator::new(w.as_ref(), machines);
    for i in 0..space.len() {
        let config = PassConfig {
            pipeline: spec.parse().expect("valid pipeline spec"),
            ..space.at(i)
        };
        let _ = ev.compile_candidate(&config);
    }
}

/// Mean wall seconds of every span recorded under `label`.
fn mean_wall_s(summary: &swpf_obs::Summary, label: &str) -> f64 {
    let row = summary
        .rows
        .iter()
        .find(|(n, _)| n == label)
        .map(|(_, r)| *r)
        .unwrap_or_default();
    row.total_ns as f64 / 1e9 / row.count.max(1) as f64
}

fn main() {
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs an integer");
            }
            other => panic!("unknown argument `{other}` (expected --reps N)"),
        }
    }

    swpf_obs::enable();
    swpf_obs::name_thread("main");
    let machines = [MachineConfig::a53()];
    let space = SearchSpace::paper_default();
    let workloads = WorkloadId::FIG6;

    let mut rows = Vec::new();
    let mut total_cached = 0.0;
    let mut total_uncached = 0.0;
    for &id in &workloads {
        let label_c = format!("sweep:{}:cached", id.name());
        let label_u = format!("sweep:{}:uncached", id.name());
        let mut analyses = (0usize, 0usize);
        for _ in 0..reps {
            // Interleave within the rep: drift cancels inside a pair.
            let an_c = sweep(id, &machines, &space, true, &label_c);
            let an_u = sweep(id, &machines, &space, false, &label_u);
            analyses = (an_c, an_u);
        }
        let summary = swpf_obs::snapshot().summary();
        let (c, u) = (
            mean_wall_s(&summary, &label_c),
            mean_wall_s(&summary, &label_u),
        );
        total_cached += c;
        total_uncached += u;
        rows.push((
            id.name(),
            Json::obj(vec![
                ("cached_wall_s", Json::F64(c)),
                ("uncached_wall_s", Json::F64(u)),
                ("uncached_over_cached", Json::F64(u / c)),
                ("analyses_computed_cached", Json::U64(analyses.0 as u64)),
                ("analyses_computed_uncached", Json::U64(analyses.1 as u64)),
            ]),
        ));
    }

    // Pipeline A/B: the full global pipeline vs. the local-only PR 5
    // pipeline, same compile phase, interleaved within each rep — the
    // reference source of the `bench_gate` pipeline gate.
    let mut pipeline_rows = Vec::new();
    let mut total_full = 0.0;
    let mut total_local = 0.0;
    for &id in &workloads {
        let label_f = format!("pipeline:{}:full", id.name());
        let label_l = format!("pipeline:{}:cse_dce", id.name());
        for _ in 0..reps {
            pipeline_sweep(id, &machines, &space, FULL_PIPELINE, &label_f);
            pipeline_sweep(id, &machines, &space, LOCAL_PIPELINE, &label_l);
        }
        let summary = swpf_obs::snapshot().summary();
        let (f, l) = (
            mean_wall_s(&summary, &label_f),
            mean_wall_s(&summary, &label_l),
        );
        total_full += f;
        total_local += l;
        pipeline_rows.push((
            id.name(),
            Json::obj(vec![
                ("full_wall_s", Json::F64(f)),
                ("cse_dce_wall_s", Json::F64(l)),
                ("full_over_cse_dce", Json::F64(f / l)),
            ]),
        ));
    }

    let doc = Json::obj(vec![
        ("reps", Json::U64(reps as u64)),
        ("points_per_sweep", Json::U64(space.len() as u64)),
        ("workloads", Json::obj(rows.into_iter().collect::<Vec<_>>())),
        (
            "total",
            Json::obj(vec![
                ("cached_wall_s", Json::F64(total_cached)),
                ("uncached_wall_s", Json::F64(total_uncached)),
                (
                    "uncached_over_cached",
                    Json::F64(total_uncached / total_cached),
                ),
            ]),
        ),
        (
            "pipeline",
            Json::obj(vec![
                (
                    "workloads",
                    Json::obj(pipeline_rows.into_iter().collect::<Vec<_>>()),
                ),
                ("full_wall_s", Json::F64(total_full)),
                ("cse_dce_wall_s", Json::F64(total_local)),
                ("full_over_cse_dce", Json::F64(total_full / total_local)),
            ]),
        ),
    ]);
    println!("{}", doc.to_pretty_string());
}
