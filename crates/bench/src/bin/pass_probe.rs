//! Compile-time probe for the pass-manager analysis cache: the A/B
//! source of `BENCH_pass.json`.
//!
//! The `swpf-tune` evaluator compiles every candidate configuration
//! from a clone of one pristine baseline module, so its pre-mutation
//! analyses (dominators, loops, induction variables, object roots) are
//! identical across candidates. The pass-manager path computes them
//! once in a shared primed `AnalysisManager` and forks it per candidate
//! ([`Evaluator`]); the pre-pass-manager behaviour recomputed all of
//! them per candidate. This probe measures exactly that compile phase —
//! clone + pass pipeline + verify for every point of the default
//! 25-point search space — with the cache on and off, interleaved
//! A/B within each repetition so the container's wall-clock drift
//! cancels (compare within a rep, not across reps).
//!
//! ```sh
//! cargo run --release -p swpf-bench --bin pass_probe -- [--reps N]
//! ```
//!
//! Output: one JSON document on stdout with per-workload wall times,
//! cached/uncached ratios, and the analyses-computed counters that
//! explain them.

use std::time::Instant;
use swpf_bench::json::Json;
use swpf_sim::MachineConfig;
use swpf_tune::{Evaluator, SearchSpace};
use swpf_workloads::{Scale, WorkloadId};

/// One full compile sweep: every point of `space` through a fresh
/// evaluator. Returns (outer wall seconds incl. construction/priming,
/// evaluator-reported compile seconds, analyses computed during the
/// sweep).
fn sweep(
    id: WorkloadId,
    machines: &[MachineConfig],
    space: &SearchSpace,
    cached: bool,
) -> (f64, f64, usize) {
    let w = id.instantiate(Scale::Paper);
    let t0 = Instant::now();
    let mut ev = if cached {
        Evaluator::new(w.as_ref(), machines)
    } else {
        Evaluator::new(w.as_ref(), machines).without_analysis_caching()
    };
    for i in 0..space.len() {
        let _ = ev.compile_candidate(&space.at(i));
    }
    (
        t0.elapsed().as_secs_f64(),
        ev.compile_seconds(),
        ev.analyses_computed(),
    )
}

fn main() {
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs an integer");
            }
            other => panic!("unknown argument `{other}` (expected --reps N)"),
        }
    }

    let machines = [MachineConfig::a53()];
    let space = SearchSpace::paper_default();
    let workloads = WorkloadId::FIG6;

    let mut rows = Vec::new();
    let mut total_cached = 0.0;
    let mut total_uncached = 0.0;
    for &id in &workloads {
        let mut cached_walls = Vec::new();
        let mut uncached_walls = Vec::new();
        let mut analyses = (0usize, 0usize);
        for _ in 0..reps {
            // Interleave within the rep: drift cancels inside a pair.
            let (wall_c, _, an_c) = sweep(id, &machines, &space, true);
            let (wall_u, _, an_u) = sweep(id, &machines, &space, false);
            cached_walls.push(wall_c);
            uncached_walls.push(wall_u);
            analyses = (an_c, an_u);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (c, u) = (mean(&cached_walls), mean(&uncached_walls));
        total_cached += c;
        total_uncached += u;
        rows.push((
            id.name(),
            Json::obj(vec![
                ("cached_wall_s", Json::F64(c)),
                ("uncached_wall_s", Json::F64(u)),
                ("uncached_over_cached", Json::F64(u / c)),
                ("analyses_computed_cached", Json::U64(analyses.0 as u64)),
                ("analyses_computed_uncached", Json::U64(analyses.1 as u64)),
            ]),
        ));
    }

    let doc = Json::obj(vec![
        ("reps", Json::U64(reps as u64)),
        ("points_per_sweep", Json::U64(space.len() as u64)),
        ("workloads", Json::obj(rows.into_iter().collect::<Vec<_>>())),
        (
            "total",
            Json::obj(vec![
                ("cached_wall_s", Json::F64(total_cached)),
                ("uncached_wall_s", Json::F64(total_uncached)),
                (
                    "uncached_over_cached",
                    Json::F64(total_uncached / total_cached),
                ),
            ]),
        ),
    ]);
    println!("{}", doc.to_pretty_string());
}
