//! Fig. 7 — HJ-8 prefetch stagger depth: how many of the four dependent
//! irregular accesses (bucket + three chain nodes) to prefetch.
//!
//! Prefetching deeper costs O(n²) address-generation code: each deeper
//! prefetch must re-walk the chain with real loads. The paper finds
//! depth 3 optimal on every system — the last node's prefetch costs more
//! than it saves.
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the table and writes
//! `RESULTS/fig7.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("fig7")
}
