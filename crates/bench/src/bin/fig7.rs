//! Fig. 7 — HJ-8 prefetch stagger depth: how many of the four dependent
//! irregular accesses (bucket + three chain nodes) to prefetch.
//!
//! Prefetching deeper costs O(n²) address-generation code: each deeper
//! prefetch must re-walk the chain with real loads. The paper finds
//! depth 3 optimal on every system — the last node's prefetch costs more
//! than it saves.

use swpf_bench::{scale_from_env, simulate};
use swpf_sim::MachineConfig;
use swpf_workloads::hj::{ElemsPerBucket, HashJoin};
use swpf_workloads::Workload;

fn main() {
    let hj8 = HashJoin::new(scale_from_env(), ElemsPerBucket::Eight);
    println!("=== Fig. 7 — HJ-8: speedup vs. prefetch stagger depth ===");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "system", "1", "2", "3", "4"
    );
    for machine in MachineConfig::all_systems() {
        let base = simulate(&machine, &hj8, &hj8.build_baseline());
        print!("{:<10}", machine.name);
        for depth in 1..=4 {
            let s = simulate(&machine, &hj8, &hj8.build_manual_depth(64, depth));
            print!(" {:>8.2}", s.speedup_vs(&base));
        }
        println!();
    }
}
