//! Fig. 9 — IS throughput on Haswell with 1, 2 and 4 cores, with and
//! without prefetching, each core running its own copy of the benchmark.
//!
//! Normalised throughput is (copies completed per unit time) relative to
//! one copy on one core without prefetching. The paper's point: the
//! shared memory system saturates — four cores achieve *less* than 1×
//! aggregate without help — yet software prefetching still wins.

use swpf_bench::{auto_module, scale_from_env};
use swpf_core::PassConfig;
use swpf_sim::{run_multicore, MachineConfig};
use swpf_workloads::is::IntegerSort;
use swpf_workloads::Workload;

fn main() {
    let is = IntegerSort::new(scale_from_env());
    let machine = MachineConfig::haswell();
    let base_m = is.build_baseline();
    let auto_m = auto_module(&is, &PassConfig::default());

    let run = |module: &swpf_ir::Module, cores: usize| -> u64 {
        let f = module.find_function("kernel").expect("kernel");
        let stats = run_multicore(&machine, cores, module, f, |_, interp| is.setup(interp));
        stats.iter().map(|s| s.cycles).max().unwrap_or(0)
    };

    let t1_nopf = run(&base_m, 1) as f64;
    println!("=== Fig. 9 — IS on Haswell: normalised multicore throughput ===");
    println!("{:<7} {:>12} {:>12}", "cores", "no-prefetch", "prefetch");
    for cores in [1usize, 2, 4] {
        let tn_nopf = run(&base_m, cores) as f64;
        let tn_pf = run(&auto_m, cores) as f64;
        println!(
            "{cores:<7} {:>12.2} {:>12.2}",
            cores as f64 * t1_nopf / tn_nopf,
            cores as f64 * t1_nopf / tn_pf,
        );
    }
}
