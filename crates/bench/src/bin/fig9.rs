//! Fig. 9 — IS throughput on Haswell with 1, 2 and 4 cores, with and
//! without prefetching, each core running its own copy of the benchmark.
//!
//! Normalised throughput is (copies completed per unit time) relative to
//! one copy on one core without prefetching. The paper's point: the
//! shared memory system saturates — yet software prefetching still wins.
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the table and writes
//! `RESULTS/fig9.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("fig9")
}
