//! Render a `swpf-obs` chrome-trace profile artifact (written by
//! `--profile <path>` / `SWPF_PROFILE`) as the human-readable summary
//! table: per-phase count / total / self wall time, plus the counter
//! catalogue.
//!
//! The artifact stays a plain Chrome trace-event file — loadable in
//! `chrome://tracing` or Perfetto — and this binary reconstructs a
//! [`swpf_obs::Profile`] from it, so the table here and the timeline
//! there always describe the same capture.
//!
//! ```sh
//! SWPF_PROFILE=prof.json cargo run --release -p swpf-bench --bin fig4
//! cargo run --release -p swpf-bench --bin prof_report -- prof.json
//! ```

use std::collections::BTreeMap;
use swpf_bench::json::Json;
use swpf_obs::{Profile, ThreadTrack, TrackEvent};

/// `ts` is microseconds with sub-µs decimals; back to integer ns.
fn ts_ns(ev: &Json) -> u64 {
    let us = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
    (us * 1000.0).round().max(0.0) as u64
}

/// The (created-on-demand) track of thread `tid`.
fn track(tracks: &mut BTreeMap<u64, ThreadTrack>, tid: u64) -> &mut ThreadTrack {
    let t = tracks.entry(tid).or_default();
    t.tid = tid;
    t
}

/// Rebuild a [`Profile`] from parsed chrome trace-event JSON.
///
/// Histograms are not round-tripped (the chrome format has no
/// histogram event); everything else — thread tracks, span nesting,
/// counters — reconstructs exactly.
fn profile_from_chrome(doc: &Json) -> Result<Profile, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("no `traceEvents` array — not a chrome-trace profile")?;
    let mut tracks: BTreeMap<u64, ThreadTrack> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut captured_ns = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match ph {
            "M" => {
                if let Some(name) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    track(&mut tracks, tid).name = name.to_string();
                }
            }
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("B event without a name")?
                    .to_string();
                let ns = ts_ns(ev);
                captured_ns = captured_ns.max(ns);
                track(&mut tracks, tid)
                    .events
                    .push(TrackEvent::Begin { name, ns });
            }
            "E" => {
                let ns = ts_ns(ev);
                captured_ns = captured_ns.max(ns);
                track(&mut tracks, tid).events.push(TrackEvent::End { ns });
            }
            "C" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("C event without a name")?;
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_u64)
                    .ok_or("C event without an integer value")?;
                *counters.entry(name.to_string()).or_insert(0) += value;
            }
            other => return Err(format!("unsupported event phase `{other}`")),
        }
    }
    // Our exporter always writes balanced tracks, but a truncated or
    // hand-edited file must degrade to a partial table, not a panic:
    // orphan ends are dropped, unclosed begins close at the capture
    // timestamp — the same repair `swpf_obs::snapshot` applies.
    for t in tracks.values_mut() {
        let mut depth = 0usize;
        t.events.retain(|ev| match ev {
            TrackEvent::Begin { .. } => {
                depth += 1;
                true
            }
            TrackEvent::End { .. } => {
                if depth == 0 {
                    false
                } else {
                    depth -= 1;
                    true
                }
            }
        });
        for _ in 0..depth {
            t.events.push(TrackEvent::End { ns: captured_ns });
        }
    }
    Ok(Profile {
        captured_ns,
        threads: tracks.into_values().collect(),
        counters,
        histograms: BTreeMap::new(),
    })
}

fn main() -> std::process::ExitCode {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: prof_report <profile.json>...");
        return std::process::ExitCode::FAILURE;
    }
    let many = paths.len() > 1;
    paths.sort();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        let profile = match Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| profile_from_chrome(&doc))
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        if many {
            println!("==> {path} <==");
        }
        print!("{}", profile.summary().render());
        if many {
            println!();
        }
    }
    std::process::ExitCode::SUCCESS
}
