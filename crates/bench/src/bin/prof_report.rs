//! Render a `swpf-obs` chrome-trace profile artifact (written by
//! `--profile <path>` / `SWPF_PROFILE`) as the human-readable summary
//! table: per-phase count / total / self wall time, plus the counter
//! and histogram catalogues.
//!
//! The artifact stays a plain Chrome trace-event file — loadable in
//! `chrome://tracing` or Perfetto — and this binary reconstructs a
//! [`swpf_obs::Profile`] from it via [`swpf_bench::prof`] (including
//! histograms, reassembled from their `hist:` counter series), so the
//! table here and the timeline there always describe the same capture.
//!
//! ```sh
//! SWPF_PROFILE=prof.json cargo run --release -p swpf-bench --bin fig4
//! cargo run --release -p swpf-bench --bin prof_report -- prof.json
//! ```

use swpf_bench::json::Json;
use swpf_bench::prof::profile_from_chrome;

fn main() -> std::process::ExitCode {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: prof_report <profile.json>...");
        return std::process::ExitCode::FAILURE;
    }
    let many = paths.len() > 1;
    paths.sort();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        let profile = match Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| profile_from_chrome(&doc))
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        if many {
            println!("==> {path} <==");
        }
        print!("{}", profile.summary().render());
        if many {
            println!();
        }
    }
    std::process::ExitCode::SUCCESS
}
