//! Search-based auto-tuning of prefetch parameters: find the best
//! look-ahead per workload × in-order machine and quantify the paper's
//! "`c = 64` is near-optimal" claim against an exhaustive oracle.
//!
//! Each candidate configuration is compiled once and interpreted once,
//! with its event stream fanned out to every machine — search cost
//! scales with candidates, not candidates × machines. Three strategies
//! run per cell: the exhaustive oracle, golden-section bracketing over
//! the unimodal distance curve, and budgeted hill-climbing (which also
//! explores the stride-companion toggle).
//!
//! Prints the comparison tables, writes `RESULTS/tune.json`, and exits
//! non-zero on shape-check failure (what the CI `tune-smoke` job keys
//! on).
//!
//! ```sh
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin tune
//! cargo run --release -p swpf-bench --bin tune -- --out RESULTS
//! ```

use swpf_bench::harness::{cli_options, finish_profiling, init_profiling};
use swpf_bench::{experiments, scale_from_env, tune};

fn main() -> std::process::ExitCode {
    let scale = scale_from_env();
    let opts = cli_options();
    let profile = init_profiling(&opts);
    let exp = experiments::tune(scale);
    let (_, checks) = tune::run_and_report(&exp, &opts.out_dir);
    if let Some(path) = profile {
        finish_profiling(&path);
    }
    if checks.iter().all(|c| c.passed) {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
