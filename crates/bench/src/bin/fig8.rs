//! Fig. 8 — percentage increase in dynamic instruction count from adding
//! software prefetches (Haswell, best scheme per benchmark).
//!
//! The paper reports 40–80% more instructions for most benchmarks —
//! the cost side of the trade the rest of the evaluation quantifies.

use swpf_bench::{auto_module, scale_from_env, simulate};
use swpf_core::PassConfig;
use swpf_sim::MachineConfig;

fn main() {
    let scale = scale_from_env();
    let machine = MachineConfig::haswell();
    let config = PassConfig::default();
    println!("=== Fig. 8 — Haswell: % extra dynamic instructions ===");
    println!("{:<10} {:>8} {:>8}", "bench", "auto", "manual");
    for w in swpf_workloads::suite(scale) {
        let base = simulate(&machine, w.as_ref(), &w.build_baseline());
        let auto = simulate(&machine, w.as_ref(), &auto_module(w.as_ref(), &config));
        let manual = simulate(&machine, w.as_ref(), &w.build_manual(config.look_ahead));
        println!(
            "{:<10} {:>7.1}% {:>7.1}%",
            w.name(),
            100.0 * auto.extra_instructions_vs(&base),
            100.0 * manual.extra_instructions_vs(&base),
        );
    }
}
