//! Fig. 8 — percentage increase in dynamic instruction count from adding
//! software prefetches (Haswell, best scheme per benchmark).
//!
//! The paper reports 40–80% more instructions for most benchmarks —
//! the cost side of the trade the rest of the evaluation quantifies.
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the table and writes
//! `RESULTS/fig8.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("fig8")
}
