//! Bench-regression gate for CI's bench-smoke job.
//!
//! Reads the line-oriented records the `criterion` shim appends under
//! `CRITERION_JSON` and compares relative speedups against the
//! references recorded at the repository root, failing (exit 1) on a
//! regression beyond the threshold:
//!
//! ```sh
//! CRITERION_JSON=bench.jsonl cargo bench -p swpf-bench --bench sim_throughput
//! cargo run --release -p swpf-bench --bin bench_gate -- \
//!     bench.jsonl BENCH_interp.json [BENCH_trace.json] [BENCH_pass.json]
//! ```
//!
//! Absolute ns/iter numbers are not comparable across hosts (CI
//! runners, developer laptops, and the container that recorded the
//! references all differ), so the gate watches *relative* speedups —
//! both sides measured in the same process seconds apart:
//!
//! * **engines** (`BENCH_interp.json`): the pre-decoded engine over the
//!   classic tree-walker — what the engine refactor bought;
//! * **bytecode** (`BENCH_interp.json`): the fixed-width bytecode tier
//!   over the exec-image engine — what the threaded-code lowering and
//!   the superinstruction catalogue bought;
//! * **profiling** (no reference file): the bytecode-tier cell with
//!   `swpf-obs` instrumentation compiled in but disabled against the
//!   plain `bytecode/IS` record from the same process — the
//!   disabled-path cost contract (<2%, plus a noise allowance);
//! * **trace** (`BENCH_trace.json`, optional third argument): trace
//!   replay over direct simulation of the identical cell — what the
//!   record/replay cache banks on every repeated machine cell; plus the
//!   block-at-a-time streaming replay of the same cell from its
//!   persisted file (the bounded-memory warm path must stay within the
//!   allowance of direct simulation too);
//! * **compression** (`BENCH_trace.json`): the v2 block-compressed
//!   envelope's size advantage over the uncompressed v1 layout,
//!   measured deterministically in-process on a freshly recorded IS
//!   trace — byte counts, not wall-clock, so this leg is host-exact;
//! * **pipeline** (`BENCH_pass.json`, optional fourth argument): the
//!   full `swpf,gvn,sccp,licm,cse,dce` pipeline's compile-phase cost on
//!   the tune evaluator over the local-only `swpf,cse,dce` reference
//!   pipeline — both sides measured in-process, A/B-interleaved within
//!   each repetition, gated at a tighter 1.25x allowance.
//!
//! The 30% allowance keeps shared-runner noise from flaking the job;
//! the gate exists to catch cliffs, not single-digit drift.

use swpf_bench::json::Json;

/// Allowed loss of a reference relative speedup before failing.
const MAX_REGRESSION: f64 = 1.30;

/// Allowed cost of disabled profiling on the bytecode sim hot path.
/// The `swpf-obs` contract is <2% when disabled; the rest of the
/// allowance absorbs shared-runner noise between the two same-process
/// measurements.
const MAX_PROFILING_OVERHEAD: f64 = 1.10;

/// Allowed drift of the full pipeline's compile-phase cost relative to
/// the `swpf,cse,dce` reference pipeline before failing. Tighter than
/// [`MAX_REGRESSION`] because both sides are measured in-process,
/// A/B-interleaved within each repetition, so host noise cancels.
const MAX_PIPELINE_REGRESSION: f64 = 1.25;

fn ns_from_records(text: &str, group: &str, bench: &str) -> Option<f64> {
    // Last record wins: CRITERION_JSON is append-only across runs.
    let mut best = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let rec = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_gate: skipping malformed record: {e}");
                continue;
            }
        };
        if rec.get("group").and_then(Json::as_str) == Some(group)
            && rec.get("bench").and_then(Json::as_str) == Some(bench)
        {
            best = rec.get("ns_per_iter").and_then(Json::as_f64);
        }
    }
    best
}

fn reference_f64(reference: &Json, path: &str, group_key: &str, key: &str) -> Option<f64> {
    reference
        .get(group_key)
        .and_then(|g| g.get(key))
        .and_then(Json::as_f64)
        .or_else(|| {
            eprintln!("bench_gate: {path} has no {group_key}.{key}");
            None
        })
}

fn load_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// Gate one relative speedup: `slow_bench / fast_bench`, measured vs.
/// reference. Returns false on missing records or a regression beyond
/// the allowance.
#[allow(clippy::too_many_arguments)]
fn gate_ratio(
    records: &str,
    group: &str,
    fast_bench: &str,
    slow_bench: &str,
    records_path: &str,
    reference: &Json,
    reference_path: &str,
    group_key: &str,
    fast_key: &str,
    slow_key: &str,
) -> bool {
    let (Some(fast_ns), Some(slow_ns)) = (
        ns_from_records(records, group, fast_bench),
        ns_from_records(records, group, slow_bench),
    ) else {
        eprintln!(
            "bench_gate: missing `{group}/{fast_bench}` or `{group}/{slow_bench}` \
             record in {records_path}"
        );
        return false;
    };
    let (Some(ref_fast), Some(ref_slow)) = (
        reference_f64(reference, reference_path, group_key, fast_key),
        reference_f64(reference, reference_path, group_key, slow_key),
    ) else {
        return false;
    };

    let measured_speedup = slow_ns / fast_ns;
    let reference_speedup = ref_slow / ref_fast;
    let floor = reference_speedup / MAX_REGRESSION;
    println!(
        "bench_gate: {group_key} speedup ({slow_bench} over {fast_bench}) — measured \
         {measured_speedup:.3}x ({slow_ns:.0} / {fast_ns:.0} ns), reference \
         {reference_speedup:.3}x, floor {floor:.3}x (allowance {MAX_REGRESSION}x)"
    );
    if measured_speedup >= floor {
        true
    } else {
        eprintln!(
            "bench_gate: `{fast_bench}`'s advantage over `{slow_bench}` regressed more \
             than {MAX_REGRESSION}x vs the {reference_path} reference"
        );
        false
    }
}

/// Gate the v2 envelope's compression ratio on a freshly recorded IS
/// trace: record in-process (byte-deterministic — no wall-clock in this
/// leg), encode both layouts, and require the measured v1/v2 ratio to
/// stay within the allowance of the reference ratio.
fn gate_compression(reference: &Json, reference_path: &str) -> bool {
    use std::sync::Arc;
    use swpf_ir::exec::ExecImage;
    use swpf_ir::interp::Interp;
    use swpf_workloads::{Scale, Workload};

    let is = swpf_workloads::is::IntegerSort::new(Scale::Test);
    let module = is.build_baseline();
    let func = module.find_function("kernel").expect("kernel exists");
    let mut interp = Interp::new();
    let args = is.setup(&mut interp);
    let mut rec = swpf_trace::TraceRecorder::new(1, 0);
    interp
        .run_with_image(
            Arc::new(ExecImage::build(&module)),
            func,
            &args,
            rec.stream(0),
        )
        .expect("IS kernel runs");
    let trace = rec.finish();
    let v1 = trace.to_bytes_v1().len() as f64;
    let v2 = trace.to_bytes().len() as f64;

    let (Some(ref_v1), Some(ref_v2)) = (
        reference_f64(reference, reference_path, "compression", "v1_bytes"),
        reference_f64(reference, reference_path, "compression", "v2_bytes"),
    ) else {
        return false;
    };
    let measured = v1 / v2;
    let reference_ratio = ref_v1 / ref_v2;
    let floor = reference_ratio / MAX_REGRESSION;
    println!(
        "bench_gate: compression ratio (v1 over v2 bytes, IS test trace) — measured \
         {measured:.3}x ({v1:.0} / {v2:.0} B), reference {reference_ratio:.3}x, \
         floor {floor:.3}x (allowance {MAX_REGRESSION}x)"
    );
    if measured >= floor {
        true
    } else {
        eprintln!(
            "bench_gate: the v2 envelope's compression ratio regressed more than \
             {MAX_REGRESSION}x vs the {reference_path} reference"
        );
        false
    }
}

/// Gate the disabled-profiling overhead: `profiling/disabled/IS` runs
/// the identical bytecode-tier cell as `bytecode/bytecode/IS` in the
/// same process, with instrumentation compiled in but switched off.
/// No reference file — both sides are fresh records, so the ratio is
/// directly comparable and must stay under the allowance.
fn gate_profiling(records: &str, records_path: &str) -> bool {
    let (Some(disabled_ns), Some(baseline_ns)) = (
        ns_from_records(records, "profiling", "disabled/IS"),
        ns_from_records(records, "bytecode", "bytecode/IS"),
    ) else {
        eprintln!(
            "bench_gate: missing `profiling/disabled/IS` or `bytecode/bytecode/IS` \
             record in {records_path}"
        );
        return false;
    };
    let overhead = disabled_ns / baseline_ns;
    println!(
        "bench_gate: disabled-profiling overhead (disabled/IS over bytecode/IS) — \
         {overhead:.3}x ({disabled_ns:.0} / {baseline_ns:.0} ns), \
         allowance {MAX_PROFILING_OVERHEAD}x"
    );
    if overhead <= MAX_PROFILING_OVERHEAD {
        true
    } else {
        eprintln!(
            "bench_gate: disabled profiling costs more than {MAX_PROFILING_OVERHEAD}x \
             on the bytecode sim hot path — the swpf-obs disabled-path contract is broken"
        );
        false
    }
}

/// Per-PC prefetch profiling must be free when disabled: the
/// `perf/disabled/IS` timed simulation (the production configuration —
/// one `Option` check per memory access, nothing else) is compared
/// against the bytecode-tier direct-simulation reference
/// (`trace/direct/IS`) from the same process, same allowance as
/// `gate_profiling`. The enabled path is opt-in and deliberately
/// ungated.
fn gate_perf(records: &str, records_path: &str) -> bool {
    let (Some(disabled_ns), Some(baseline_ns)) = (
        ns_from_records(records, "perf", "disabled/IS"),
        ns_from_records(records, "trace", "direct/IS"),
    ) else {
        eprintln!(
            "bench_gate: missing `perf/disabled/IS` or `trace/direct/IS` \
             record in {records_path}"
        );
        return false;
    };
    let overhead = disabled_ns / baseline_ns;
    println!(
        "bench_gate: disabled-perf overhead (perf disabled/IS over trace direct/IS) — \
         {overhead:.3}x ({disabled_ns:.0} / {baseline_ns:.0} ns), \
         allowance {MAX_PROFILING_OVERHEAD}x"
    );
    if overhead <= MAX_PROFILING_OVERHEAD {
        true
    } else {
        eprintln!(
            "bench_gate: disabled per-PC profiling costs more than {MAX_PROFILING_OVERHEAD}x \
             on the timed simulation hot path — the swpf_sim::perf purity contract is broken"
        );
        false
    }
}

/// Gate the full pipeline's compile-phase cost: compile every point of
/// the default search space through the full global pipeline
/// (`swpf,gvn,sccp,licm,cse,dce`) and through the PR 5 local-only
/// pipeline (`swpf,cse,dce`) on the tune evaluator — A/B-interleaved
/// within each repetition, so wall-clock drift cancels — and require
/// the measured full/local ratio to stay within the allowance of the
/// `BENCH_pass.json` reference. Catches a global pass turning
/// accidentally super-linear, which per-run absolutes cannot.
fn gate_pipeline(reference: &Json, reference_path: &str) -> bool {
    use std::time::Instant;
    use swpf_core::PassConfig;
    use swpf_tune::{Evaluator, SearchSpace};
    use swpf_workloads::{Scale, WorkloadId};

    const FULL: &str = "swpf,gvn,sccp,licm,cse,dce";
    const LOCAL: &str = "swpf,cse,dce";
    let machines = [swpf_sim::MachineConfig::a53()];
    let space = SearchSpace::paper_default();
    let reps = 10;

    let mut full_s = 0.0;
    let mut local_s = 0.0;
    for _ in 0..reps {
        for &id in &WorkloadId::FIG6 {
            let w = id.instantiate(Scale::Test);
            for (spec, acc) in [(FULL, &mut full_s), (LOCAL, &mut local_s)] {
                let mut ev = Evaluator::new(w.as_ref(), &machines);
                let t = Instant::now();
                for i in 0..space.len() {
                    let config = PassConfig {
                        pipeline: spec.parse().expect("valid pipeline spec"),
                        ..space.at(i)
                    };
                    let _ = ev.compile_candidate(&config);
                }
                *acc += t.elapsed().as_secs_f64();
            }
        }
    }

    let Some(ref_ratio) = reference_f64(
        reference,
        reference_path,
        "pipeline_gate",
        "full_over_cse_dce",
    ) else {
        return false;
    };
    let measured = full_s / local_s;
    let ceiling = ref_ratio * MAX_PIPELINE_REGRESSION;
    println!(
        "bench_gate: pipeline compile cost (`{FULL}` over `{LOCAL}`, {reps} interleaved \
         reps × {} points) — measured {measured:.3}x ({:.1} / {:.1} ms), reference \
         {ref_ratio:.3}x, ceiling {ceiling:.3}x (allowance {MAX_PIPELINE_REGRESSION}x)",
        space.len(),
        full_s * 1e3,
        local_s * 1e3,
    );
    if measured <= ceiling {
        true
    } else {
        eprintln!(
            "bench_gate: the full pipeline's compile cost over `{LOCAL}` regressed more \
             than {MAX_PIPELINE_REGRESSION}x vs the {reference_path} reference"
        );
        false
    }
}

fn main() -> std::process::ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(records_path), Some(interp_ref_path)) = (args.next(), args.next()) else {
        eprintln!(
            "usage: bench_gate <criterion-json-lines> <BENCH_interp.json> \
             [BENCH_trace.json] [BENCH_pass.json]"
        );
        return std::process::ExitCode::FAILURE;
    };
    let trace_ref_path = args.next();
    let pass_ref_path = args.next();

    let records = std::fs::read_to_string(&records_path)
        .unwrap_or_else(|e| panic!("cannot read {records_path}: {e}"));

    let interp_ref = load_json(&interp_ref_path);
    let mut ok = gate_ratio(
        &records,
        "engines",
        "exec_image/IS",
        "classic/IS",
        &records_path,
        &interp_ref,
        &interp_ref_path,
        "engines_group",
        "after_exec_image_ns_per_iter",
        "before_classic_ns_per_iter",
    );
    ok &= gate_ratio(
        &records,
        "bytecode",
        "bytecode/IS",
        "engine/IS",
        &records_path,
        &interp_ref,
        &interp_ref_path,
        "bytecode_group",
        "bytecode_ns_per_iter",
        "engine_ns_per_iter",
    );
    ok &= gate_profiling(&records, &records_path);
    ok &= gate_perf(&records, &records_path);
    if let Some(path) = trace_ref_path {
        let trace_ref = load_json(&path);
        ok &= gate_ratio(
            &records,
            "trace",
            "replay/IS",
            "direct/IS",
            &records_path,
            &trace_ref,
            &path,
            "trace_group",
            "replay_ns_per_iter",
            "direct_ns_per_iter",
        );
        ok &= gate_ratio(
            &records,
            "trace",
            "stream_replay/IS",
            "direct/IS",
            &records_path,
            &trace_ref,
            &path,
            "trace_group",
            "stream_replay_ns_per_iter",
            "direct_ns_per_iter",
        );
        ok &= gate_compression(&trace_ref, &path);
    }
    if let Some(path) = pass_ref_path {
        let pass_ref = load_json(&path);
        ok &= gate_pipeline(&pass_ref, &path);
    }
    if ok {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
