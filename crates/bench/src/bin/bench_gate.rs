//! Bench-regression gate for CI's bench-smoke job.
//!
//! Reads the line-oriented records the `criterion` shim appends under
//! `CRITERION_JSON` and compares engine throughput against the
//! reference recorded in `BENCH_interp.json`, failing (exit 1) on a
//! regression beyond the threshold:
//!
//! ```sh
//! CRITERION_JSON=bench.jsonl cargo bench -p swpf-bench --bench sim_throughput
//! cargo run --release -p swpf-bench --bin bench_gate -- bench.jsonl BENCH_interp.json
//! ```
//!
//! Absolute ns/iter numbers are not comparable across hosts (CI
//! runners, developer laptops, and the container that recorded the
//! reference all differ), so the gate watches the *relative* speedup of
//! the pre-decoded engine over the classic tree-walker — both sides
//! measured in the same process seconds apart. That ratio is what the
//! engine refactor bought and what a code change can silently lose. The
//! 30% allowance keeps shared-runner noise from flaking the job; the
//! gate exists to catch cliffs, not single-digit drift.

use swpf_bench::json::Json;

/// Allowed loss of the engine's relative speedup before failing.
const MAX_REGRESSION: f64 = 1.30;

/// The two benchmarks whose ratio the gate watches.
const GROUP: &str = "engines";
const EXEC_BENCH: &str = "exec_image/IS";
const CLASSIC_BENCH: &str = "classic/IS";

fn ns_from_records(text: &str, bench: &str) -> Option<f64> {
    // Last record wins: CRITERION_JSON is append-only across runs.
    let mut best = None;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let rec = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_gate: skipping malformed record: {e}");
                continue;
            }
        };
        if rec.get("group").and_then(Json::as_str) == Some(GROUP)
            && rec.get("bench").and_then(Json::as_str) == Some(bench)
        {
            best = rec.get("ns_per_iter").and_then(Json::as_f64);
        }
    }
    best
}

fn reference_f64(reference: &Json, path: &str, key: &str) -> Option<f64> {
    reference
        .get("engines_group")
        .and_then(|g| g.get(key))
        .and_then(Json::as_f64)
        .or_else(|| {
            eprintln!("bench_gate: {path} has no engines_group.{key}");
            None
        })
}

fn main() -> std::process::ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(records_path), Some(reference_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <criterion-json-lines> <BENCH_interp.json>");
        return std::process::ExitCode::FAILURE;
    };

    let records = std::fs::read_to_string(&records_path)
        .unwrap_or_else(|e| panic!("cannot read {records_path}: {e}"));
    let (Some(exec_ns), Some(classic_ns)) = (
        ns_from_records(&records, EXEC_BENCH),
        ns_from_records(&records, CLASSIC_BENCH),
    ) else {
        eprintln!(
            "bench_gate: missing `{GROUP}/{EXEC_BENCH}` or `{GROUP}/{CLASSIC_BENCH}` \
             record in {records_path}"
        );
        return std::process::ExitCode::FAILURE;
    };

    let reference = std::fs::read_to_string(&reference_path)
        .unwrap_or_else(|e| panic!("cannot read {reference_path}: {e}"));
    let reference =
        Json::parse(&reference).unwrap_or_else(|e| panic!("cannot parse {reference_path}: {e}"));
    let (Some(ref_exec), Some(ref_classic)) = (
        reference_f64(&reference, &reference_path, "after_exec_image_ns_per_iter"),
        reference_f64(&reference, &reference_path, "before_classic_ns_per_iter"),
    ) else {
        return std::process::ExitCode::FAILURE;
    };

    let measured_speedup = classic_ns / exec_ns;
    let reference_speedup = ref_classic / ref_exec;
    let floor = reference_speedup / MAX_REGRESSION;
    println!(
        "bench_gate: engine speedup over classic — measured {measured_speedup:.3}x \
         ({classic_ns:.0} / {exec_ns:.0} ns), reference {reference_speedup:.3}x, \
         floor {floor:.3}x (allowance {MAX_REGRESSION}x)"
    );
    if measured_speedup >= floor {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: the pre-decoded engine's advantage regressed more than \
             {MAX_REGRESSION}x vs the recorded reference"
        );
        std::process::ExitCode::FAILURE
    }
}
