//! `perf annotate` for the simulator: run one workload × variant ×
//! machine cell with per-PC prefetch-efficacy profiling enabled and
//! print the kernel IR with a per-line gutter — attributed demand-load
//! stall cycles against load lines (`>` marks lines carrying ≥ 10 % of
//! the total), outcome breakdowns under prefetch lines.
//!
//! The join key is the event PC (`pc = fid << 32 | value_id`), which
//! [`swpf_ir::printer::print_function_lines`] reports per printed line —
//! so the annotation is exact, not heuristic.
//!
//! Usage: `perf_annotate [WORKLOAD [VARIANT [MACHINE]]]`
//! * `WORKLOAD`: a suite workload name (`IS`, `CG`, `RA`, ...; default `IS`)
//! * `VARIANT`: `baseline` | `auto` | `manual` | `manual_c<N>` (default `auto`)
//! * `MACHINE`: `haswell` | `xeon_phi` | `a57` | `a53` (default `haswell`)
//!
//! The workload scale comes from `SWPF_SCALE`, as everywhere else.

#![allow(clippy::cast_precision_loss)]

use std::collections::HashMap;
use std::sync::Arc;
use swpf_bench::{auto_module, scale_from_env};
use swpf_core::PassConfig;
use swpf_ir::exec::ExecImage;
use swpf_ir::printer::print_function_lines;
use swpf_sim::{MachineConfig, SiteProfile, StallStat};

/// Percentage of `part` in `total` (0 when `total` is 0).
fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// One prefetch site's outcome breakdown, rendered for the gutter.
fn site_annotation(s: &SiteProfile) -> String {
    format!(
        "issued {}: {:.1}% timely, {:.1}% late, {:.1}% early-evicted, \
         {:.1}% redundant, {:.1}% dropped, {:.1}% unused; mean lead {:.0} cyc",
        s.issued,
        pct(s.timely, s.issued),
        pct(s.late, s.issued),
        pct(s.early_evicted, s.issued),
        pct(s.redundant(), s.issued),
        pct(s.dropped, s.issued),
        pct(s.unused_at_end, s.issued),
        s.lead_cycles.mean(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wname = args.first().map_or("IS", String::as_str);
    let vname = args.get(1).map_or("auto", String::as_str);
    let mname = args.get(2).map_or("haswell", String::as_str);

    let scale = scale_from_env();
    let suite = swpf_workloads::suite(scale);
    let w = suite
        .iter()
        .find(|w| w.name() == wname)
        .unwrap_or_else(|| {
            let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
            panic!(
                "unknown workload `{wname}` (expected one of {})",
                names.join(", ")
            )
        })
        .as_ref();
    let machine = MachineConfig::all_systems()
        .into_iter()
        .find(|m| m.name == mname)
        .unwrap_or_else(|| {
            panic!("unknown machine `{mname}` (expected haswell | xeon_phi | a57 | a53)")
        });
    let config = PassConfig::default();
    let module = match vname {
        "baseline" => w.build_baseline(),
        "auto" => auto_module(w, &config),
        "manual" => w.build_manual(config.look_ahead),
        v => match v
            .strip_prefix("manual_c")
            .and_then(|n| n.parse::<i64>().ok())
        {
            Some(c) => w.build_manual(c),
            None => {
                panic!("unknown variant `{v}` (expected baseline | auto | manual | manual_c<N>)")
            }
        },
    };

    swpf_sim::perf::set_enabled(true);
    let func = module
        .find_function("kernel")
        .expect("workload kernels are named `kernel`");
    let image = Arc::new(ExecImage::build(&module));
    let run = swpf_sim::run_on_machine_image_perf(&machine, &image, func, |i| w.setup(i));
    let profile = run.perf.as_ref().expect("profiling was just enabled");
    let stats = &run.stats;

    let sites: HashMap<u64, &SiteProfile> = profile.sites.iter().map(|(pc, s)| (*pc, s)).collect();
    let stalls: HashMap<u64, &StallStat> = profile.stalls.iter().map(|(pc, s)| (*pc, s)).collect();
    let total_stall = profile.total_stall_cycles();
    let totals = profile.totals();

    println!(
        "perf annotate — {wname}/{vname} on {mname} [scale={}]",
        scale.label()
    );
    println!(
        "cycles {}  insts {}  ipc {:.2}",
        stats.cycles,
        stats.insts.total,
        stats.ipc()
    );
    // On out-of-order cores the attribution is overlap-inclusive (each
    // long miss charges its own exposed latency), so the ratio can
    // exceed 1 — it ranks lines, it does not partition the cycle count.
    println!(
        "attributed demand-load stall cycles: {total_stall} ({:.2}x cycles, overlap-inclusive) across {} load PCs",
        total_stall as f64 / stats.cycles.max(1) as f64,
        profile.stalls.len(),
    );
    println!(
        "prefetch outcomes across {} sites — {}",
        profile.sites.len(),
        site_annotation(&totals)
    );

    for fid in module.func_ids() {
        let (text, lines) = print_function_lines(&module, module.function(fid));
        println!();
        for (line, v) in text.lines().zip(&lines) {
            let pc = v.map(|v| (u64::from(fid.0) << 32) | u64::from(v.0));
            let gutter = match pc.and_then(|pc| stalls.get(&pc)) {
                Some(st) => {
                    let share = pct(st.stall_cycles(), total_stall);
                    let mark = if share >= 10.0 { '>' } else { ' ' };
                    format!("{mark}{share:>5.1}%")
                }
                None => " ".repeat(7),
            };
            println!("{gutter} | {line}");
            if let Some(site) = pc.and_then(|pc| sites.get(&pc)) {
                println!("{:7} |     ^ {}", "", site_annotation(site));
            }
        }
    }
}
