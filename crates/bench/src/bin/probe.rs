//! Developer tool: full stats for one workload / machine / look-ahead.
//! Usage: `probe <bench> <machine> <c>`

use swpf_bench::{scale_from_env, simulate};
use swpf_sim::MachineConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map_or("IS", |s| s.as_str());
    let machine_name = args.get(2).map_or("a53", |s| s.as_str());
    let c: i64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(64);
    let machine = MachineConfig::all_systems()
        .into_iter()
        .find(|m| m.name == machine_name)
        .expect("unknown machine");
    let suite = swpf_workloads::suite(scale_from_env());
    let w = suite
        .iter()
        .find(|w| w.name() == bench)
        .expect("unknown bench");
    let base = simulate(&machine, w.as_ref(), &w.build_baseline());
    let man = simulate(&machine, w.as_ref(), &w.build_manual(c));
    println!("{bench} on {machine_name}, c={c}:");
    println!("  base: {base:?}");
    println!("  man : {man:?}");
    println!("  speedup {:.2}", man.speedup_vs(&base));
}
