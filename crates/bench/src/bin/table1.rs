//! Table 1 — the four evaluated system configurations (scaled models).

use swpf_sim::{CoreKind, MachineConfig};

fn main() {
    println!("=== Table 1 — simulated system models (capacities scaled 1/4) ===\n");
    println!(
        "{:<10} {:<12} {:>5} {:>5} {:>6} {:>8} {:>8} {:>8} {:>10} {:>8} {:>9}",
        "system", "core", "width", "rob", "mshrs", "L1", "L2", "L3", "TLB", "walkers", "DRAM"
    );
    for m in MachineConfig::all_systems() {
        let core = match m.core {
            CoreKind::InOrder => "in-order",
            CoreKind::OutOfOrder => "out-of-order",
        };
        let l3 =
            m.l3.map_or("-".to_string(), |c| format!("{}K", c.capacity >> 10));
        println!(
            "{:<10} {:<12} {:>5} {:>5} {:>6} {:>7}K {:>7}K {:>8} {:>6}e/{}b {:>8} {:>4}c/{}B",
            m.name,
            core,
            m.width,
            m.rob,
            m.mshrs,
            m.l1.capacity >> 10,
            m.l2.capacity >> 10,
            l3,
            m.tlb.entries,
            m.tlb.page_bits,
            m.tlb.walkers,
            m.dram.latency,
            m.dram.bytes_per_cycle,
        );
    }
    println!("\nPaper reference (Table 1):");
    println!("  Haswell  — i5-4570, 3.2GHz, 32K L1 / 256K L2 / 8M L3, DDR3");
    println!("  Xeon Phi — 3120P, 1.1GHz, 32K L1 / 512K L2, GDDR5");
    println!("  A57      — TX1, 1.9GHz, 32K L1 / 2M L2, LPDDR4");
    println!("  A53      — Odroid C2, 2.0GHz, 32K L1 / 1M L2, DDR3");
}
