//! Table 1 — the four evaluated system configurations (scaled models).
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the table and writes
//! `RESULTS/table1.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("table1")
}
