//! Run the experiment suite — the figure/table reproductions (plus the
//! pass-pipeline ablation) through the shared harness — and summarise.
//!
//! Every experiment writes its `RESULTS/<name>.json` artifact; a
//! `RESULTS/suite.json` summary records per-experiment wall time and
//! check counts. Exits non-zero if any shape check fails, which is what
//! the CI `experiments` job keys on.
//!
//! `--only <name>` / `--skip <name>` filter the catalogue (repeatable,
//! or comma-separated), so smoke jobs can run one experiment instead of
//! re-running everything: CI's `ablation-smoke` job is
//! `--only ablation`. The searched experiments — `tune` and
//! `pipeline_search` — are not in the default set (each has its own
//! binary), but `--only tune` / `--only pipeline_search` run them here.
//! `--list` prints the experiment catalogue, the filter syntax, the
//! machine models, and the workloads, without running anything.
//!
//! `--profile <path>` (or `SWPF_PROFILE=<path>`) composes with
//! `--only`/`--skip`: the whole selected run is profiled through
//! `swpf-obs` into one chrome-trace JSON, and every experiment's
//! artifact gains its own windowed `profile` section.
//!
//! ```sh
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin all
//! cargo run --release -p swpf-bench --bin all -- --threads 1
//! cargo run --release -p swpf-bench --bin all -- --only ablation
//! cargo run --release -p swpf-bench --bin all -- --skip fig4 --skip fig9
//! cargo run --release -p swpf-bench --bin all -- --only fig4 --profile prof.json
//! cargo run --release -p swpf-bench --bin all -- --list
//! ```

use std::time::Instant;
use swpf_bench::harness::{cli_options_from, finish_profiling, init_profiling, run_and_report};
use swpf_bench::json::Json;
use swpf_bench::{experiments, scale_from_env};

/// A name list from `--only`/`--skip` values, validated against the
/// experiment catalogue.
fn push_names(out: &mut Vec<String>, flag: &str, value: Option<String>) {
    let value = value.unwrap_or_else(|| panic!("{flag} needs an experiment name"));
    for name in value.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        assert!(
            experiments::EXPERIMENTS.contains(&name),
            "{flag}: unknown experiment `{name}` (see --list for the catalogue)"
        );
        out.push(name.to_string());
    }
}

fn main() -> std::process::ExitCode {
    // Strip the driver-specific arguments; everything else goes to the
    // shared harness CLI parser.
    let mut only: Vec<String> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut list = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => push_names(&mut only, "--only", args.next()),
            "--skip" => push_names(&mut skip, "--skip", args.next()),
            "--list" => list = true,
            _ => rest.push(arg),
        }
    }
    if list {
        experiments::print_catalog();
        return std::process::ExitCode::SUCCESS;
    }

    // Selection: `--only` picks from the full catalogue (in catalogue
    // order, so `--only tune` works); otherwise the grid experiments,
    // minus `--skip`.
    let selected: Vec<&str> = if only.is_empty() {
        experiments::ALL_NAMES
            .iter()
            .copied()
            .filter(|n| !skip.iter().any(|s| s == n))
            .collect()
    } else {
        experiments::EXPERIMENTS
            .iter()
            .copied()
            .filter(|n| only.iter().any(|o| o == n))
            .filter(|n| !skip.iter().any(|s| s == n))
            .collect()
    };
    assert!(!selected.is_empty(), "the filters selected no experiments");

    let scale = scale_from_env();
    let opts = cli_options_from(rest.into_iter());
    let profile = init_profiling(&opts);
    let t0 = Instant::now();
    let mut summaries = Vec::new();
    let mut failed = 0usize;

    for name in &selected {
        let (result, checks) = match experiments::by_name(name, scale) {
            Some(exp) => run_and_report(&exp, &opts.run, &opts.out_dir),
            None if *name == "tune" => {
                swpf_bench::tune::run_and_report(&experiments::tune(scale), &opts.out_dir)
            }
            None => {
                assert_eq!(
                    *name, "pipeline_search",
                    "non-grid experiments: tune and pipeline_search only"
                );
                swpf_bench::pipeline_search::run_and_report(
                    &experiments::pipeline_search(scale),
                    &opts.out_dir,
                )
            }
        };
        let check_failures = checks.iter().filter(|c| !c.passed).count();
        failed += check_failures;
        summaries.push(Json::obj(vec![
            ("experiment", Json::Str((*name).to_string())),
            ("jobs", Json::U64(result.cells.len() as u64)),
            ("threads", Json::U64(result.threads as u64)),
            ("wall_seconds", Json::F64(result.wall_s)),
            ("trace_hits", Json::U64(result.trace_hits() as u64)),
            ("trace_misses", Json::U64(result.trace_misses() as u64)),
            ("checks", Json::U64(checks.len() as u64)),
            ("check_failures", Json::U64(check_failures as u64)),
        ]));
    }

    let suite = Json::obj(vec![
        ("schema_version", Json::U64(1)),
        ("scale", Json::Str(scale.label().to_string())),
        ("wall_seconds", Json::F64(t0.elapsed().as_secs_f64())),
        ("experiments", Json::Arr(summaries)),
    ]);
    let path = opts.out_dir.join("suite.json");
    std::fs::write(&path, suite.to_pretty_string())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    if let Some(prof_path) = profile {
        finish_profiling(&prof_path);
    }

    println!(
        "\nsuite: {} experiment(s) in {:.2}s, {} check failure(s) — {}",
        selected.len(),
        t0.elapsed().as_secs_f64(),
        failed,
        path.display(),
    );
    if failed == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
