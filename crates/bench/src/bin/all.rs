//! Run the full experiment suite — all nine figure/table reproductions
//! through the shared harness — and summarise.
//!
//! Every experiment writes its `RESULTS/<name>.json` artifact; a
//! `RESULTS/suite.json` summary records per-experiment wall time and
//! check counts. Exits non-zero if any shape check fails, which is what
//! the CI `experiments` job keys on.
//!
//! `--list` prints the experiment catalogue (including the searched
//! `tune` experiment, which `--bin tune` runs), the machine models, and
//! the workloads, without running anything.
//!
//! ```sh
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin all
//! cargo run --release -p swpf-bench --bin all -- --threads 1
//! cargo run --release -p swpf-bench --bin all -- --list
//! ```

use std::time::Instant;
use swpf_bench::harness::{cli_options, run_and_report};
use swpf_bench::json::Json;
use swpf_bench::{experiments, scale_from_env};

fn main() -> std::process::ExitCode {
    if std::env::args().skip(1).any(|a| a == "--list") {
        experiments::print_catalog();
        return std::process::ExitCode::SUCCESS;
    }
    let scale = scale_from_env();
    let opts = cli_options();
    let t0 = Instant::now();
    let mut summaries = Vec::new();
    let mut failed = 0usize;

    for name in experiments::ALL_NAMES {
        let exp = experiments::by_name(name, scale).expect("known name");
        let (result, checks) = run_and_report(&exp, &opts.run, &opts.out_dir);
        let check_failures = checks.iter().filter(|c| !c.passed).count();
        failed += check_failures;
        summaries.push(Json::obj(vec![
            ("experiment", Json::Str(name.to_string())),
            ("jobs", Json::U64(result.cells.len() as u64)),
            ("threads", Json::U64(result.threads as u64)),
            ("wall_seconds", Json::F64(result.wall_s)),
            ("trace_hits", Json::U64(result.trace_hits() as u64)),
            ("trace_misses", Json::U64(result.trace_misses() as u64)),
            ("checks", Json::U64(checks.len() as u64)),
            ("check_failures", Json::U64(check_failures as u64)),
        ]));
    }

    let suite = Json::obj(vec![
        ("schema_version", Json::U64(1)),
        ("scale", Json::Str(scale.label().to_string())),
        ("wall_seconds", Json::F64(t0.elapsed().as_secs_f64())),
        ("experiments", Json::Arr(summaries)),
    ]);
    let path = opts.out_dir.join("suite.json");
    std::fs::write(&path, suite.to_pretty_string())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));

    println!(
        "\nsuite: {} experiments in {:.2}s, {} check failure(s) — {}",
        experiments::ALL_NAMES.len(),
        t0.elapsed().as_secs_f64(),
        failed,
        path.display(),
    );
    if failed == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
