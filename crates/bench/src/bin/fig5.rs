//! Fig. 5 — the value of the staggered stride companion prefetch.
//!
//! Even with a hardware stride prefetcher, prefetching only the indirect
//! access leaves a real look-ahead load (`b[i+off]`) on the critical
//! path; adding the staggered stride prefetch for the look-ahead array
//! itself wins across the board (paper §6.1, Haswell).
//!
//! Spec + derivation live in `swpf_bench::experiments`; this binary is
//! a harness wrapper that prints the table and writes
//! `RESULTS/fig5.json`.

fn main() -> std::process::ExitCode {
    swpf_bench::harness::cli_main("fig5")
}
