//! Fig. 5 — the value of the staggered stride companion prefetch.
//!
//! Even with a hardware stride prefetcher, prefetching only the indirect
//! access leaves a real look-ahead load (`b[i+off]`) on the critical
//! path; adding the staggered stride prefetch for the look-ahead array
//! itself wins across the board (paper §6.1, Haswell).

use swpf_bench::{auto_module, geomean, print_row, scale_from_env, simulate};
use swpf_core::PassConfig;
use swpf_sim::MachineConfig;

fn main() {
    let scale = scale_from_env();
    let machine = MachineConfig::haswell();
    println!("=== Fig. 5 — Haswell: indirect-only vs. indirect+stride ===");
    println!("{:<10} {:>8} {:>8}", "bench", "ind", "ind+str");
    let indirect_only = PassConfig {
        stride_companion: false,
        ..PassConfig::default()
    };
    let both = PassConfig::default();
    let (mut col_a, mut col_b) = (Vec::new(), Vec::new());
    for w in swpf_workloads::suite(scale) {
        let base = simulate(&machine, w.as_ref(), &w.build_baseline());
        let ind = simulate(
            &machine,
            w.as_ref(),
            &auto_module(w.as_ref(), &indirect_only),
        );
        let ind_str = simulate(&machine, w.as_ref(), &auto_module(w.as_ref(), &both));
        let (a, b) = (ind.speedup_vs(&base), ind_str.speedup_vs(&base));
        col_a.push(a);
        col_b.push(b);
        print_row(w.name(), &[a, b]);
    }
    print_row("Geomean", &[geomean(&col_a), geomean(&col_b)]);
}
