//! Trace-path cost probe: for one (workload, variant, machine) cell,
//! time each execution flavour — direct `run_to_done`, the step-driven
//! loop without an encoder, recording, and replay — and report the
//! trace's size. The tool for keeping record/replay overhead honest
//! (the numbers in BENCH_trace.json).
//!
//! All timing flows through `swpf-obs`: each flavour runs under a span,
//! the per-flavour wall time is read back out of the span summary, and
//! the full profile (including the nested `trace:encode`/`trace:decode`
//! sub-spans the library records) prints at the end.
//!
//! ```sh
//! cargo run --release -p swpf-bench --bin trace_probe -- CG auto haswell
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin trace_probe -- IS baseline a53
//! ```

use swpf_bench::{auto_module, scale_from_env};
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::{Interp, NullObserver, Step};
use swpf_sim::{replay_on_machine, run_on_machine_image, run_on_machine_traced, MachineConfig};
use swpf_trace::{record_cursor, TraceRecorder};
use swpf_workloads::{KernelVariant, Scale, WorkloadId};

fn machine_by_name(name: &str) -> MachineConfig {
    MachineConfig::all_systems()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown machine `{name}`"))
}

/// Run one flavour under a `swpf-obs` span and print its wall time,
/// read back from the span summary (so the number printed here is the
/// number any exported profile of this process carries).
fn time(label: &'static str, f: &mut dyn FnMut() -> u64) {
    let events = {
        let _span = swpf_obs::span(label);
        f()
    };
    let row = swpf_obs::snapshot()
        .summary()
        .rows
        .iter()
        .find(|(n, _)| n == label)
        .map(|(_, r)| *r)
        .unwrap_or_default();
    let s = row.total_ns as f64 / 1e9;
    println!(
        "  {label:<10} {s:8.3}s  ({:6.1}M events, {:5.1} ns/event)",
        events as f64 / 1e6,
        s * 1e9 / events as f64
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [workload, variant, machine] = args.as_slice() else {
        eprintln!("usage: trace_probe <workload> <baseline|manual|auto> <machine>");
        std::process::exit(2);
    };
    swpf_obs::enable();
    swpf_obs::name_thread("main");
    let scale = scale_from_env();
    let id = WorkloadId::ALL
        .into_iter()
        .find(|w| w.name() == *workload)
        .unwrap_or_else(|| panic!("unknown workload `{workload}`"));
    let w = id.instantiate(scale);
    let module = match variant.as_str() {
        "baseline" => w.build_baseline(),
        "manual" => w
            .build_variant(KernelVariant::Manual { look_ahead: 64 })
            .expect("manual supported"),
        "auto" => auto_module(w.as_ref(), &swpf_core::PassConfig::default()),
        other => panic!("unknown variant `{other}`"),
    };
    let func = module.find_function("kernel").expect("kernel exists");
    let image = std::sync::Arc::new(ExecImage::build(&module));
    let cfg = machine_by_name(machine);
    let scale_label = match scale {
        Scale::Paper => "paper",
        Scale::Test => "test",
    };
    println!("probe: {workload}/{variant} on {machine} at scale={scale_label}");

    // Functional-only flavours decompose the record path's overhead:
    // run_to_done vs. an external step loop vs. step loop + encoder.
    time("interp_run", &mut || {
        let mut interp = Interp::new();
        let args = w.setup(&mut interp);
        interp.start_with_image(std::sync::Arc::clone(&image), func, &args);
        let mut obs = NullObserver;
        loop {
            match interp.step_cursor(&mut obs).expect("no trap") {
                Step::Continue => {}
                Step::Done(_) => break interp.retired(),
            }
        }
    });
    time("encode", &mut || {
        let mut interp = Interp::new();
        let args = w.setup(&mut interp);
        interp.start_with_image(std::sync::Arc::clone(&image), func, &args);
        let mut rec = TraceRecorder::new(1, 0);
        record_cursor(&mut interp, rec.stream(0), &mut NullObserver).expect("no trap");
        rec.finish().events(0)
    });
    time("direct", &mut || {
        run_on_machine_image(&cfg, &image, func, |i| w.setup(i))
            .insts
            .total
    });
    let mut trace = None;
    time("record", &mut || {
        let mut rec = TraceRecorder::new(1, 0);
        let stats = run_on_machine_traced(&cfg, &image, func, |i| w.setup(i), rec.stream(0));
        trace = Some(rec.finish());
        stats.insts.total
    });
    let trace = trace.expect("recorded");
    println!(
        "  trace: {} events, {:.1} MiB payload ({:.2} B/event)",
        trace.events(0),
        trace.payload_bytes() as f64 / (1 << 20) as f64,
        trace.payload_bytes() as f64 / trace.events(0) as f64
    );
    time("replay", &mut || {
        replay_on_machine(&cfg, &trace).insts.total
    });

    println!("\nswpf-obs profile (spans incl. library sub-spans):");
    print!("{}", swpf_obs::snapshot().summary().render());
}
