//! Trace-equivalence gate for CI: run every experiment four times —
//! direct simulation, a cold traced pass (fused execution, recording
//! when `--trace-dir` is given), a warm traced pass (replaying the
//! just-recorded traces), and a warm *streaming* pass (block-at-a-time
//! decode of the compressed files, bounded memory) — and require every
//! counter of every core of every cell to match bit-for-bit across all
//! of them.
//!
//! ```sh
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin trace_eq -- --trace-dir traces
//! ```
//!
//! With `--trace-dir` the warm passes exercise the full encode → disk →
//! decode → replay path for every experiment (including multicore), the
//! corpus is gated on its compressed density (bytes per event must stay
//! under [`MAX_BYTES_PER_EVENT`] — a broken or disabled block coder
//! roughly triples it), and a `compression_summary.json` describing
//! every file is written into the trace directory for the CI
//! workflow-artifact upload.

use std::path::Path;
use swpf_bench::harness::{cli_options, run_experiment, ExperimentResult, RunOptions, TracePolicy};
use swpf_bench::{experiments, scale_from_env};
use swpf_trace::StreamingReplay;

/// Compressed-corpus density ceiling in bytes per recorded event. The
/// uncompressed event payload measures ~3.5 B/event on the test-scale
/// corpus (short traces never reach the cheap steady-state deltas); the
/// v2 block coder brings it to ~0.54 B/event. The ceiling sits between
/// the two with margin for workload drift: crossing it means block
/// compression stopped working, not that the corpus grew.
const MAX_BYTES_PER_EVENT: f64 = 2.0;

/// Count cells whose counters differ between the two runs, printing
/// each divergence.
fn diverging_cells(name: &str, direct: &ExperimentResult, traced: &ExperimentResult) -> usize {
    assert_eq!(
        direct.cells.len(),
        traced.cells.len(),
        "{name}: traced run changed the grid"
    );
    let mut diverged = 0;
    for (d, t) in direct.cells.iter().zip(&traced.cells) {
        assert_eq!(
            (d.machine, d.workload, &d.variant),
            (t.machine, t.workload, &t.variant),
            "{name}: traced run reordered cells"
        );
        assert_eq!(d.cores.len(), t.cores.len());
        for (core, (sd, st)) in d.cores.iter().zip(&t.cores).enumerate() {
            for ((key, vd), (_, vt)) in sd.counters().into_iter().zip(st.counters()) {
                if vd != vt {
                    println!(
                        "DIVERGED {name} {}/{}/{} core {core}: {key} {vd} direct vs {vt} replayed",
                        d.machine, d.workload, d.variant
                    );
                    diverged += 1;
                }
            }
        }
    }
    diverged
}

/// Audit the recorded corpus: per-file size, event count, and density;
/// write `compression_summary.json` next to the traces; fail when the
/// corpus-wide density exceeds [`MAX_BYTES_PER_EVENT`].
fn audit_corpus(dir: &Path) -> bool {
    let mut files: Vec<(String, u64, u64)> = Vec::new(); // (name, bytes, events)
    let Ok(entries) = std::fs::read_dir(dir) else {
        eprintln!("trace_eq: cannot read trace dir {}", dir.display());
        return false;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "trace") {
            continue;
        }
        let bytes = entry.metadata().map_or(0, |m| m.len());
        match StreamingReplay::open(&path) {
            Ok(replay) => {
                let events: u64 = (0..replay.num_cores()).map(|c| replay.events(c)).sum();
                let name = path
                    .file_name()
                    .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
                files.push((name, bytes, events));
            }
            Err(e) => {
                eprintln!("trace_eq: corpus file {} is damaged: {e}", path.display());
                return false;
            }
        }
    }
    if files.is_empty() {
        eprintln!("trace_eq: no .trace files in {}", dir.display());
        return false;
    }
    files.sort();

    let total_bytes: u64 = files.iter().map(|f| f.1).sum();
    let total_events: u64 = files.iter().map(|f| f.2).sum();
    #[allow(clippy::cast_precision_loss)]
    let density = total_bytes as f64 / total_events as f64;

    #[allow(clippy::cast_precision_loss)]
    let rows: Vec<String> = files
        .iter()
        .map(|(name, bytes, events)| {
            format!(
                "    {{\"file\": \"{name}\", \"bytes\": {bytes}, \"events\": {events}, \
                 \"bytes_per_event\": {:.4}}}",
                *bytes as f64 / (*events).max(1) as f64
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"files\": {},\n  \"total_bytes\": {total_bytes},\n  \
         \"total_events\": {total_events},\n  \"bytes_per_event\": {density:.4},\n  \
         \"ceiling_bytes_per_event\": {MAX_BYTES_PER_EVENT},\n  \"traces\": [\n{}\n  ]\n}}\n",
        files.len(),
        rows.join(",\n")
    );
    let out = dir.join("compression_summary.json");
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("trace_eq: cannot write {}: {e}", out.display());
        return false;
    }

    println!(
        "trace_eq corpus: {} files, {total_bytes} bytes / {total_events} events = \
         {density:.4} B/event (ceiling {MAX_BYTES_PER_EVENT}) — {}",
        files.len(),
        out.display()
    );
    if density <= MAX_BYTES_PER_EVENT {
        true
    } else {
        eprintln!(
            "trace_eq: corpus density {density:.4} B/event exceeds the {MAX_BYTES_PER_EVENT} \
             ceiling — block compression is not working"
        );
        false
    }
}

fn main() -> std::process::ExitCode {
    let scale = scale_from_env();
    let opts = cli_options();
    let on_disk = matches!(opts.run.trace, TracePolicy::Dir(_));
    let mut total_diverged = 0usize;
    let mut total_replayed = 0usize;

    for name in experiments::ALL_NAMES {
        let exp = experiments::by_name(name, scale).expect("known name");
        let direct = run_experiment(
            &exp,
            &RunOptions {
                trace: TracePolicy::Off,
                ..opts.run.clone()
            },
        );
        let cold = run_experiment(&exp, &opts.run);
        let warm = run_experiment(&exp, &opts.run);
        let mut diverged =
            diverging_cells(name, &direct, &cold) + diverging_cells(name, &direct, &warm);
        let mut streamed_note = String::new();
        if on_disk {
            // The bounded-memory path: same files, decoded one block at
            // a time instead of materialising the payload.
            let streamed = run_experiment(
                &exp,
                &RunOptions {
                    stream: true,
                    ..opts.run.clone()
                },
            );
            diverged += diverging_cells(name, &direct, &streamed);
            streamed_note = format!(
                " stream {}/{}",
                streamed.trace_hits(),
                streamed.trace_misses()
            );
            total_replayed += streamed.trace_hits();
        }
        println!(
            "trace_eq {name}: {} cells, cold {}/{} warm {}/{}{streamed_note} \
             (replayed/interpreted), {} diverged ({:.2}s direct, {:.2}s cold, {:.2}s warm)",
            cold.cells.len(),
            cold.trace_hits(),
            cold.trace_misses(),
            warm.trace_hits(),
            warm.trace_misses(),
            diverged,
            direct.wall_s,
            cold.wall_s,
            warm.wall_s,
        );
        total_diverged += diverged;
        total_replayed += cold.trace_hits() + warm.trace_hits();
    }

    let corpus_ok = match &opts.run.trace {
        TracePolicy::Dir(dir) => audit_corpus(dir),
        _ => true,
    };

    println!(
        "\ntrace_eq: {} experiments at scale={}, {} replayed cells, {} divergences",
        experiments::ALL_NAMES.len(),
        scale.label(),
        total_replayed,
        total_diverged,
    );
    if total_diverged == 0 && total_replayed > 0 && corpus_ok {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("trace_eq: FAILED (replay must cover cells and match direct simulation exactly)");
        std::process::ExitCode::FAILURE
    }
}
