//! Trace-equivalence gate for CI: run every experiment three times —
//! direct simulation, a cold traced pass (fused execution, recording
//! when `--trace-dir` is given), and a warm traced pass (replaying the
//! just-recorded traces) — and require every counter of every core of
//! every cell to match bit-for-bit across all three.
//!
//! ```sh
//! SWPF_SCALE=test cargo run --release -p swpf-bench --bin trace_eq -- --trace-dir traces
//! ```
//!
//! With `--trace-dir` the warm pass exercises the full encode → disk →
//! decode → replay path for every experiment (including multicore), and
//! the recorded `.trace` files are left behind for the CI
//! workflow-artifact upload.

use swpf_bench::harness::{cli_options, run_experiment, ExperimentResult, RunOptions, TracePolicy};
use swpf_bench::{experiments, scale_from_env};

/// Count cells whose counters differ between the two runs, printing
/// each divergence.
fn diverging_cells(name: &str, direct: &ExperimentResult, traced: &ExperimentResult) -> usize {
    assert_eq!(
        direct.cells.len(),
        traced.cells.len(),
        "{name}: traced run changed the grid"
    );
    let mut diverged = 0;
    for (d, t) in direct.cells.iter().zip(&traced.cells) {
        assert_eq!(
            (d.machine, d.workload, &d.variant),
            (t.machine, t.workload, &t.variant),
            "{name}: traced run reordered cells"
        );
        assert_eq!(d.cores.len(), t.cores.len());
        for (core, (sd, st)) in d.cores.iter().zip(&t.cores).enumerate() {
            for ((key, vd), (_, vt)) in sd.counters().into_iter().zip(st.counters()) {
                if vd != vt {
                    println!(
                        "DIVERGED {name} {}/{}/{} core {core}: {key} {vd} direct vs {vt} replayed",
                        d.machine, d.workload, d.variant
                    );
                    diverged += 1;
                }
            }
        }
    }
    diverged
}

fn main() -> std::process::ExitCode {
    let scale = scale_from_env();
    let opts = cli_options();
    let mut total_diverged = 0usize;
    let mut total_replayed = 0usize;

    for name in experiments::ALL_NAMES {
        let exp = experiments::by_name(name, scale).expect("known name");
        let direct = run_experiment(
            &exp,
            &RunOptions {
                trace: TracePolicy::Off,
                ..opts.run.clone()
            },
        );
        let cold = run_experiment(&exp, &opts.run);
        let warm = run_experiment(&exp, &opts.run);
        let diverged =
            diverging_cells(name, &direct, &cold) + diverging_cells(name, &direct, &warm);
        println!(
            "trace_eq {name}: {} cells, cold {}/{} warm {}/{} (replayed/interpreted), \
             {} diverged ({:.2}s direct, {:.2}s cold, {:.2}s warm)",
            cold.cells.len(),
            cold.trace_hits(),
            cold.trace_misses(),
            warm.trace_hits(),
            warm.trace_misses(),
            diverged,
            direct.wall_s,
            cold.wall_s,
            warm.wall_s,
        );
        total_diverged += diverged;
        total_replayed += cold.trace_hits() + warm.trace_hits();
    }

    println!(
        "\ntrace_eq: {} experiments at scale={}, {} replayed cells, {} divergences",
        experiments::ALL_NAMES.len(),
        scale.label(),
        total_replayed,
        total_diverged,
    );
    if total_diverged == 0 && total_replayed > 0 {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("trace_eq: FAILED (replay must cover cells and match direct simulation exactly)");
        std::process::ExitCode::FAILURE
    }
}
