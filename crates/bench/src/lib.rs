//! # swpf-bench — reproduction harnesses for every table and figure
//!
//! One binary per experiment (see DESIGN.md §5 for the index):
//!
//! | target | paper artefact |
//! |--------|----------------|
//! | `table1` | Table 1 — system setup |
//! | `fig2`  | Fig. 2 — naive vs. mis-scheduled vs. optimal IS prefetches |
//! | `fig4`  | Fig. 4 — auto vs. manual speedups, all systems (+ ICC) |
//! | `fig5`  | Fig. 5 — indirect-only vs. indirect+stride |
//! | `fig6`  | Fig. 6 — look-ahead distance sweep |
//! | `fig7`  | Fig. 7 — HJ-8 stagger depth |
//! | `fig8`  | Fig. 8 — dynamic instruction overhead |
//! | `fig9`  | Fig. 9 — IS multicore throughput |
//! | `fig10` | Fig. 10 — small vs. huge pages |
//! | `ablation` | pass-pipeline ablation — static cleanup × speedup (via `--bin all -- --only ablation`) |
//!
//! Every binary is a thin wrapper over the shared [`harness`]: the grid
//! is declared in [`experiments`], executed on a pool of host threads,
//! printed as a table, and serialised to `RESULTS/<name>.json`.
//! `--bin all` runs the full suite and fails on shape-check violations;
//! `--bin trace_eq` is the replay-equivalence gate (every experiment,
//! direct vs. record/replay, counters must match bit-for-bit).
//!
//! Run with `cargo run --release -p swpf-bench --bin figN`. Set
//! `SWPF_SCALE=test` for a fast smoke run with tiny inputs (shapes are
//! noisier but the harness logic is identical); `--threads N` /
//! `SWPF_THREADS` bound the worker pool, `--out DIR` moves the
//! artifact directory. Trace record/replay is on by default (each
//! distinct kernel is interpreted once per grid and replayed for every
//! other machine cell); `--trace-dir DIR` / `SWPF_TRACE_DIR` persist
//! traces across runs, `--no-trace` disables replay (DESIGN.md §6).

pub mod experiments;
pub mod harness;
pub mod json;
pub mod pipeline_search;
pub mod prof;
pub mod tune;

use swpf_core::PassConfig;
use swpf_ir::Module;
use swpf_sim::{run_on_machine, MachineConfig, SimStats};
use swpf_workloads::{Scale, Workload};

/// Scale selected by the `SWPF_SCALE` environment variable: `test` →
/// tiny inputs, `paper` (or unset) → paper-scaled inputs.
///
/// # Panics
/// On any other value — a typo must not silently select the slow
/// paper-scale configuration.
#[must_use]
pub fn scale_from_env() -> Scale {
    match std::env::var("SWPF_SCALE") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("invalid SWPF_SCALE: {e}")),
        Err(std::env::VarError::NotPresent) => Scale::Paper,
        Err(e) => panic!("SWPF_SCALE is not valid unicode: {e}"),
    }
}

/// Simulate `module`'s `kernel` on `cfg` with `w`'s data.
#[must_use]
pub fn simulate(cfg: &MachineConfig, w: &dyn Workload, module: &Module) -> SimStats {
    run_on_machine(cfg, module, "kernel", |interp| w.setup(interp))
}

/// The workload's baseline module with the automatic pass applied.
#[must_use]
pub fn auto_module(w: &dyn Workload, config: &PassConfig) -> Module {
    let mut m = w.build_baseline();
    swpf_core::run_on_module(&mut m, config);
    let _span = swpf_obs::span("verify");
    swpf_ir::verifier::verify_module(&m).expect("pass output verifies");
    m
}

/// The workload's baseline module with the ICC-like stride-indirect
/// baseline pass applied (Fig. 4d).
#[must_use]
pub fn icc_module(w: &dyn Workload, config: &PassConfig) -> Module {
    let mut m = w.build_baseline();
    swpf_core::icc_like::run_on_module(&mut m, config);
    let _span = swpf_obs::span("verify");
    swpf_ir::verifier::verify_module(&m).expect("pass output verifies");
    m
}

/// Geometric mean of a slice of ratios.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Print a markdown-ish table row.
pub fn print_row(name: &str, values: &[f64]) {
    print!("{name:<10}");
    for v in values {
        print!(" {v:>8.2}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn auto_module_verifies_for_all_workloads() {
        for w in swpf_workloads::suite(Scale::Test) {
            let m = auto_module(w.as_ref(), &PassConfig::default());
            assert!(m.find_function("kernel").is_some(), "{}", w.name());
        }
    }
}
