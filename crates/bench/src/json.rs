//! Minimal JSON tree, writer, and parser — no external dependencies
//! (the build container has no crates.io access, so `serde` is not an
//! option; see DESIGN.md §9).
//!
//! The writer produces the `RESULTS/<experiment>.json` artifacts; the
//! parser reads them back (snapshot tests, PR diffing tools) and reads
//! the line-oriented records the `criterion` shim appends under
//! `CRITERION_JSON` (the bench-regression gate, `--bin bench_gate`).
//! Integers are kept exact — `u64` counters are not round-tripped
//! through `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (simulation counters).
    U64(u64),
    /// A signed integer (sweep parameters).
    I64(i64),
    /// A float; non-finite values serialise as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key–value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup (objects only).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: integers widen, floats pass through.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned-integer view (exact; floats do not coerce).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the same f64, and always keeps a `.`/`e`
                    // so the value re-parses as a float.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document.
    ///
    /// # Errors
    /// A human-readable description with a byte offset on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape `\\{}` at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_exact_integers() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fig4".to_string())),
            ("big", Json::U64(u64::MAX)),
            ("neg", Json::I64(-42)),
            ("pi", Json::F64(3.25)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::U64(1),
                    Json::F64(0.1),
                    Json::Str("a\"b\n".to_string()),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("big").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nonfinite_floats_serialise_as_null() {
        let text = Json::F64(f64::NAN).to_pretty_string();
        assert_eq!(text.trim(), "null");
    }

    #[test]
    fn parses_criterion_shim_records() {
        let line = r#"{"group":"engines","bench":"exec_image/IS","ns_per_iter":105490.0,"mean_ns_per_iter":106000.2,"rate_per_s":null}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("group").unwrap().as_str(), Some("engines"));
        assert_eq!(v.get("ns_per_iter").unwrap().as_f64(), Some(105490.0));
        assert_eq!(v.get("rate_per_s"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [0.1, 1e-12, 123456789.123456, f64::MAX, 5e-324] {
            let text = Json::F64(v).to_pretty_string();
            match Json::parse(&text).unwrap() {
                Json::F64(back) => assert_eq!(back, v),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
