//! Reconstruct a [`swpf_obs::Profile`] from its chrome-trace export.
//!
//! `--profile <path>` / `SWPF_PROFILE` write plain Chrome trace-event
//! JSON — loadable in `chrome://tracing` or Perfetto — and this module
//! parses it back, so `prof_report`'s summary table and the timeline
//! viewer always describe the same capture.
//!
//! The chrome format has no histogram event, so the exporter flattens
//! each non-empty [`swpf_obs::Hist`] into a reserved counter series —
//! `hist:{name}:count`, `:sum`, `:min`, `:max`, `:b{i}` — and this
//! reader reassembles those series into `Profile.histograms`, removing
//! them from the counter catalogue. The round trip is exact: export →
//! parse → export is a fixed point (modulo per-thread drop counts,
//! which the format does not carry).

use crate::json::Json;
use std::collections::BTreeMap;
use swpf_obs::{Hist, Profile, ThreadTrack, TrackEvent};

/// `ts` is microseconds with sub-µs decimals; back to integer ns.
fn ts_ns(ev: &Json) -> u64 {
    let us = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (us * 1000.0).round().max(0.0) as u64
    }
}

/// The (created-on-demand) track of thread `tid`.
fn track(tracks: &mut BTreeMap<u64, ThreadTrack>, tid: u64) -> &mut ThreadTrack {
    let t = tracks.entry(tid).or_default();
    t.tid = tid;
    t
}

/// Split a reserved histogram-series counter key `hist:{name}:{field}`
/// into `(name, field)`. Splits on the *last* colon so histogram names
/// containing colons survive.
fn split_hist_key(key: &str) -> Option<(&str, &str)> {
    let rest = key.strip_prefix("hist:")?;
    let idx = rest.rfind(':')?;
    Some((&rest[..idx], &rest[idx + 1..]))
}

/// Fold one `hist:` series sample into the histogram being reassembled.
/// Returns false for an unrecognised field (the key then stays a plain
/// counter rather than being silently swallowed).
fn apply_hist_field(h: &mut Hist, field: &str, value: u64) -> bool {
    match field {
        "count" => h.count = value,
        "sum" => h.sum = value,
        "min" => h.min = value,
        "max" => h.max = value,
        f => match f.strip_prefix('b').and_then(|s| s.parse::<usize>().ok()) {
            Some(i) if i < h.buckets.len() => h.buckets[i] = value,
            _ => return false,
        },
    }
    true
}

/// Rebuild a [`Profile`] from parsed chrome trace-event JSON.
///
/// Thread tracks, span nesting, counters, and histograms (via the
/// `hist:` counter series) all reconstruct exactly; only the
/// per-thread dropped-span counts are not round-tripped (the chrome
/// format has no field for them).
///
/// # Errors
/// When the document is not a chrome-trace profile, or an event is
/// missing a required member.
pub fn profile_from_chrome(doc: &Json) -> Result<Profile, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("no `traceEvents` array — not a chrome-trace profile")?;
    let mut tracks: BTreeMap<u64, ThreadTrack> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut captured_ns = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match ph {
            "M" => {
                if let Some(name) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    track(&mut tracks, tid).name = name.to_string();
                }
            }
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("B event without a name")?
                    .to_string();
                let ns = ts_ns(ev);
                captured_ns = captured_ns.max(ns);
                track(&mut tracks, tid)
                    .events
                    .push(TrackEvent::Begin { name, ns });
            }
            "E" => {
                let ns = ts_ns(ev);
                captured_ns = captured_ns.max(ns);
                track(&mut tracks, tid).events.push(TrackEvent::End { ns });
            }
            "C" => {
                // Counter samples are stamped at the capture instant,
                // so they pin `captured_ns` even when they post-date
                // the last span event.
                captured_ns = captured_ns.max(ts_ns(ev));
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("C event without a name")?;
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_u64)
                    .ok_or("C event without an integer value")?;
                *counters.entry(name.to_string()).or_insert(0) += value;
            }
            other => return Err(format!("unsupported event phase `{other}`")),
        }
    }
    // Reassemble the reserved `hist:` counter series back into
    // histograms; unrecognised fields stay visible as plain counters.
    let mut histograms: BTreeMap<String, Hist> = BTreeMap::new();
    counters.retain(|key, value| match split_hist_key(key) {
        Some((name, field)) => {
            let h = histograms.entry(name.to_string()).or_default();
            !apply_hist_field(h, field, *value)
        }
        None => true,
    });
    // Our exporter always writes balanced tracks, but a truncated or
    // hand-edited file must degrade to a partial table, not a panic:
    // orphan ends are dropped, unclosed begins close at the capture
    // timestamp — the same repair `swpf_obs::snapshot` applies.
    for t in tracks.values_mut() {
        let mut depth = 0usize;
        t.events.retain(|ev| match ev {
            TrackEvent::Begin { .. } => {
                depth += 1;
                true
            }
            TrackEvent::End { .. } => {
                if depth == 0 {
                    false
                } else {
                    depth -= 1;
                    true
                }
            }
        });
        for _ in 0..depth {
            t.events.push(TrackEvent::End { ns: captured_ns });
        }
    }
    Ok(Profile {
        captured_ns,
        threads: tracks.into_values().collect(),
        counters,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        let mut h = Hist::default();
        h.add(0);
        h.add(3);
        h.add(1000);
        let mut histograms = BTreeMap::new();
        histograms.insert("sim.lead:cycles".to_string(), h);
        histograms.insert("never.recorded".to_string(), Hist::default());
        let mut counters = BTreeMap::new();
        counters.insert("sim.retires".to_string(), 42u64);
        Profile {
            captured_ns: 5_000,
            threads: vec![ThreadTrack {
                tid: 3,
                name: "worker-3".to_string(),
                events: vec![
                    TrackEvent::Begin {
                        name: "simulate".to_string(),
                        ns: 1_000,
                    },
                    TrackEvent::Begin {
                        name: "drain".to_string(),
                        ns: 2_000,
                    },
                    TrackEvent::End { ns: 3_000 },
                    TrackEvent::End { ns: 4_000 },
                ],
                dropped: 0,
            }],
            counters,
            histograms,
        }
    }

    #[test]
    fn chrome_round_trip_reconstructs_everything() {
        let p = sample_profile();
        let text = p.to_chrome_json();
        let doc = Json::parse(&text).expect("exporter writes valid JSON");
        let back = profile_from_chrome(&doc).expect("round trip parses");
        assert_eq!(back.captured_ns, p.captured_ns);
        assert_eq!(back.threads, p.threads);
        assert_eq!(back.counters, p.counters);
        // The empty histogram is (deliberately) not exported; the
        // recorded one reconstructs to the last bucket.
        assert_eq!(back.histograms.len(), 1);
        assert_eq!(
            back.histograms.get("sim.lead:cycles"),
            p.histograms.get("sim.lead:cycles"),
        );
    }

    #[test]
    fn round_trip_is_a_fixed_point() {
        let text = sample_profile().to_chrome_json();
        let doc = Json::parse(&text).expect("valid JSON");
        let again = profile_from_chrome(&doc).expect("parses").to_chrome_json();
        assert_eq!(text, again, "export → parse → export must be stable");
    }

    #[test]
    fn hist_series_keys_split_on_the_last_colon() {
        assert_eq!(
            split_hist_key("hist:sim.lead:cycles:b12"),
            Some(("sim.lead:cycles", "b12"))
        );
        assert_eq!(split_hist_key("hist:x:count"), Some(("x", "count")));
        assert_eq!(split_hist_key("plain.counter"), None);
        assert_eq!(split_hist_key("hist:nofield"), None);
    }

    #[test]
    fn unrecognised_hist_fields_stay_counters() {
        let doc = Json::parse(
            r#"{"traceEvents": [
              {"ph": "C", "pid": 1, "tid": 0, "ts": 1.0, "name": "hist:h:count", "args": {"value": 2}},
              {"ph": "C", "pid": 1, "tid": 0, "ts": 1.0, "name": "hist:h:bogus", "args": {"value": 7}}
            ]}"#,
        )
        .expect("valid JSON");
        let p = profile_from_chrome(&doc).expect("parses");
        assert_eq!(p.histograms.get("h").map(|h| h.count), Some(2));
        assert_eq!(p.counters.get("hist:h:bogus"), Some(&7));
    }

    #[test]
    fn truncated_tracks_are_repaired() {
        let doc = Json::parse(
            r#"{"traceEvents": [
              {"ph": "E", "pid": 1, "tid": 0, "ts": 0.5},
              {"ph": "B", "pid": 1, "tid": 0, "ts": 1.0, "name": "open"}
            ]}"#,
        )
        .expect("valid JSON");
        let p = profile_from_chrome(&doc).expect("parses");
        let t = &p.threads[0];
        assert_eq!(t.events.len(), 2, "orphan end dropped, open begin closed");
        assert!(matches!(t.events[1], TrackEvent::End { ns } if ns == p.captured_ns));
    }
}
