//! The nine figure/table experiments as declarative specs.
//!
//! Each experiment is an [`Experiment`]: the machine × workload ×
//! variant grid the harness executes, a derivation turning raw cells
//! into the figure's table(s), and shape checks asserting the paper's
//! qualitative claims. The per-figure binaries (`--bin fig4` etc.) are
//! one-line wrappers over [`by_name`]; `--bin all` runs the whole list.
//!
//! Shape checks come in two strengths: claims that hold even on the
//! tiny `Scale::Test` inputs run at every scale (CI runs them on every
//! PR), while claims about paper-scale magnitudes (e.g. geomean
//! speedups > 1 on in-order machines) are gated on `Scale::Paper`.

use crate::geomean;
use crate::harness::{
    CellResult, Check, Experiment, ExperimentResult, ExperimentSpec, Row, TableSection, Variant,
};
use swpf_core::PassConfig;
use swpf_sim::{CoreKind, MachineConfig, PcProfile, SiteProfile};
use swpf_workloads::is::Fig2Scheme;
use swpf_workloads::{KernelVariant, Scale, WorkloadId};

/// Every *grid* experiment name: the paper's figures/tables in figure
/// order, plus the pass-pipeline `ablation` study and the
/// `trace_analytics` corpus profiler (the declarative specs
/// [`by_name`] resolves; what `--bin all` runs by default).
pub const ALL_NAMES: [&str; 12] = [
    "table1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablation",
    "trace_analytics",
    "prefetch_profile",
];

/// The complete experiment catalogue: the grid experiments plus the
/// searched experiments — `tune` (run by `--bin tune` through
/// [`crate::tune::run_tune`], or by `--bin all -- --only tune`) and
/// `pipeline_search` (run by `--bin pipeline_search` through
/// [`crate::pipeline_search::run_search`], or by
/// `--only pipeline_search`). This is what `--bin all -- --list`
/// enumerates.
pub const EXPERIMENTS: [&str; 14] = [
    "table1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablation",
    "trace_analytics",
    "prefetch_profile",
    "tune",
    "pipeline_search",
];

/// The default manual-variant label (`c = 64`, the paper's choice).
const MANUAL: &str = "manual_c64";

/// Look-ahead distances swept by Fig. 6.
const FIG6_DISTANCES: [i64; 7] = [4, 8, 16, 32, 64, 128, 256];

/// Core counts swept by Fig. 9.
const FIG9_CORES: [usize; 3] = [1, 2, 4];

/// Look-ahead distances swept by the `prefetch_profile` experiment: the
/// Fig. 6 sweep extended one octave lower, so the too-late extreme is
/// unambiguous in the outcome partition.
const PROFILE_DISTANCES: [i64; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// Look up an experiment by name at the given scale.
#[must_use]
pub fn by_name(name: &str, scale: Scale) -> Option<Experiment> {
    match name {
        "table1" => Some(table1(scale)),
        "fig2" => Some(fig2(scale)),
        "fig4" => Some(fig4(scale)),
        "fig5" => Some(fig5(scale)),
        "fig6" => Some(fig6(scale)),
        "fig7" => Some(fig7(scale)),
        "fig8" => Some(fig8(scale)),
        "fig9" => Some(fig9(scale)),
        "fig10" => Some(fig10(scale)),
        "ablation" => Some(ablation(scale)),
        "trace_analytics" => Some(trace_analytics(scale)),
        "prefetch_profile" => Some(prefetch_profile(scale)),
        _ => None,
    }
}

// ---- shared derivation helpers ------------------------------------------

fn manual_variant() -> Variant {
    Variant::Kernel(KernelVariant::Manual {
        look_ahead: PassConfig::default().look_ahead,
    })
}

/// Value at (`row_name`, `column`) of a section, `NaN` when absent.
fn row_value(section: &TableSection, row_name: &str, column: &str) -> f64 {
    let Some(ci) = section.columns.iter().position(|c| c == column) else {
        return f64::NAN;
    };
    section
        .rows
        .iter()
        .find(|r| r.name == row_name)
        .and_then(|r| r.values.get(ci).copied())
        .unwrap_or(f64::NAN)
}

fn find_section<'a>(sections: &'a [TableSection], needle: &str) -> Option<&'a TableSection> {
    sections.iter().find(|s| s.title.contains(needle))
}

/// Speedup-vs-baseline rows over `workloads` for the given variant
/// columns, plus a trailing `Geomean` row.
fn speedup_rows(
    res: &ExperimentResult,
    machine: &str,
    workloads: &[WorkloadId],
    variants: &[&str],
) -> Vec<Row> {
    let mut per_column: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let mut rows = Vec::new();
    for w in workloads {
        let values: Vec<f64> = variants
            .iter()
            .map(|v| res.speedup(machine, w.name(), v))
            .collect();
        for (col, v) in per_column.iter_mut().zip(&values) {
            col.push(*v);
        }
        rows.push(Row {
            name: w.name().to_string(),
            values,
        });
    }
    rows.push(Row {
        name: "Geomean".to_string(),
        values: per_column.iter().map(|c| geomean(c)).collect(),
    });
    rows
}

fn in_order_names(res: &ExperimentResult) -> Vec<&'static str> {
    res.machines
        .iter()
        .filter(|m| m.core == CoreKind::InOrder)
        .map(|m| m.name)
        .collect()
}

// ---- Table 1 ------------------------------------------------------------

fn table1(scale: Scale) -> Experiment {
    Experiment {
        spec: ExperimentSpec {
            name: "table1",
            title: "Table 1 — simulated system models (capacities scaled 1/4)",
            scale,
            machines: MachineConfig::all_systems(),
            workloads: vec![],
            variants: vec![],
            filter: None,
            perf: false,
        },
        derive: |res| {
            let columns = [
                "width",
                "rob",
                "mshrs",
                "l1_KiB",
                "l2_KiB",
                "l3_KiB",
                "tlb",
                "page_bits",
                "walkers",
                "dram_lat",
                "dram_B/c",
            ];
            let rows = res
                .machines
                .iter()
                .map(|m| Row {
                    name: format!("{} ({})", m.name, m.core_kind_name()),
                    values: vec![
                        f64::from(m.width),
                        m.rob as f64,
                        m.mshrs as f64,
                        (m.l1.capacity >> 10) as f64,
                        (m.l2.capacity >> 10) as f64,
                        (m.l3.map_or(0, |c| c.capacity) >> 10) as f64,
                        f64::from(m.tlb.entries),
                        f64::from(m.tlb.page_bits),
                        f64::from(m.tlb.walkers),
                        m.dram.latency as f64,
                        m.dram.bytes_per_cycle as f64,
                    ],
                })
                .collect();
            vec![TableSection {
                title: "Table 1 — simulated system models".to_string(),
                columns: columns.iter().map(ToString::to_string).collect(),
                rows,
                notes: vec![
                    "Paper reference (Table 1):".to_string(),
                    "  Haswell  — i5-4570, 3.2GHz, 32K L1 / 256K L2 / 8M L3, DDR3".to_string(),
                    "  Xeon Phi — 3120P, 1.1GHz, 32K L1 / 512K L2, GDDR5".to_string(),
                    "  A57      — TX1, 1.9GHz, 32K L1 / 2M L2, LPDDR4".to_string(),
                    "  A53      — Odroid C2, 2.0GHz, 32K L1 / 1M L2, DDR3".to_string(),
                ],
            }]
        },
        checks: |res, _derived| {
            vec![Check::new(
                "four_systems_modelled",
                res.machines.len() == 4,
                format!("{} machine models", res.machines.len()),
            )]
        },
    }
}

// ---- Fig. 2 -------------------------------------------------------------

fn fig2(scale: Scale) -> Experiment {
    Experiment {
        spec: ExperimentSpec {
            name: "fig2",
            title: "Fig. 2 — IS: prefetching-scheme speedups",
            scale,
            machines: MachineConfig::all_systems(),
            workloads: vec![WorkloadId::Is],
            variants: vec![
                Variant::baseline(),
                Variant::Kernel(KernelVariant::Fig2(Fig2Scheme::Intuitive)),
                Variant::Kernel(KernelVariant::Fig2(Fig2Scheme::OffsetTooSmall)),
                Variant::Kernel(KernelVariant::Fig2(Fig2Scheme::OffsetTooBig)),
                Variant::Kernel(KernelVariant::Fig2(Fig2Scheme::Optimal)),
            ],
            filter: None,
            perf: false,
        },
        derive: |res| {
            let schemes = [
                ("intuitive", "fig2_intuitive"),
                ("too-small", "fig2_too_small"),
                ("too-big", "fig2_too_big"),
                ("optimal", "fig2_optimal"),
            ];
            let rows = res
                .machines
                .iter()
                .map(|m| Row {
                    name: m.name.to_string(),
                    values: schemes
                        .iter()
                        .map(|(_, label)| res.speedup(m.name, "IS", label))
                        .collect(),
                })
                .collect();
            vec![TableSection::new(
                "Fig. 2 — IS: prefetching-scheme speedups",
                schemes.iter().map(|(c, _)| (*c).to_string()).collect(),
                rows,
            )]
        },
        checks: |res, derived| {
            let section = &derived[0];
            let mut checks = Vec::new();
            // The motivating claim: the staggered pair at a good
            // distance keeps up with (and at small scales clearly
            // beats) the intuitive single prefetch. 10% slack — on our
            // scaled models the two sit within a few percent on some
            // machines, exactly as in the paper's Haswell bar chart.
            for m in in_order_names(res) {
                let optimal = row_value(section, m, "optimal");
                let intuitive = row_value(section, m, "intuitive");
                checks.push(Check::new(
                    format!("optimal_keeps_up_with_intuitive_{m}"),
                    optimal >= intuitive * 0.9,
                    format!("optimal {optimal:.3} vs intuitive {intuitive:.3}"),
                ));
            }
            // Mis-scheduling hurts: a huge offset pollutes the cache and
            // lines are evicted before use (the Phi's big in-order-core
            // prefetch budget shows it most clearly at every scale).
            let too_big = row_value(section, "xeon_phi", "too-big");
            let optimal = row_value(section, "xeon_phi", "optimal");
            checks.push(Check::new(
                "too_big_offset_pollutes_on_phi",
                too_big < optimal,
                format!("too-big {too_big:.3} vs optimal {optimal:.3}"),
            ));
            if res.scale == Scale::Paper {
                for m in in_order_names(res) {
                    let optimal = row_value(section, m, "optimal");
                    checks.push(Check::new(
                        format!("optimal_speeds_up_{m}"),
                        optimal > 1.0,
                        format!("optimal {optimal:.3}"),
                    ));
                }
            }
            checks
        },
    }
}

// ---- Fig. 4 -------------------------------------------------------------

fn fig4_filter(m: &MachineConfig, _w: WorkloadId, v: &Variant) -> bool {
    // The ICC-like baseline pass is evaluated on the Xeon Phi only
    // (paper Fig. 4d).
    !matches!(v, Variant::Icc) || m.name == "xeon_phi"
}

fn fig4(scale: Scale) -> Experiment {
    Experiment {
        spec: ExperimentSpec {
            name: "fig4",
            title: "Fig. 4 — auto vs. manual speedup over no-prefetch, all systems",
            scale,
            machines: MachineConfig::all_systems(),
            workloads: WorkloadId::ALL.to_vec(),
            variants: vec![
                Variant::baseline(),
                Variant::auto_default(),
                manual_variant(),
                Variant::Icc,
            ],
            filter: Some(fig4_filter),
            perf: false,
        },
        derive: |res| {
            res.machines
                .iter()
                .map(|m| {
                    let is_phi = m.name == "xeon_phi";
                    let variants: &[&str] = if is_phi {
                        &["icc", "auto", MANUAL]
                    } else {
                        &["auto", MANUAL]
                    };
                    let columns = if is_phi {
                        vec!["icc".to_string(), "auto".to_string(), "manual".to_string()]
                    } else {
                        vec!["auto".to_string(), "manual".to_string()]
                    };
                    TableSection::new(
                        format!("Fig. 4 ({}) — speedup vs. no prefetching", m.name),
                        columns,
                        speedup_rows(res, m.name, &WorkloadId::ALL, variants),
                    )
                })
                .collect()
        },
        checks: |res, derived| {
            let mut checks = Vec::new();
            // In-order cores cannot hide indirect misses themselves, so
            // the pass must win on them — the paper's headline claim.
            // Holds even at test scale.
            for m in in_order_names(res) {
                let section =
                    find_section(derived, &format!("({m})")).expect("section per machine");
                let auto = row_value(section, "Geomean", "auto");
                checks.push(Check::new(
                    format!("auto_geomean_speeds_up_{m}"),
                    auto > 1.0,
                    format!("auto geomean {auto:.3}"),
                ));
            }
            if res.scale == Scale::Paper {
                // Manual prefetches encode knowledge the compiler cannot
                // have, so the best-manual geomean bounds auto from above
                // on in-order machines (paper §6.1).
                for m in in_order_names(res) {
                    let section =
                        find_section(derived, &format!("({m})")).expect("section per machine");
                    let auto = row_value(section, "Geomean", "auto");
                    let manual = row_value(section, "Geomean", "manual");
                    checks.push(Check::new(
                        format!("manual_bounds_auto_{m}"),
                        manual >= auto * 0.95,
                        format!("manual {manual:.3} vs auto {auto:.3}"),
                    ));
                }
                // The ICC-like stride-indirect baseline trails the full
                // pass on the Phi (Fig. 4d).
                let phi = find_section(derived, "(xeon_phi)").expect("phi section");
                let icc = row_value(phi, "Geomean", "icc");
                let auto = row_value(phi, "Geomean", "auto");
                checks.push(Check::new(
                    "icc_trails_auto_on_phi",
                    icc <= auto,
                    format!("icc {icc:.3} vs auto {auto:.3}"),
                ));
            }
            checks
        },
    }
}

// ---- Fig. 5 -------------------------------------------------------------

fn fig5(scale: Scale) -> Experiment {
    Experiment {
        spec: ExperimentSpec {
            name: "fig5",
            title: "Fig. 5 — Haswell: indirect-only vs. indirect+stride",
            scale,
            machines: vec![MachineConfig::haswell()],
            workloads: WorkloadId::ALL.to_vec(),
            variants: vec![
                Variant::baseline(),
                Variant::Auto {
                    label: "auto_ind",
                    config: PassConfig {
                        stride_companion: false,
                        ..PassConfig::default()
                    },
                },
                Variant::auto_default(),
            ],
            filter: None,
            perf: false,
        },
        derive: |res| {
            vec![TableSection::new(
                "Fig. 5 — Haswell: indirect-only vs. indirect+stride",
                vec!["ind".to_string(), "ind+str".to_string()],
                speedup_rows(res, "haswell", &WorkloadId::ALL, &["auto_ind", "auto"]),
            )]
        },
        checks: |res, derived| {
            if res.scale != Scale::Paper {
                return Vec::new();
            }
            // Adding the staggered stride companion wins overall
            // (paper §6.1) — a geomean claim, so paper scale only.
            let section = &derived[0];
            let ind = row_value(section, "Geomean", "ind");
            let both = row_value(section, "Geomean", "ind+str");
            vec![Check::new(
                "stride_companion_helps",
                both >= ind,
                format!("ind+str {both:.3} vs ind {ind:.3}"),
            )]
        },
    }
}

// ---- Fig. 6 -------------------------------------------------------------

fn fig6(scale: Scale) -> Experiment {
    let mut variants = vec![Variant::baseline()];
    variants.extend(
        FIG6_DISTANCES
            .iter()
            .map(|&c| Variant::Kernel(KernelVariant::Manual { look_ahead: c })),
    );
    Experiment {
        spec: ExperimentSpec {
            name: "fig6",
            title: "Fig. 6 — speedup vs. look-ahead distance (manual)",
            scale,
            machines: MachineConfig::all_systems(),
            workloads: WorkloadId::FIG6.to_vec(),
            variants,
            filter: None,
            perf: false,
        },
        derive: |res| {
            WorkloadId::FIG6
                .iter()
                .map(|w| {
                    TableSection::new(
                        format!("Fig. 6 — {}: speedup vs. look-ahead distance", w.name()),
                        FIG6_DISTANCES.iter().map(|c| format!("c={c}")).collect(),
                        res.machines
                            .iter()
                            .map(|m| Row {
                                name: m.name.to_string(),
                                values: FIG6_DISTANCES
                                    .iter()
                                    .map(|c| res.speedup(m.name, w.name(), &format!("manual_c{c}")))
                                    .collect(),
                            })
                            .collect(),
                    )
                })
                .collect()
        },
        checks: |res, derived| {
            // The paper's shape (§6.2): both mis-scheduling extremes
            // lose — too small a distance fetches too late, too large a
            // distance pollutes the (here 1/4-scaled) caches — so the
            // best distance is interior to the sweep. On the 1/4-scaled
            // model the argmax sits lower than the paper's 64 on some
            // machines, so the check pins the curve's shape, not the
            // argmax, and does it where the signal is unambiguous at
            // every scale: the in-order machines, which cannot hide
            // either failure mode behind out-of-order overlap.
            let in_order = in_order_names(res);
            let mut checks = Vec::new();
            for section in derived {
                let bench = section
                    .title
                    .split([':', '—'])
                    .nth(1)
                    .unwrap_or("?")
                    .trim()
                    .to_string();
                for row in section
                    .rows
                    .iter()
                    .filter(|r| in_order.contains(&r.name.as_str()))
                {
                    let first = row.values[0];
                    let last = *row.values.last().expect("non-empty sweep");
                    let best = row.values.iter().copied().fold(f64::MIN, f64::max);
                    checks.push(Check::new(
                        format!("best_distance_interior_{bench}_{}", row.name),
                        best > first && best > last,
                        format!("best {best:.3} vs c=4 {first:.3}, c=256 {last:.3}"),
                    ));
                }
            }
            checks
        },
    }
}

// ---- Fig. 7 -------------------------------------------------------------

fn fig7(scale: Scale) -> Experiment {
    let mut variants = vec![Variant::baseline()];
    variants.extend((1..=4).map(|depth| {
        Variant::Kernel(KernelVariant::ManualDepth {
            look_ahead: 64,
            depth,
        })
    }));
    Experiment {
        spec: ExperimentSpec {
            name: "fig7",
            title: "Fig. 7 — HJ-8: speedup vs. prefetch stagger depth",
            scale,
            machines: MachineConfig::all_systems(),
            workloads: vec![WorkloadId::Hj8],
            variants,
            filter: None,
            perf: false,
        },
        derive: |res| {
            vec![TableSection::new(
                "Fig. 7 — HJ-8: speedup vs. prefetch stagger depth",
                (1..=4).map(|d| format!("depth={d}")).collect(),
                res.machines
                    .iter()
                    .map(|m| Row {
                        name: m.name.to_string(),
                        values: (1..=4)
                            .map(|d| res.speedup(m.name, "HJ-8", &format!("manual_c64_d{d}")))
                            .collect(),
                    })
                    .collect(),
            )]
        },
        checks: |res, derived| {
            if res.scale != Scale::Paper {
                // At test scale HJ-8's table is cache-resident and
                // stagger depth is pure overhead — no shape to assert.
                return Vec::new();
            }
            // Staggered chain prefetching pays: covering three of the
            // four dependent accesses beats covering only the bucket,
            // on every system. (The paper further finds depth 4 a net
            // loss everywhere; on our scaled model that last-node cost
            // shows clearly only on the A57, whose single page-table
            // walker serialises the extra address-generation loads —
            // so the suite pins the depth3-over-depth1 claim instead.)
            let section = &derived[0];
            section
                .rows
                .iter()
                .map(|row| {
                    let d1 = row_value(section, &row.name, "depth=1");
                    let d3 = row_value(section, &row.name, "depth=3");
                    Check::new(
                        format!("deeper_stagger_pays_{}", row.name),
                        d3 > d1,
                        format!("depth3 {d3:.3} vs depth1 {d1:.3}"),
                    )
                })
                .collect()
        },
    }
}

// ---- Fig. 8 -------------------------------------------------------------

fn fig8(scale: Scale) -> Experiment {
    Experiment {
        spec: ExperimentSpec {
            name: "fig8",
            title: "Fig. 8 — Haswell: % extra dynamic instructions",
            scale,
            machines: vec![MachineConfig::haswell()],
            workloads: WorkloadId::ALL.to_vec(),
            variants: vec![
                Variant::baseline(),
                Variant::auto_default(),
                manual_variant(),
            ],
            filter: None,
            perf: false,
        },
        derive: |res| {
            let overhead = |variant: &str, w: WorkloadId| -> f64 {
                let (Some(v), Some(b)) = (
                    res.cell("haswell", w.name(), variant),
                    res.cell("haswell", w.name(), "baseline"),
                ) else {
                    return f64::NAN;
                };
                100.0 * v.stats().extra_instructions_vs(b.stats())
            };
            vec![TableSection::new(
                "Fig. 8 — Haswell: % extra dynamic instructions",
                vec!["auto_%".to_string(), "manual_%".to_string()],
                WorkloadId::ALL
                    .iter()
                    .map(|w| Row {
                        name: w.name().to_string(),
                        values: vec![overhead("auto", *w), overhead(MANUAL, *w)],
                    })
                    .collect(),
            )]
        },
        checks: |_res, derived| {
            // Prefetch code is never free: the pass must add dynamic
            // instructions on every benchmark, at every scale.
            let section = &derived[0];
            section
                .rows
                .iter()
                .map(|row| {
                    let auto = row_value(section, &row.name, "auto_%");
                    Check::new(
                        format!("auto_adds_instructions_{}", row.name),
                        auto > 0.0,
                        format!("auto overhead {auto:.1}%"),
                    )
                })
                .collect()
        },
    }
}

// ---- Fig. 9 -------------------------------------------------------------

fn fig9(scale: Scale) -> Experiment {
    let mut variants = Vec::new();
    for &cores in &FIG9_CORES {
        variants.push(Variant::Multicore { cores, auto: false });
        variants.push(Variant::Multicore { cores, auto: true });
    }
    Experiment {
        spec: ExperimentSpec {
            name: "fig9",
            title: "Fig. 9 — IS on Haswell: normalised multicore throughput",
            scale,
            machines: vec![MachineConfig::haswell()],
            workloads: vec![WorkloadId::Is],
            variants,
            filter: None,
            perf: false,
        },
        derive: |res| {
            let makespan = |variant: &str| -> f64 {
                res.cell("haswell", "IS", variant)
                    .map_or(f64::NAN, |c| c.max_cycles() as f64)
            };
            let t1 = makespan("mc1_baseline");
            vec![TableSection::new(
                "Fig. 9 — IS on Haswell: normalised multicore throughput",
                vec!["no-prefetch".to_string(), "prefetch".to_string()],
                FIG9_CORES
                    .iter()
                    .map(|&n| Row {
                        name: format!("{n} cores"),
                        values: vec![
                            n as f64 * t1 / makespan(&format!("mc{n}_baseline")),
                            n as f64 * t1 / makespan(&format!("mc{n}_auto")),
                        ],
                    })
                    .collect(),
            )]
        },
        checks: |res, derived| {
            let section = &derived[0];
            let mut checks = Vec::new();
            // Normalisation sanity: one no-prefetch copy on one core is
            // the unit by construction.
            let unit = row_value(section, "1 cores", "no-prefetch");
            checks.push(Check::new(
                "single_core_is_unit",
                (unit - 1.0).abs() < 1e-9,
                format!("1-core no-prefetch normalises to {unit:.6}"),
            ));
            if res.scale == Scale::Paper {
                // The paper's Fig. 9 claims, as they reproduce on the
                // scaled model: the shared memory system saturates
                // hard (four no-prefetch copies achieve well under 2×
                // aggregate — the paper measures under 1×), a single
                // prefetching copy clearly wins, and at full DRAM
                // saturation prefetching stays within noise of the
                // no-prefetch aggregate (its extra instructions cost a
                // percent or two once bandwidth, not latency, binds).
                let nopf4 = row_value(section, "4 cores", "no-prefetch");
                checks.push(Check::new(
                    "memory_system_saturates",
                    nopf4 < 2.0,
                    format!("4-core no-prefetch aggregate {nopf4:.3} < 2"),
                ));
                let pf1 = row_value(section, "1 cores", "prefetch");
                checks.push(Check::new(
                    "prefetch_wins_single_core",
                    pf1 > 1.0,
                    format!("1-core prefetch throughput {pf1:.3}"),
                ));
                for n in [2usize, 4] {
                    let name = format!("{n} cores");
                    let pf = row_value(section, &name, "prefetch");
                    let nopf = row_value(section, &name, "no-prefetch");
                    checks.push(Check::new(
                        format!("prefetch_not_harmful_at_{n}_cores"),
                        pf >= nopf * 0.95,
                        format!("prefetch {pf:.3} vs no-prefetch {nopf:.3}"),
                    ));
                }
            }
            checks
        },
    }
}

// ---- Fig. 10 ------------------------------------------------------------

fn fig10(scale: Scale) -> Experiment {
    Experiment {
        spec: ExperimentSpec {
            name: "fig10",
            title: "Fig. 10 — Haswell: prefetch speedup by page size",
            scale,
            machines: vec![
                MachineConfig::haswell()
                    .with_small_pages()
                    .with_name("haswell_small"),
                MachineConfig::haswell()
                    .with_huge_pages()
                    .with_name("haswell_huge"),
            ],
            workloads: vec![WorkloadId::Is, WorkloadId::Ra, WorkloadId::Hj2],
            variants: vec![Variant::baseline(), Variant::auto_default()],
            filter: None,
            perf: false,
        },
        derive: |res| {
            vec![TableSection::new(
                "Fig. 10 — Haswell: prefetch speedup by page size",
                vec!["small-pages".to_string(), "huge-pages".to_string()],
                [WorkloadId::Is, WorkloadId::Ra, WorkloadId::Hj2]
                    .iter()
                    .map(|w| Row {
                        name: w.name().to_string(),
                        values: vec![
                            res.speedup("haswell_small", w.name(), "auto"),
                            res.speedup("haswell_huge", w.name(), "auto"),
                        ],
                    })
                    .collect(),
            )]
        },
        checks: |res, derived| {
            if res.scale != Scale::Paper {
                return Vec::new();
            }
            // With 4 KiB pages, prefetching also warms the TLB, so the
            // speedup under small pages bounds the huge-page one for
            // the TLB-bound IS and RA (paper §6.2).
            let section = &derived[0];
            ["IS", "RA"]
                .iter()
                .map(|w| {
                    let small = row_value(section, w, "small-pages");
                    let huge = row_value(section, w, "huge-pages");
                    Check::new(
                        format!("tlb_side_benefit_{w}"),
                        small >= huge * 0.95,
                        format!("small {small:.3} vs huge {huge:.3}"),
                    )
                })
                .collect()
        },
    }
}

// ---- ablation ------------------------------------------------------------

/// The pass pipelines the ablation compares: the bare prefetch pass,
/// the local cleanup ladder (DCE alone, CSE + DCE), one global pass in
/// isolation (GVN + DCE), and the full global pipeline — the paper's
/// "later passes clean up the generated address code" step (§4/§5),
/// made measurable. Each entry is `(variant label, pipeline spec)`;
/// this const is the single source of the experiment's variant axis,
/// its static-cost columns, and its speedup tables. The first entry
/// must be the bare pass (the reference the others are checked
/// against), entries must only add cleanup (the monotonicity check
/// assumes it), and `swpf_cse_dce`/`swpf_full` must both be present
/// (the retained-code check compares them).
pub const ABLATION_PIPELINES: [(&str, &str); 5] = [
    ("swpf", "swpf"),
    ("swpf_dce", "swpf,dce"),
    ("swpf_cse_dce", "swpf,cse,dce"),
    ("swpf_gvn_dce", "swpf,gvn,dce"),
    ("swpf_full", "swpf,gvn,sccp,licm,cse,dce"),
];

/// Static cost of one workload's kernel per ablation pipeline
/// (deterministic pure functions of workload × scale × pipeline):
/// placed instructions in the baseline, placed (and loop-resident
/// placed) instructions after each [`ABLATION_PIPELINES`] entry, and
/// each entry's emitted prefetches.
struct StaticCost {
    base: usize,
    base_retained: usize,
    placed: Vec<usize>,
    retained: Vec<usize>,
    prefetches: Vec<usize>,
}

/// Placed instructions living in blocks inside some natural loop — the
/// per-iteration cost a pipeline actually retains. Total counts cannot
/// see LICM (it moves code, never removes it); this metric charges only
/// what still executes every iteration, so a hoist shows up as a win.
fn loop_resident_insts(m: &swpf_ir::Module) -> usize {
    use swpf_analysis::{DomTree, LoopForest};
    m.func_ids()
        .map(|fid| {
            let f = m.function(fid);
            let dom = DomTree::compute(f);
            let loops = LoopForest::compute(f, &dom);
            f.block_ids()
                .filter(|&b| loops.ids().any(|l| loops.get(l).contains(b)))
                .map(|b| f.block(b).insts.len())
                .sum::<usize>()
        })
        .sum()
}

/// Compile every workload through every ablation pipeline and count.
fn ablation_static_costs(scale: Scale) -> Vec<(WorkloadId, StaticCost)> {
    let placed = |m: &swpf_ir::Module| -> usize {
        m.func_ids().map(|f| m.function(f).num_placed_insts()).sum()
    };
    WorkloadId::ALL
        .iter()
        .map(|&id| {
            let w = id.instantiate(scale);
            let baseline = w.build_baseline();
            let mut cost = StaticCost {
                base: placed(&baseline),
                base_retained: loop_resident_insts(&baseline),
                placed: Vec::new(),
                retained: Vec::new(),
                prefetches: Vec::new(),
            };
            for (_, spec) in ABLATION_PIPELINES {
                let mut m = w.build_baseline();
                let report = swpf_core::run_on_module(&mut m, &PassConfig::with_pipeline(spec));
                cost.placed.push(placed(&m));
                cost.retained.push(loop_resident_insts(&m));
                cost.prefetches.push(report.total_prefetches());
            }
            (id, cost)
        })
        .collect()
}

/// One cell of the pipeline search the ablation's `searched` column
/// reports: evaluator-exact simulated cycles of the compiler's default
/// pipeline (bare `swpf`), the full heuristic pipeline, and the
/// exhaustive best over [`swpf_tune::PipelineSpace::paper_default`].
struct SearchedCell {
    machine: &'static str,
    workload: String,
    default_cycles: u64,
    full_cycles: u64,
    best_cycles: u64,
    chosen: String,
}

/// Exhaustively search the cleanup-pipeline space per workload ×
/// machine. The heuristic (full pipeline) and the bare default are both
/// candidates, so `best ≤ full` and `best ≤ default` by construction;
/// what the search *adds* is the exact margin, per cell.
fn ablation_searched_cells(scale: Scale, machines: &[MachineConfig]) -> Vec<SearchedCell> {
    use swpf_tune::{tune_cell, Evaluator, Exhaustive, PipelineSpace, Space};
    let space = PipelineSpace::paper_default();
    space.assert_well_formed();
    let default_config = PassConfig::default();
    let mut cells = Vec::new();
    for &id in &WorkloadId::ALL {
        let w = id.instantiate(scale);
        let mut eval = Evaluator::new(w.as_ref(), machines);
        for (mi, m) in machines.iter().enumerate() {
            let report = tune_cell(&Exhaustive, &space, mi, &mut eval, None);
            cells.push(SearchedCell {
                machine: m.name,
                workload: w.name().to_string(),
                default_cycles: eval.cycles(&default_config, mi),
                full_cycles: report.heuristic_cycles,
                best_cycles: report.chosen_cycles,
                chosen: report.chosen.pipeline.to_string(),
            });
        }
    }
    cells
}

fn ablation(scale: Scale) -> Experiment {
    let mut variants = vec![Variant::baseline()];
    variants.extend(
        ABLATION_PIPELINES
            .iter()
            .map(|&(label, spec)| Variant::Auto {
                label,
                config: PassConfig::with_pipeline(spec),
            }),
    );
    Experiment {
        spec: ExperimentSpec {
            name: "ablation",
            title: "Ablation — pass pipelines: static cleanup × speedup",
            scale,
            machines: MachineConfig::all_systems(),
            workloads: WorkloadId::ALL.to_vec(),
            variants,
            filter: None,
            perf: false,
        },
        derive: |res| {
            // Static pipeline costs: what the pass cloned, what the
            // cleanup passes took back (recomputed here — they are
            // deterministic functions of workload × scale × pipeline,
            // and compiling is milliseconds next to simulation).
            // `cloned` is relative to the bare first pipeline,
            // `eliminated` what the last (full-cleanup) one removed of
            // it; `pf_drift` must be 0 — cleanup never touches
            // prefetches (checked below from this table).
            let labels: Vec<&str> = ABLATION_PIPELINES.iter().map(|(l, _)| *l).collect();
            let costs = ablation_static_costs(res.scale);
            let mut columns = vec!["base".to_string()];
            columns.extend(labels.iter().map(ToString::to_string));
            columns.extend(["cloned", "eliminated", "prefetches", "pf_drift"].map(String::from));
            let static_rows = costs
                .iter()
                .map(|(w, c)| {
                    let bare = c.placed[0];
                    let full = *c.placed.last().expect("non-empty pipeline list");
                    let drift = c
                        .prefetches
                        .iter()
                        .map(|&p| p.abs_diff(c.prefetches[0]))
                        .max()
                        .unwrap_or(0);
                    let mut values = vec![c.base as f64];
                    values.extend(c.placed.iter().map(|&p| p as f64));
                    values.extend([
                        (bare - c.base) as f64,
                        (bare - full) as f64,
                        c.prefetches[0] as f64,
                        drift as f64,
                    ]);
                    Row {
                        name: w.name().to_string(),
                        values,
                    }
                })
                .collect();
            let mut sections = vec![TableSection::new(
                "Ablation (static) — placed instructions per pipeline",
                columns,
                static_rows,
            )];
            // Loop-resident placed instructions: the per-iteration cost
            // each pipeline retains. Total counts are blind to LICM
            // (a hoist moves code out of the loop without deleting it),
            // so the global-pass payoff is asserted on this table.
            let mut lr_columns = vec!["base".to_string()];
            lr_columns.extend(labels.iter().map(ToString::to_string));
            let lr_rows = costs
                .iter()
                .map(|(w, c)| {
                    let mut values = vec![c.base_retained as f64];
                    values.extend(c.retained.iter().map(|&p| p as f64));
                    Row {
                        name: w.name().to_string(),
                        values,
                    }
                })
                .collect();
            let mut lr = TableSection::new(
                "Ablation (static, loop-resident) — in-loop placed instructions per pipeline",
                lr_columns,
                lr_rows,
            );
            lr.notes.push(
                "instructions in blocks inside a natural loop: the per-iteration \
                 cost a pipeline retains (hoisted code leaves this count)"
                    .to_string(),
            );
            sections.push(lr);
            // The searched-pipeline column: exhaustive search over the
            // cleanup-pipeline space, evaluator-exact cycles per cell.
            let searched = ablation_searched_cells(res.scale, &res.machines);
            let mut srch = TableSection::new(
                "Ablation (searched) — simulated cycles: default vs. full vs. searched pipeline",
                ["default", "full", "searched"].map(String::from).to_vec(),
                searched
                    .iter()
                    .map(|c| Row {
                        name: format!("{}/{}", c.machine, c.workload),
                        values: vec![
                            c.default_cycles as f64,
                            c.full_cycles as f64,
                            c.best_cycles as f64,
                        ],
                    })
                    .collect(),
            );
            srch.notes.push(
                "default = the compiler's default pipeline (bare `swpf`); full = \
                 the heuristic `swpf,gvn,sccp,licm,cse,dce`; searched = exhaustive \
                 best over the pipeline space (both references are candidates, so \
                 searched ≤ min(default, full) by construction)"
                    .to_string(),
            );
            for c in &searched {
                if c.chosen != swpf_tune::DEFAULT_FULL_PIPELINE {
                    srch.notes.push(format!(
                        "{}/{}: searched pipeline `{}`",
                        c.machine, c.workload, c.chosen
                    ));
                }
            }
            sections.push(srch);
            // Speedup over no-prefetch per machine, per pipeline, plus
            // the searched column: the full pipeline's measured speedup
            // scaled by the searched pipeline's exact cycle margin.
            sections.extend(res.machines.iter().map(|m| {
                let mut rows = speedup_rows(res, m.name, &WorkloadId::ALL, &labels);
                let mut searched_col = Vec::new();
                for r in &mut rows {
                    if r.name == "Geomean" {
                        continue;
                    }
                    let cell = searched
                        .iter()
                        .find(|c| c.machine == m.name && c.workload == r.name)
                        .expect("one searched cell per machine × workload");
                    let full_speedup = r.values[labels.len() - 1];
                    let v = full_speedup * cell.full_cycles as f64 / cell.best_cycles as f64;
                    r.values.push(v);
                    searched_col.push(v);
                }
                if let Some(g) = rows.iter_mut().find(|r| r.name == "Geomean") {
                    g.values.push(crate::geomean(&searched_col));
                }
                let mut columns: Vec<String> = labels.iter().map(ToString::to_string).collect();
                columns.push("searched".to_string());
                TableSection::new(
                    format!("Ablation ({}) — speedup vs. no prefetching", m.name),
                    columns,
                    rows,
                )
            }));
            sections
        },
        checks: |res, derived| {
            let (bare, full) = (
                ABLATION_PIPELINES[0].0,
                ABLATION_PIPELINES[ABLATION_PIPELINES.len() - 1].0,
            );
            let mut checks = Vec::new();
            let stat = find_section(derived, "(static)").expect("static section");
            // The cleanup passes must strictly win somewhere: on at
            // least one workload, cse+dce removes part of what the
            // prefetch pass cloned. Static, so asserted at every scale.
            let reduced = stat
                .rows
                .iter()
                .filter(|r| row_value(stat, &r.name, "eliminated") > 0.0)
                .count();
            checks.push(Check::new(
                "cleanup_strictly_reduces_cloned_code",
                reduced >= 1,
                format!(
                    "cse+dce eliminated instructions on {reduced} of {} workloads",
                    stat.rows.len()
                ),
            ));
            // Cleanup only removes: each added cleanup pass may only
            // shrink the kernel, and it never touches the emitted
            // prefetches (pf_drift is the max deviation from the bare
            // pipeline's count).
            let monotone = stat.rows.iter().all(|r| {
                ABLATION_PIPELINES
                    .windows(2)
                    .all(|w| row_value(stat, &r.name, w[1].0) <= row_value(stat, &r.name, w[0].0))
            });
            checks.push(Check::new(
                "cleanup_is_monotone",
                monotone,
                "each added cleanup pass only shrinks the kernel".to_string(),
            ));
            let prefetches_kept = stat
                .rows
                .iter()
                .all(|r| row_value(stat, &r.name, "pf_drift") == 0.0);
            checks.push(Check::new(
                "cleanup_preserves_prefetches",
                prefetches_kept,
                format!("{bare} and {full} emit identical prefetch counts"),
            ));
            // The global passes must pay beyond local cleanup: on most
            // workloads the full pipeline retains strictly fewer
            // loop-resident instructions than cse+dce (GVN merges
            // cross-block duplicates, LICM hoists invariant clamp code
            // out of the loop). Static, so asserted at every scale.
            let lr = find_section(derived, "loop-resident").expect("loop-resident section");
            let strict = lr
                .rows
                .iter()
                .filter(|r| {
                    row_value(lr, &r.name, "swpf_full") < row_value(lr, &r.name, "swpf_cse_dce")
                })
                .count();
            checks.push(Check::new(
                "global_passes_strictly_reduce_retained_code",
                strict * 7 >= lr.rows.len() * 5,
                format!(
                    "full pipeline retains strictly fewer loop-resident \
                     instructions than cse+dce on {strict} of {} workloads",
                    lr.rows.len()
                ),
            ));
            // The searched pipeline never loses to either reference
            // (both are candidates of the space) and must strictly beat
            // the compiler's default pipeline somewhere — the payoff of
            // searching pipelines at all.
            let srch = find_section(derived, "(searched)").expect("searched section");
            let never_worse = srch.rows.iter().all(|r| {
                let s = row_value(srch, &r.name, "searched");
                s <= row_value(srch, &r.name, "full") && s <= row_value(srch, &r.name, "default")
            });
            checks.push(Check::new(
                "searched_pipeline_never_worse",
                never_worse,
                "per cell, searched cycles ≤ both the default and the full pipeline".to_string(),
            ));
            let strict_wins = srch
                .rows
                .iter()
                .filter(|r| {
                    row_value(srch, &r.name, "searched") < row_value(srch, &r.name, "default")
                })
                .count();
            checks.push(Check::new(
                "searched_pipeline_strictly_beats_default",
                strict_wins >= 1,
                format!(
                    "searched pipeline strictly beats the default on \
                     {strict_wins} of {} cells",
                    srch.rows.len()
                ),
            ));
            // Cleanup shrinks the address code but must not change what
            // is prefetched: per machine, the geomean speedup of the
            // full pipeline stays within 10% of the bare pass.
            for m in &res.machines {
                let section =
                    find_section(derived, &format!("({})", m.name)).expect("machine section");
                let bare_v = row_value(section, "Geomean", bare);
                let full_v = row_value(section, "Geomean", full);
                checks.push(Check::new(
                    format!("cleanup_speedup_within_tolerance_{}", m.name),
                    full_v >= bare_v * 0.9 && full_v <= bare_v * 1.1,
                    format!("full-pipeline geomean {full_v:.3} vs bare {bare_v:.3}"),
                ));
            }
            checks
        },
    }
}

// ---- trace analytics -----------------------------------------------------

/// The two kernel builds profiled per workload: the plain baseline and
/// the pass-prefetched `auto` build. Labels double as harness trace
/// keys, so the profiles stream from (and warm) the same disk cache the
/// figure grids use.
const ANALYTICS_VARIANTS: [&str; 2] = ["baseline", "auto"];

/// Stream one kernel's cached trace — or record it functionally (one
/// interpretation, no timing model in the loop) on a miss — and profile
/// it. With a cache directory the fresh recording is persisted for the
/// next consumer.
fn workload_analytics(
    id: WorkloadId,
    variant: &str,
    scale: Scale,
    dir: Option<&std::path::Path>,
) -> swpf_trace::TraceAnalytics {
    use crate::harness::{kernel_fingerprint, open_streaming, store_trace, trace_cache_path};

    let w = id.instantiate(scale);
    let module = match variant {
        "auto" => crate::auto_module(w.as_ref(), &PassConfig::default()),
        _ => w.build_baseline(),
    };
    let func = module
        .find_function("kernel")
        .expect("workload kernels are named `kernel`");
    let text_hash = swpf_trace::fnv64(swpf_ir::printer::print_module(&module).as_bytes());
    let fingerprint = kernel_fingerprint(w.name(), scale, 1, text_hash);
    let path = dir.map(|d| trace_cache_path(d, scale, w.name(), variant));

    if let Some(p) = &path {
        if let Some(replay) = open_streaming(p, fingerprint) {
            match swpf_trace::analyze_streaming(&replay) {
                Ok(a) => return a,
                Err(e) => eprintln!("warning: re-recording {}: {e}", p.display()),
            }
        }
    }

    let image = std::sync::Arc::new(swpf_ir::exec::ExecImage::build(&module));
    let mut interp = swpf_ir::interp::Interp::new();
    let args = w.setup(&mut interp);
    let mut recorder = swpf_trace::TraceRecorder::new(1, fingerprint);
    interp
        .run_with_image(image, func, &args, recorder.stream(0))
        .unwrap_or_else(|t| panic!("{}/{variant} trapped: {t}", w.name()));
    let trace = recorder.finish();
    if let Some(p) = &path {
        store_trace(p, &trace, None);
    }
    swpf_trace::analyze_trace(&trace).expect("freshly recorded trace is well-formed")
}

/// Reuse-distance percentile over the *warm* touches, reported as the
/// upper bound of the quantile's bucket in 64 B lines (bucket 0 —
/// distance 0, a same-line re-touch — reports 1). `0.0` when every
/// touch was cold, so derived values stay finite.
fn reuse_percentile(a: &swpf_trace::TraceAnalytics, q: f64) -> f64 {
    let warm: u64 = a.reuse.buckets().iter().sum();
    if warm == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let target = ((q * warm as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &n) in a.reuse.buckets().iter().enumerate() {
        seen += n;
        if seen >= target {
            return if i == 0 { 1.0 } else { (1u64 << i) as f64 };
        }
    }
    (1u64 << (swpf_trace::REUSE_BUCKETS - 1)) as f64
}

/// Trace-derived analytics over the whole single-core kernel corpus:
/// reuse-distance histograms, indirection-depth profiles, and
/// MLP-over-time — computed from recorded event streams, never by
/// re-simulating a timing model. Under `--trace-dir` the traces stream
/// block-at-a-time from the shared cache in bounded memory.
fn trace_analytics(scale: Scale) -> Experiment {
    Experiment {
        spec: ExperimentSpec {
            name: "trace_analytics",
            title: "Trace analytics — reuse distance, indirection depth, MLP",
            scale,
            machines: vec![],
            workloads: vec![],
            variants: vec![],
            filter: None,
            perf: false,
        },
        derive: |res| {
            let dir = match res.trace_policy.as_str() {
                "off" | "memory" => None,
                p => Some(std::path::PathBuf::from(p)),
            };
            let mut corpus = Vec::new();
            let mut depth = Vec::new();
            let mut mlp = Vec::new();
            #[allow(clippy::cast_precision_loss)]
            for id in WorkloadId::ALL {
                for variant in ANALYTICS_VARIANTS {
                    let a = workload_analytics(id, variant, res.scale, dir.as_deref());
                    let name = format!("{}/{variant}", id.name());
                    corpus.push(Row {
                        name: name.clone(),
                        values: vec![
                            a.events as f64,
                            a.reuse.touches() as f64,
                            a.reuse.cold() as f64,
                            reuse_percentile(&a, 0.50),
                            reuse_percentile(&a, 0.90),
                        ],
                    });
                    let h = a.indirection.histogram();
                    depth.push(Row {
                        name: name.clone(),
                        values: vec![
                            a.indirection.loads() as f64,
                            h[0] as f64,
                            h[1] as f64,
                            h[2] as f64,
                            h[3..].iter().sum::<u64>() as f64,
                            100.0 * a.indirection.indirect_fraction(),
                        ],
                    });
                    mlp.push(Row {
                        name,
                        values: vec![
                            a.mlp.windows() as f64,
                            a.mlp.mean_independent(),
                            100.0 * a.mlp.dependent_fraction(),
                        ],
                    });
                }
            }
            let cols = |names: &[&str]| names.iter().map(ToString::to_string).collect();
            vec![
                TableSection::new(
                    "Trace corpus — reuse distance (64 B lines)",
                    cols(&["events", "touches", "cold", "p50_lines", "p90_lines"]),
                    corpus,
                ),
                TableSection::new(
                    "Indirection depth (dependent loads per address)",
                    cols(&["loads", "d0", "d1", "d2", "d3plus", "indirect_pct"]),
                    depth,
                ),
                TableSection::new(
                    "Memory-level parallelism over time",
                    cols(&["windows", "mean_indep", "dep_pct"]),
                    mlp,
                ),
            ]
        },
        checks: |_res, derived| {
            let corpus = find_section(derived, "reuse distance");
            let depth = find_section(derived, "Indirection depth");
            let mlp = find_section(derived, "parallelism");
            let expected = 2 * WorkloadId::ALL.len();
            let mut checks = Vec::new();
            let complete = [&corpus, &depth, &mlp]
                .iter()
                .all(|s| s.is_some_and(|s| s.rows.len() == expected));
            checks.push(Check::new(
                "profiles_complete",
                complete,
                format!("{expected} kernel profiles in each section"),
            ));
            let nonempty =
                corpus.is_some_and(|s| s.rows.iter().all(|r| r.values.first() > Some(&0.0)));
            checks.push(Check::new(
                "corpus_nonempty",
                nonempty,
                "every kernel trace contains events".to_string(),
            ));
            // IS is the paper's motivating a[b[i]] kernel: its baseline
            // must profile as indirect even on tiny inputs.
            let is_pct = depth.map_or(f64::NAN, |s| row_value(s, "IS/baseline", "indirect_pct"));
            checks.push(Check::new(
                "indirect_loads_detected",
                is_pct > 0.0,
                format!("IS baseline: {is_pct:.1}% of loads are indirect"),
            ));
            let sampled =
                mlp.is_some_and(|s| s.rows.iter().all(|r| r.values.first() >= Some(&1.0)));
            checks.push(Check::new(
                "mlp_sampled",
                sampled,
                "every kernel yields at least one MLP window".to_string(),
            ));
            checks
        },
    }
}

// ---- prefetch_profile ----------------------------------------------------

/// Aggregate the per-core profiles of the given cells into one outcome
/// partition (summed across sites, cores, and cells).
fn aggregate_profiles<'a>(cells: impl Iterator<Item = &'a CellResult>) -> SiteProfile {
    PcProfile::aggregate(cells.flat_map(|c| c.perf.iter())).totals()
}

/// Percentage share of `part` in `total` (0 when nothing was issued).
#[allow(clippy::cast_precision_loss)]
fn share(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// A cell's attributed demand-load stall cycles, in millions.
#[allow(clippy::cast_precision_loss)]
fn stall_millions(c: &CellResult) -> f64 {
    PcProfile::aggregate(c.perf.iter()).total_stall_cycles() as f64 / 1e6
}

/// Variant label of column `ci` of the profile sweep (the manual
/// distances, then `auto`).
fn profile_label(ci: usize) -> String {
    PROFILE_DISTANCES
        .get(ci)
        .map_or_else(|| "auto".to_string(), |c| format!("manual_c{c}"))
}

/// The `prefetch_profile` experiment: run the Fig. 6 look-ahead sweep
/// (extended to `c = 2`, plus the auto pass) with per-PC prefetch
/// profiling enabled, and chart how each issued prefetch's *outcome* —
/// timely, late, early-evicted, redundant, dropped, unused — migrates
/// with the distance. This is the instrumented explanation for Fig. 6's
/// inverted-U: too short a distance classifies late, too long a
/// distance classifies early-evicted, and the tuned distance maximises
/// the timely share.
fn prefetch_profile(scale: Scale) -> Experiment {
    let mut variants = vec![Variant::baseline()];
    variants.extend(
        PROFILE_DISTANCES
            .iter()
            .map(|&c| Variant::Kernel(KernelVariant::Manual { look_ahead: c })),
    );
    variants.push(Variant::auto_default());
    Experiment {
        spec: ExperimentSpec {
            name: "prefetch_profile",
            title: "Prefetch efficacy — per-site outcome profile vs. look-ahead",
            scale,
            machines: MachineConfig::all_systems(),
            workloads: WorkloadId::FIG6.to_vec(),
            variants,
            filter: None,
            perf: true,
        },
        derive: |res| {
            let ncols = PROFILE_DISTANCES.len() + 1;
            let columns: Vec<String> = PROFILE_DISTANCES
                .iter()
                .map(|c| format!("c={c}"))
                .chain(std::iter::once("auto".to_string()))
                .collect();
            let mut sections = Vec::new();
            // Per machine: the timely share along the sweep — the
            // instrumented counterpart of that machine's Fig. 6 curve.
            for m in &res.machines {
                sections.push(TableSection::new(
                    format!("Prefetch profile — {}: timely share (%)", m.name),
                    columns.clone(),
                    WorkloadId::FIG6
                        .iter()
                        .map(|w| Row {
                            name: w.name().to_string(),
                            values: (0..ncols)
                                .map(|ci| {
                                    let t = aggregate_profiles(
                                        res.cell(m.name, w.name(), &profile_label(ci)).into_iter(),
                                    );
                                    share(t.timely, t.issued)
                                })
                                .collect(),
                        })
                        .collect(),
                ));
            }
            // Summary: the outcome migration along the sweep, aggregated
            // over the whole grid — late fades, dropped grows, and the
            // mean lead time stretches with the distance.
            sections.push(TableSection::new(
                "Prefetch outcome shares (%) by look-ahead — whole grid",
                [
                    "timely",
                    "late",
                    "early_evict",
                    "redundant",
                    "dropped",
                    "unused",
                    "lead_mean",
                ]
                .iter()
                .map(ToString::to_string)
                .collect(),
                (0..ncols)
                    .map(|ci| {
                        let label = profile_label(ci);
                        let t = aggregate_profiles(res.cells.iter().filter(|c| c.variant == label));
                        Row {
                            name: label,
                            values: vec![
                                share(t.timely, t.issued),
                                share(t.late, t.issued),
                                share(t.early_evicted, t.issued),
                                share(t.redundant(), t.issued),
                                share(t.dropped, t.issued),
                                share(t.unused_at_end, t.issued),
                                t.lead_cycles.mean(),
                            ],
                        }
                    })
                    .collect(),
            ));
            // Stall attribution: where the simulated demand-load stall
            // cycles land, before and after prefetching.
            sections.push(TableSection::new(
                "Attributed demand-load stall cycles (millions)",
                ["baseline", MANUAL, "auto"]
                    .iter()
                    .map(ToString::to_string)
                    .collect(),
                res.machines
                    .iter()
                    .flat_map(|m| {
                        WorkloadId::FIG6.iter().map(move |w| Row {
                            name: format!("{}/{}", m.name, w.name()),
                            values: ["baseline", MANUAL, "auto"]
                                .iter()
                                .map(|v| {
                                    res.cell(m.name, w.name(), v)
                                        .map_or(f64::NAN, stall_millions)
                                })
                                .collect(),
                        })
                    })
                    .collect(),
            ));
            sections
        },
        checks: |res, _derived| {
            let mut checks = Vec::new();
            // Every cell must carry one profile per simulated core.
            let missing = res
                .cells
                .iter()
                .filter(|c| c.perf.len() != c.cores.len())
                .count();
            checks.push(Check::new(
                "perf_profiles_present",
                missing == 0,
                format!(
                    "{missing} of {} cells lack per-core profiles",
                    res.cells.len()
                ),
            ));
            // The outcome partition must conserve issued prefetches and
            // agree with the memory system's unconditional counters, on
            // every core of every cell.
            let (mut bad, mut total) = (0usize, 0usize);
            for c in &res.cells {
                for (s, p) in c.cores.iter().zip(&c.perf) {
                    total += 1;
                    let t = p.totals();
                    let ok = p.conserved()
                        && t.issued == s.mem.sw_prefetches
                        && t.dropped == s.mem.sw_prefetches_dropped
                        && t.redundant_resident == s.mem.sw_prefetches_redundant_resident
                        && t.redundant_inflight == s.mem.sw_prefetches_redundant_inflight;
                    bad += usize::from(!ok);
                }
            }
            checks.push(Check::new(
                "perf_partition_conserved",
                bad == 0 && total > 0,
                format!("{bad} of {total} core profiles violate the outcome partition"),
            ));
            // Outcome migration along the sweep, read where the signal
            // is clean at every scale: the in-order machines (cf. the
            // fig6 checks — out-of-order overlap can mask either
            // failure mode).
            let in_order = in_order_names(res);
            let agg = |variant: &str| {
                aggregate_profiles(
                    res.cells
                        .iter()
                        .filter(|c| c.variant == variant && in_order.contains(&c.machine)),
                )
            };
            let lo = agg("manual_c2");
            let hi = agg("manual_c256");
            let (late_lo, late_hi) = (share(lo.late, lo.issued), share(hi.late, hi.issued));
            let (early_lo, drop_lo) = (
                share(lo.early_evicted, lo.issued),
                share(lo.dropped, lo.issued),
            );
            let drop_hi = share(hi.dropped, hi.issued);
            let strict = res.scale == Scale::Paper;
            checks.push(Check::new(
                "late_fades_with_distance",
                if strict {
                    late_lo > late_hi
                } else {
                    late_lo >= late_hi
                },
                format!("late share (in-order): {late_lo:.1}% at c=2 vs {late_hi:.1}% at c=256"),
            ));
            // The long-distance failure mode in this memory system is
            // queue pressure, not capacity: a 256-iteration lead window
            // is far smaller than any cache level, so prefetched lines
            // are never evicted before use (early_evicted stays 0) —
            // instead the deeper in-flight window overruns the prefetch
            // queue and issues get dropped.
            checks.push(Check::new(
                "drops_grow_with_distance",
                if strict {
                    drop_hi > drop_lo
                } else {
                    drop_hi >= drop_lo
                },
                format!("dropped share (in-order): {drop_lo:.1}% at c=2 vs {drop_hi:.1}% at c=256"),
            ));
            checks.push(Check::new(
                "lead_time_grows_with_distance",
                if strict {
                    hi.lead_cycles.mean() > lo.lead_cycles.mean()
                } else {
                    hi.lead_cycles.mean() >= lo.lead_cycles.mean()
                },
                format!(
                    "mean lead (in-order): {:.0} cyc at c=2 vs {:.0} cyc at c=256",
                    lo.lead_cycles.mean(),
                    hi.lead_cycles.mean()
                ),
            ));
            if strict {
                // The failure mode flips along the sweep: too short
                // fails on latency (late dominates every other failure
                // class at c=2), too long fails on queue pressure (at
                // c=256 dropped issues outweigh the now-negligible late
                // ones).
                checks.push(Check::new(
                    "short_distance_fails_late",
                    late_lo > early_lo && late_lo > drop_lo,
                    format!(
                        "at c=2 (in-order): late {late_lo:.1}% vs early {early_lo:.1}%, dropped {drop_lo:.1}%"
                    ),
                ));
                checks.push(Check::new(
                    "long_distance_wastes_bandwidth",
                    drop_hi > late_hi,
                    format!("at c=256 (in-order): dropped {drop_hi:.1}% vs late {late_hi:.1}%"),
                ));
                // Grid aggregate: the timely share peaks at an interior
                // look-ahead, not at either extreme — the profile's
                // explanation for why the Fig. 6 sweep has an argmax.
                let grid = |variant: String| {
                    let t = aggregate_profiles(res.cells.iter().filter(|c| c.variant == variant));
                    share(t.timely, t.issued)
                };
                let (t2g, t256g) = (grid("manual_c2".into()), grid("manual_c256".into()));
                let (peak_c, peak) = PROFILE_DISTANCES[1..PROFILE_DISTANCES.len() - 1]
                    .iter()
                    .map(|c| (*c, grid(format!("manual_c{c}"))))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("sweep has interior points");
                checks.push(Check::new(
                    "timely_peaks_at_interior_distance",
                    peak > t2g && peak > t256g,
                    format!(
                        "timely share peaks at c={peak_c} ({peak:.1}%) vs c=2 {t2g:.1}%, c=256 {t256g:.1}%"
                    ),
                ));
                // Per cell: the cycle-tuned distance strictly improves
                // the timely share over the too-short extreme, on the
                // machines where the distance decides the outcome. (It
                // does not always beat c=256 — timely share alone keeps
                // growing past the cycle optimum while drops and
                // redundancy erode the benefit, which is exactly why
                // tuning minimises cycles rather than maximising any
                // single outcome share.)
                for m in res.machines.iter().filter(|m| m.core == CoreKind::InOrder) {
                    for w in WorkloadId::FIG6 {
                        let cycles = |label: &str| {
                            res.cell(m.name, w.name(), label)
                                .map_or(u64::MAX, CellResult::max_cycles)
                        };
                        let tuned = PROFILE_DISTANCES
                            .iter()
                            .copied()
                            .min_by_key(|c| cycles(&format!("manual_c{c}")))
                            .expect("sweep is non-empty");
                        let timely = |label: &str| {
                            let t =
                                aggregate_profiles(res.cell(m.name, w.name(), label).into_iter());
                            share(t.timely, t.issued)
                        };
                        let best = timely(&format!("manual_c{tuned}"));
                        let t2 = timely("manual_c2");
                        checks.push(Check::new(
                            format!("tuned_timely_beats_short_{}_{}", m.name, w.name()),
                            best > t2,
                            format!("c={tuned}: timely {best:.1}% vs c=2 {t2:.1}%"),
                        ));
                    }
                }
            }
            checks
        },
    }
}

// ---- tune ----------------------------------------------------------------

/// The searched `tune` experiment: find the best look-ahead (and
/// stride-companion toggle, for hill-climbing) per workload × machine,
/// and quantify how close the paper's static `c = 64` heuristic sits to
/// the exhaustive oracle. Tuning targets the in-order systems — the
/// machines that cannot hide indirect misses themselves, where the
/// distance actually decides the outcome — over the Fig. 6 sweep
/// workloads.
#[must_use]
pub fn tune(scale: Scale) -> crate::tune::TuneExperiment {
    crate::tune::TuneExperiment {
        name: "tune",
        title: "Tuning — searched look-ahead vs. the paper's c=64 heuristic",
        scale,
        machines: vec![MachineConfig::xeon_phi(), MachineConfig::a53()],
        workloads: WorkloadId::FIG6.to_vec(),
        space: swpf_tune::SearchSpace::paper_default(),
        hill_budget: 16,
    }
}

/// The searched `pipeline_search` experiment: per workload × machine,
/// search the cleanup-pipeline space for the ordering that minimises
/// simulated cycles, against two references — the compiler's default
/// pipeline (bare `swpf`) and the full heuristic pipeline
/// (`swpf,gvn,sccp,licm,cse,dce`). All machine models participate: the
/// pipeline decides static code quality, which every core model pays
/// for differently.
#[must_use]
pub fn pipeline_search(scale: Scale) -> crate::pipeline_search::PipelineSearchExperiment {
    crate::pipeline_search::PipelineSearchExperiment {
        name: "pipeline_search",
        title: "Pipeline search — searched pass ordering vs. the default pipelines",
        scale,
        machines: MachineConfig::all_systems(),
        workloads: WorkloadId::ALL.to_vec(),
        space: swpf_tune::PipelineSpace::paper_default(),
        hill_budget: 5,
    }
}

/// Print the experiment catalogue, machine models, and workloads —
/// the `--list` mode of the `all` driver. Runs nothing.
pub fn print_catalog() {
    println!("experiments:");
    for name in EXPERIMENTS {
        let title = match by_name(name, Scale::Test) {
            Some(exp) => exp.spec.title,
            None if name == "tune" => tune(Scale::Test).title,
            None => pipeline_search(Scale::Test).title,
        };
        println!("  {name:<8} {title}");
    }
    println!(
        "\nfilters (--bin all):\n  \
         --only <name>   run only the named experiment(s); repeatable, or\n                  \
         comma-separated (e.g. `--only ablation` or `--only fig4,fig9,tune`)\n  \
         --skip <name>   run the default set without the named experiment(s)\n  \
         (default set: every experiment above except the searched `tune` and\n  \
         `pipeline_search`, which have their own binaries; `--only tune` or\n  \
         `--only pipeline_search` includes them here)"
    );
    println!(
        "\nprofiling:\n  \
         --profile <path> (or SWPF_PROFILE=<path>) records the selected run\n  \
         through swpf-obs into chrome-trace JSON (chrome://tracing, Perfetto,\n  \
         or `--bin prof_report <path>`); composes with --only/--skip, and each\n  \
         artifact gains a windowed `profile` section\n  \
         --perf (or SWPF_PERF=1) enables per-PC prefetch-efficacy profiling for\n  \
         every cell (the `prefetch_profile` experiment enables it itself); cells\n  \
         gain an additive `perf` member, rendered per line by `--bin perf_annotate`"
    );
    println!("\nmachines:");
    for m in MachineConfig::all_systems() {
        println!("  {:<10} ({})", m.name, m.core_kind_name());
    }
    println!("\nworkloads:");
    for w in WorkloadId::ALL {
        println!("  {}", w.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::expand;

    #[test]
    fn every_name_resolves() {
        for name in ALL_NAMES {
            assert!(by_name(name, Scale::Test).is_some(), "{name}");
        }
        assert!(by_name("fig3", Scale::Test).is_none());
    }

    #[test]
    fn catalogue_is_the_grid_experiments_plus_the_searched_ones() {
        assert_eq!(EXPERIMENTS[..ALL_NAMES.len()], ALL_NAMES);
        assert_eq!(EXPERIMENTS[ALL_NAMES.len()..], ["tune", "pipeline_search"]);
        for name in &EXPERIMENTS[ALL_NAMES.len()..] {
            assert!(by_name(name, Scale::Test).is_none(), "{name} is searched");
        }
        let exp = tune(Scale::Test);
        assert!(exp.machines.len() >= 2);
        assert!(exp.workloads.len() >= 3);
        let ps = pipeline_search(Scale::Test);
        assert!(ps.machines.len() >= 3);
        assert_eq!(ps.workloads.len(), WorkloadId::ALL.len());
        assert!(ps.hill_budget >= 2, "hill must get past its seed");
    }

    #[test]
    fn fig4_grid_shape() {
        let exp = fig4(Scale::Test);
        // 4 machines × 7 workloads × {baseline, auto, manual} + 7 ICC
        // cells on the Phi only.
        assert_eq!(expand(&exp.spec).len(), 4 * 7 * 3 + 7);
    }

    #[test]
    fn fig9_runs_six_multicore_cells_from_two_modules() {
        let exp = fig9(Scale::Test);
        let jobs = expand(&exp.spec);
        assert_eq!(jobs.len(), 6);
        let keys: std::collections::HashSet<String> =
            exp.spec.variants.iter().map(Variant::module_key).collect();
        assert_eq!(keys.len(), 2, "all core counts share two kernel modules");
    }

    #[test]
    fn table1_expands_to_no_jobs() {
        assert!(expand(&table1(Scale::Test).spec).is_empty());
    }
}
