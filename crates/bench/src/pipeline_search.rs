//! The `pipeline_search` experiment: search-based selection of the
//! cleanup pass *pipeline* over the workload × machine grid.
//!
//! Where `tune` searches the prefetch pass's knob space (look-ahead
//! distance, toggles), this experiment searches the categorical axis of
//! [`PipelineSpace`]: which cleanup passes run after prefetch
//! generation, in which order. Two strategies per cell — the exhaustive
//! oracle over the curated candidate set and a budgeted hill-climb
//! along the probe order — against two references: the compiler's
//! **default** pipeline (bare `swpf`, what `PassConfig::default()`
//! compiles) and the **full** heuristic pipeline
//! (`swpf,gvn,sccp,licm,cse,dce`, the space's seed). Both references
//! are candidates, so the searched pipeline is never worse than either
//! by construction; the experiment reports the exact per-cell margin.
//!
//! Like `tune`, this is a *searched* experiment: it runs through
//! [`run_search`] rather than the declarative grid harness, but feeds
//! the same downstream machinery — [`CellResult`]s (one per evaluated
//! point × machine), derived [`TableSection`]s, [`Check`] verdicts, and
//! a `RESULTS/pipeline_search.json` artifact.

use crate::harness::{
    print_sections, profile_window_json, structural_checks, write_artifact_with_profile,
    CellResult, Check, ExperimentResult, Row, TableSection,
};
use std::path::Path;
use std::time::Instant;
use swpf_core::PassConfig;
use swpf_sim::MachineConfig;
use swpf_tune::{
    tune_cell, Evaluator, Exhaustive, HillClimb, PipelineSpace, Space, Strategy, TuneReport,
};
use swpf_workloads::{Scale, WorkloadId};

/// A searched pipeline-selection experiment: the grid axes plus the
/// candidate pipeline space and the hill-climb budget.
pub struct PipelineSearchExperiment {
    /// Artifact name ("pipeline_search"); also the `RESULTS/<name>.json`
    /// stem.
    pub name: &'static str,
    /// Human title for tables and logs.
    pub title: &'static str,
    /// Workload scale to search at.
    pub scale: Scale,
    /// Machines searched for (each gets its own best pipeline).
    pub machines: Vec<MachineConfig>,
    /// Workloads searched.
    pub workloads: Vec<WorkloadId>,
    /// The candidate pipeline space.
    pub space: PipelineSpace,
    /// Evaluation budget of the hill-climbing strategy.
    pub hill_budget: usize,
}

/// One workload's searched results: per machine, the oracle and hill
/// reports plus the default-pipeline reference cycles, and per-strategy
/// evaluator costs.
struct WorkloadSearch {
    /// `[machine]` — (oracle, hill, default-pipeline cycles).
    cells: Vec<(TuneReport, TuneReport, u64)>,
    /// Per-strategy (interpretations, wall seconds), oracle then hill.
    costs: [(usize, f64); 2],
}

/// One machine's strategy outcome: the tune report plus the
/// default-pipeline reference cycles on that machine.
type MachineReport = (TuneReport, u64);

/// Run one strategy over every machine of the grid on a fresh
/// evaluator; returns the per-machine reports (plus the
/// default-pipeline reference cycles per machine), the evaluated points
/// as cells, and the strategy's (interpretations, wall-seconds) cost.
fn run_strategy(
    exp: &PipelineSearchExperiment,
    workload: WorkloadId,
    strategy: &dyn Strategy,
    oracles: Option<&[MachineReport]>,
) -> (Vec<MachineReport>, Vec<CellResult>, (usize, f64)) {
    let w = workload.instantiate(exp.scale);
    let default_config = PassConfig::default();
    let mut eval = Evaluator::new(w.as_ref(), &exp.machines);
    let t0 = Instant::now();
    let reports: Vec<(TuneReport, u64)> = (0..exp.machines.len())
        .map(|mi| {
            let oracle = oracles.map(|o| o[mi].0.chosen_cycles);
            let report = tune_cell(strategy, &exp.space, mi, &mut eval, oracle);
            (report, eval.cycles(&default_config, mi))
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();

    // Every distinct point this strategy evaluated becomes one cell per
    // machine (the fan-out gave every machine its stats for free). The
    // variant label carries the pipeline through `cache_key`.
    let mut cells = Vec::new();
    let wall_each = wall * 1e3 / (eval.points().len() * exp.machines.len()).max(1) as f64;
    for point in eval.points() {
        for (mi, m) in exp.machines.iter().enumerate() {
            cells.push(CellResult {
                machine: m.name,
                workload: w.name(),
                variant: format!("{}_{}", strategy.name(), point.config.cache_key()),
                cores: vec![point.stats[mi]],
                wall_ms: wall_each,
                replayed: mi > 0,
                params: point.config.parameters(),
                tier: swpf_ir::interp::Tier::from_env().label(),
                perf: Vec::new(),
            });
        }
    }
    (reports, cells, (eval.interpretations(), wall))
}

/// Search every cell of the experiment's grid with both strategies.
///
/// # Panics
/// On a malformed pipeline space or simulation traps — configuration
/// errors.
#[must_use]
pub fn run_search(
    exp: &PipelineSearchExperiment,
) -> (ExperimentResult, Vec<TableSection>, Vec<Check>) {
    exp.space.assert_well_formed();
    let t0 = Instant::now();
    let mut cells = Vec::new();
    let mut searches = Vec::new();

    for &workload in &exp.workloads {
        let (oracles, oracle_cells, oracle_cost) = run_strategy(exp, workload, &Exhaustive, None);
        let hill = HillClimb {
            budget: exp.hill_budget,
        };
        let (hills, hill_cells, hill_cost) = run_strategy(exp, workload, &hill, Some(&oracles));

        cells.extend(oracle_cells);
        cells.extend(hill_cells);
        searches.push(WorkloadSearch {
            cells: oracles
                .into_iter()
                .zip(hills)
                .map(|((oracle, dflt), (hill, _))| (oracle, hill, dflt))
                .collect(),
            costs: [oracle_cost, hill_cost],
        });
    }

    let result = ExperimentResult {
        name: exp.name,
        title: exp.title,
        scale: exp.scale,
        machines: exp.machines.clone(),
        cells,
        threads: 1,
        wall_s: t0.elapsed().as_secs_f64(),
        trace_policy: "fanout".to_string(),
    };
    let derived = derive(exp, &searches);
    let mut checks = structural_checks(&result, &derived);
    checks.extend(search_checks(exp, &searches));
    (result, derived, checks)
}

/// Per-machine comparison tables plus the aggregate search-cost table.
fn derive(exp: &PipelineSearchExperiment, searches: &[WorkloadSearch]) -> Vec<TableSection> {
    let columns = [
        "default",
        "full",
        "searched",
        "hill",
        "dflt_%srch",
        "full_%srch",
        "pts_orac",
        "pts_hill",
    ];
    let mut sections: Vec<TableSection> = exp
        .machines
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let mut notes = Vec::new();
            let rows = exp
                .workloads
                .iter()
                .zip(searches)
                .map(|(w, s)| {
                    let (oracle, hill, dflt) = &s.cells[mi];
                    notes.push(format!(
                        "{}: searched pipeline `{}`",
                        w.name(),
                        oracle.chosen.pipeline
                    ));
                    Row {
                        name: w.name().to_string(),
                        values: vec![
                            *dflt as f64,
                            oracle.heuristic_cycles as f64,
                            oracle.chosen_cycles as f64,
                            hill.chosen_cycles as f64,
                            100.0 * oracle.chosen_cycles as f64 / *dflt as f64,
                            100.0 * oracle.chosen_cycles as f64 / oracle.heuristic_cycles as f64,
                            oracle.points.len() as f64,
                            hill.points.len() as f64,
                        ],
                    }
                })
                .collect();
            let mut section = TableSection::new(
                format!(
                    "Pipeline search ({}) — cycles: default/full pipelines vs. searched",
                    m.name
                ),
                columns.iter().map(ToString::to_string).collect(),
                rows,
            );
            section.notes.push(
                "default = bare `swpf`; full = the heuristic cleanup pipeline; \
                 `%srch` columns are searched cycles as a percentage of each \
                 reference (100 = tie, lower = the search won)"
                    .to_string(),
            );
            section.notes.extend(notes);
            section
        })
        .collect();

    // Aggregate search cost: the fan-out means interpretations count
    // candidates, not candidates × machines.
    let cost_rows = ["exhaustive", "hill"]
        .iter()
        .enumerate()
        .map(|(si, s)| {
            let points: usize = searches
                .iter()
                .flat_map(|t| &t.cells)
                .map(|(oracle, hill, _)| [oracle, hill][si].points.len())
                .sum();
            let interps: usize = searches.iter().map(|t| t.costs[si].0).sum();
            let wall: f64 = searches.iter().map(|t| t.costs[si].1).sum();
            Row {
                name: (*s).to_string(),
                values: vec![points as f64, interps as f64, wall],
            }
        })
        .collect();
    let mut cost = TableSection::new(
        "Search cost (all workloads)",
        vec![
            "points".to_string(),
            "interpretations".to_string(),
            "wall_s".to_string(),
        ],
        cost_rows,
    );
    cost.notes.push(format!(
        "points: per-machine search requests ({} machines share each \
         candidate's single interpretation via fan-out)",
        exp.machines.len()
    ));
    sections.push(cost);
    sections
}

/// The pipeline-search contracts as shape checks.
fn search_checks(exp: &PipelineSearchExperiment, searches: &[WorkloadSearch]) -> Vec<Check> {
    let mut checks = Vec::new();
    let mut strict_wins = 0usize;
    let mut cells = 0usize;
    for (w, s) in exp.workloads.iter().zip(searches) {
        for (m, (oracle, hill, dflt)) in exp.machines.iter().zip(&s.cells) {
            let cell = format!("{}_{}", m.name, w.name());
            cells += 1;
            if oracle.chosen_cycles < *dflt {
                strict_wins += 1;
            }

            // The searched pipeline is never worse than either
            // reference — both are candidates of the space.
            checks.push(Check::new(
                format!("searched_never_worse_{cell}"),
                oracle.chosen_cycles <= oracle.heuristic_cycles && oracle.chosen_cycles <= *dflt,
                format!(
                    "searched {} vs full {} vs default {} cycles",
                    oracle.chosen_cycles, oracle.heuristic_cycles, *dflt
                ),
            ));

            // The hill-climb seeds at the full pipeline, so it is never
            // worse than that reference either, on a fraction of the
            // oracle's budget.
            checks.push(Check::new(
                format!("hill_beats_heuristic_{cell}"),
                hill.chosen_cycles <= hill.heuristic_cycles && hill.points.len() <= exp.hill_budget,
                format!(
                    "hill {} vs full {} cycles in {} ≤ {} points",
                    hill.chosen_cycles,
                    hill.heuristic_cycles,
                    hill.points.len(),
                    exp.hill_budget
                ),
            ));
        }
    }
    // The payoff claim: searching pipelines must strictly beat the
    // compiler's default pipeline somewhere, or the whole axis is
    // pointless.
    checks.push(Check::new(
        "searched_pipeline_strictly_beats_default",
        strict_wins >= 1,
        format!("strict cycle wins vs bare `swpf` on {strict_wins} of {cells} cells"),
    ));
    checks
}

/// Run the pipeline-search experiment end to end — search, print the
/// tables, write `RESULTS/pipeline_search.json`, print every check
/// verdict — mirroring [`crate::tune::run_and_report`].
///
/// # Panics
/// If the artifact cannot be written.
pub fn run_and_report(
    exp: &PipelineSearchExperiment,
    out_dir: &Path,
) -> (ExperimentResult, Vec<Check>) {
    let pre = swpf_obs::enabled().then(|| swpf_obs::snapshot().summary());
    let (result, derived, checks) = {
        let _span = swpf_obs::enabled().then(|| swpf_obs::span(format!("experiment:{}", exp.name)));
        run_search(exp)
    };
    let profile = pre.map(|p| profile_window_json(&p, &swpf_obs::snapshot().summary()));
    println!(
        "\n#### {} — {} [scale={}, {} evaluated cells, {:.2}s]",
        result.name,
        result.title,
        result.scale.label(),
        result.cells.len(),
        result.wall_s,
    );
    print_sections(&derived);
    let path = write_artifact_with_profile(out_dir, &result, &derived, &checks, profile)
        .unwrap_or_else(|e| panic!("cannot write artifact for {}: {e}", result.name));
    println!("\nartifact: {}", path.display());
    for check in &checks {
        let verdict = if check.passed { "ok  " } else { "FAIL" };
        println!("check {verdict} {} — {}", check.name, check.detail);
    }
    (result, checks)
}
