//! # The experiment harness
//!
//! Every figure/table reproduction is a *declarative*
//! [`ExperimentSpec`]: a machine × workload × variant grid (plus an
//! optional cell filter for asymmetric figures like Fig. 4's
//! Phi-only ICC column). The harness expands the grid into independent
//! [`SimJob`]s, builds and pass-compiles each distinct kernel module
//! **once**, decodes it once into a shared [`ExecImage`], and executes
//! the jobs on a self-scheduling pool of host threads
//! (`std::thread::scope` workers pulling from an atomic job queue —
//! every simulation in a grid is independent, so the grid parallelises
//! embarrassingly).
//!
//! Functional execution is machine-independent, so the harness groups a
//! grid's jobs by the event stream they share — same workload, same
//! module, same core count — and **interprets each distinct kernel at
//! most once per run**: cold, the single interpretation's retire-event
//! stream fans out to every machine's timing model simultaneously
//! (recording into the `swpf-trace` cache when persisting); warm
//! (`--trace-dir` / `SWPF_TRACE_DIR`), the cached trace is decoded once
//! and fanned out the same way with no interpreter in the loop at all.
//! Either way each cell's statistics are bit-identical to a dedicated
//! direct simulation (see [`TracePolicy`]; `--no-trace` opts out).
//! Multicore cells record and replay per machine instead — their
//! interleaving schedule is timing-dependent, so they cannot share one
//! fused pass.
//!
//! Each run emits:
//! * the human-readable table (what the original per-figure binaries
//!   printed), rendered from derived [`TableSection`]s, and
//! * a machine-readable JSON artifact `RESULTS/<name>.json` — spec,
//!   per-cell [`SimStats`] counters, trace hits/misses, derived tables,
//!   shape-check verdicts, and wall-clock metadata — so CI can diff the
//!   numbers a PR changed.
//!
//! Shape checks ([`Check`]) turn the suite into an end-to-end
//! regression oracle: structural checks (grid complete, non-zero
//! cycles, finite derived values) run at every scale, and each
//! experiment adds behavioural checks for the paper's qualitative
//! claims (e.g. *software prefetching speeds up in-order machines*).

use crate::json::Json;
use crate::{auto_module, geomean, icc_module};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use swpf_core::{ParamValue, PassConfig};
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::Tier;
use swpf_ir::FuncId;
use swpf_sim::{
    replay_multicore_perf, replay_on_machine_perf, replay_on_machines_perf,
    run_multicore_image_perf, run_multicore_image_traced_perf, run_on_machine_image_perf,
    run_on_machines_image_perf, streaming_replay_multicore_perf, streaming_replay_on_machines_perf,
    MachineConfig, PcProfile, SimRun, SimStats,
};
use swpf_trace::{fnv64, StreamingReplay, Trace, TraceRecorder};
use swpf_workloads::{KernelVariant, Scale, Workload, WorkloadId};

/// One axis value of the variant dimension: what kernel to run, and how.
#[derive(Debug, Clone)]
pub enum Variant {
    /// A kernel the workload builds itself (baseline, manual, Fig. 2
    /// schemes, stagger depths).
    Kernel(KernelVariant),
    /// The automatic pass output under `config`. `label` names the cell
    /// (one spec may sweep several configs, e.g. Fig. 5).
    Auto {
        /// Cell label ("auto", "auto_nostride", ...).
        label: &'static str,
        /// Pass configuration to compile with.
        config: PassConfig,
    },
    /// The ICC-like stride-indirect baseline pass (Fig. 4d).
    Icc,
    /// `cores` copies of the kernel on a shared memory system (Fig. 9).
    Multicore {
        /// Number of cores, each running its own copy.
        cores: usize,
        /// Run the auto-pass kernel instead of the baseline.
        auto: bool,
    },
}

impl Variant {
    /// The baseline kernel variant (speedup denominator).
    #[must_use]
    pub fn baseline() -> Variant {
        Variant::Kernel(KernelVariant::Baseline)
    }

    /// The auto-pass variant at the default configuration.
    #[must_use]
    pub fn auto_default() -> Variant {
        Variant::Auto {
            label: "auto",
            config: PassConfig::default(),
        }
    }

    /// Unique cell label within an experiment.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Variant::Kernel(v) => v.label(),
            Variant::Auto { label, .. } => (*label).to_string(),
            Variant::Icc => "icc".to_string(),
            Variant::Multicore { cores, auto } => {
                format!("mc{cores}_{}", if *auto { "auto" } else { "baseline" })
            }
        }
    }

    /// Key of the kernel module this variant executes. Variants sharing
    /// a key share one build + pass-compile + decode (e.g. every
    /// Fig. 9 core count reuses the same two modules).
    #[must_use]
    pub fn module_key(&self) -> String {
        match self {
            Variant::Kernel(v) => v.label(),
            Variant::Auto { label, .. } => (*label).to_string(),
            Variant::Icc => "icc".to_string(),
            Variant::Multicore { auto: true, .. } => "auto".to_string(),
            Variant::Multicore { auto: false, .. } => "baseline".to_string(),
        }
    }

    /// Key of the recorded event trace this variant can replay: the
    /// module key, extended with the core count for multicore cells
    /// (each core count records its own per-core streams). Jobs sharing
    /// a trace key within one workload interpret once and replay
    /// everywhere else.
    #[must_use]
    pub fn trace_key(&self) -> String {
        match self {
            Variant::Multicore { cores, .. } => format!("{}_mc{cores}", self.module_key()),
            _ => self.module_key(),
        }
    }

    /// Simulated core count of this variant's cells.
    #[must_use]
    fn core_count(&self) -> usize {
        match self {
            Variant::Multicore { cores, .. } => *cores,
            _ => 1,
        }
    }

    /// The effective prefetch-pass parameters of this variant's cells,
    /// recorded in the artifact so the numbers are self-describing (and
    /// diff cleanly against tuner output). Pass-compiled variants carry
    /// the full [`PassConfig`] surface; manual kernels carry the knobs
    /// that are actually theirs (look-ahead, and stagger depth for
    /// Fig. 7); baselines and the hand-written Fig. 2 schemes carry
    /// none.
    #[must_use]
    pub fn pass_params(&self) -> Vec<(&'static str, ParamValue)> {
        match self {
            Variant::Auto { config, .. } => config.parameters(),
            // The harness compiles ICC and multicore-auto cells at the
            // default configuration (see `run_experiment`).
            Variant::Icc | Variant::Multicore { auto: true, .. } => {
                PassConfig::default().parameters()
            }
            Variant::Kernel(KernelVariant::Manual { look_ahead }) => {
                vec![("look_ahead", ParamValue::Int(*look_ahead))]
            }
            Variant::Kernel(KernelVariant::ManualDepth { look_ahead, depth }) => vec![
                ("look_ahead", ParamValue::Int(*look_ahead)),
                (
                    "max_indirect_depth",
                    ParamValue::Int(i64::try_from(*depth).unwrap_or(i64::MAX)),
                ),
            ],
            Variant::Kernel(_) | Variant::Multicore { auto: false, .. } => Vec::new(),
        }
    }
}

/// Cell filter: keep the (machine, workload, variant) combination?
pub type CellFilter = fn(&MachineConfig, WorkloadId, &Variant) -> bool;

/// A declarative experiment: the full grid, expanded by [`expand`].
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Artifact name ("fig4"); also the `RESULTS/<name>.json` stem.
    pub name: &'static str,
    /// Human title for tables and logs.
    pub title: &'static str,
    /// Workload scale the grid runs at.
    pub scale: Scale,
    /// Machine axis.
    pub machines: Vec<MachineConfig>,
    /// Workload axis.
    pub workloads: Vec<WorkloadId>,
    /// Variant axis.
    pub variants: Vec<Variant>,
    /// Optional cell filter (`None` keeps the full cross product).
    pub filter: Option<CellFilter>,
    /// Run the grid with per-PC prefetch-efficacy profiling
    /// ([`swpf_sim::perf`]) enabled: every cell additionally collects a
    /// [`PcProfile`], serialised as the additive `perf` cell member.
    /// Off for the figure grids (the default timing path stays
    /// profiling-free); the `prefetch_profile` experiment turns it on.
    pub perf: bool,
}

impl ExperimentSpec {
    fn keep(&self, m: &MachineConfig, w: WorkloadId, v: &Variant) -> bool {
        self.filter.is_none_or(|f| f(m, w, v))
    }
}

/// One independent simulation: indices into the spec's axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimJob {
    /// Index into [`ExperimentSpec::machines`].
    pub machine: usize,
    /// Index into [`ExperimentSpec::workloads`].
    pub workload: usize,
    /// Index into [`ExperimentSpec::variants`].
    pub variant: usize,
}

/// Expand a spec into its deduplicated job list.
///
/// Cells are dropped when the filter rejects them or the workload does
/// not support the kernel variant (e.g. Fig. 2 schemes outside IS), and
/// deduplicated by `(machine, workload, label)` so a variant listed
/// twice — typically a shared baseline — runs once.
#[must_use]
pub fn expand(spec: &ExperimentSpec) -> Vec<SimJob> {
    let supported: Vec<bool> = support_mask(spec);
    let mut seen = std::collections::HashSet::new();
    let mut jobs = Vec::new();
    for (wi, &w) in spec.workloads.iter().enumerate() {
        for (vi, v) in spec.variants.iter().enumerate() {
            if !supported[wi * spec.variants.len() + vi] {
                continue;
            }
            for (mi, m) in spec.machines.iter().enumerate() {
                if !spec.keep(m, w, v) {
                    continue;
                }
                if seen.insert((mi, wi, v.label())) {
                    jobs.push(SimJob {
                        machine: mi,
                        workload: wi,
                        variant: vi,
                    });
                }
            }
        }
    }
    jobs
}

/// `workload × variant` support matrix (kernel variants a workload
/// cannot build are unsupported; pass variants work everywhere).
fn support_mask(spec: &ExperimentSpec) -> Vec<bool> {
    let probe: Vec<Box<dyn Workload>> = spec
        .workloads
        .iter()
        .map(|id| id.instantiate(Scale::Test))
        .collect();
    let mut mask = Vec::with_capacity(spec.workloads.len() * spec.variants.len());
    for w in &probe {
        for v in &spec.variants {
            mask.push(match v {
                // Probe with tiny inputs: support depends only on the
                // workload's shape, not its scale.
                Variant::Kernel(kv) => w.build_variant(*kv).is_some(),
                Variant::Auto { .. } | Variant::Icc | Variant::Multicore { .. } => true,
            });
        }
    }
    mask
}

/// A decoded, ready-to-run kernel module.
struct PreparedModule {
    image: Arc<ExecImage>,
    func: FuncId,
    /// FNV-1a digest of the module's textual IR, folded into trace
    /// fingerprints so a cached trace of a changed kernel is re-recorded
    /// rather than silently replayed.
    text_hash: u64,
}

/// The result of one simulated cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Machine display name.
    pub machine: &'static str,
    /// Workload display name.
    pub workload: &'static str,
    /// Variant label.
    pub variant: String,
    /// Per-core statistics; single-core cells have exactly one entry.
    pub cores: Vec<SimStats>,
    /// Host wall-clock time of this simulation in milliseconds. Cells
    /// served by one fused group pass (see [`TracePolicy`]) share its
    /// wall time evenly.
    pub wall_ms: f64,
    /// Whether the cell was served without its own interpretation —
    /// from a replayed trace or a fused group pass (`false`: this cell
    /// paid the interpretation, possibly recording as it ran).
    pub replayed: bool,
    /// Effective prefetch-pass parameters of the cell's kernel
    /// ([`Variant::pass_params`]); empty for cells without prefetch
    /// code. Serialised as the additive `params` member of the cell.
    pub params: Vec<(&'static str, ParamValue)>,
    /// Active execution tier (`SWPF_TIER`) of the run that produced
    /// this cell. Replayed cells record the run's configured tier even
    /// though no interpreter ran — the label describes the experiment
    /// configuration, not the cache hit. Serialised as the additive
    /// `tier` member of the cell.
    pub tier: &'static str,
    /// Per-core prefetch-efficacy profiles ([`PcProfile`]), parallel to
    /// `cores` when profiling was enabled for the run (spec `perf`,
    /// `--perf`, or `SWPF_PERF`); empty otherwise. Serialised as the
    /// additive `perf` member of the cell.
    pub perf: Vec<PcProfile>,
}

impl CellResult {
    /// The single-core statistics (first core).
    ///
    /// # Panics
    /// Never — every cell has at least one core.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.cores[0]
    }

    /// Simulated makespan: the slowest core's cycle count.
    #[must_use]
    pub fn max_cycles(&self) -> u64 {
        self.cores.iter().map(|s| s.cycles).max().unwrap_or(0)
    }
}

/// Everything one experiment run produced.
pub struct ExperimentResult {
    /// Artifact name.
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Scale the run used.
    pub scale: Scale,
    /// Machine axis (for artifact metadata).
    pub machines: Vec<MachineConfig>,
    /// One entry per executed job, in deterministic job order.
    pub cells: Vec<CellResult>,
    /// Worker threads used.
    pub threads: usize,
    /// Total harness wall time in seconds (prepare + simulate).
    pub wall_s: f64,
    /// Label of the trace policy the run used ("off", "memory", or the
    /// trace directory path).
    pub trace_policy: String,
}

impl ExperimentResult {
    /// Cells served without their own interpretation — from a replayed
    /// trace or a fused group pass.
    #[must_use]
    pub fn trace_hits(&self) -> usize {
        self.cells.iter().filter(|c| c.replayed).count()
    }

    /// Cells that paid an interpretation (recording or direct).
    #[must_use]
    pub fn trace_misses(&self) -> usize {
        self.cells.len() - self.trace_hits()
    }

    /// Find a cell by its three axis labels.
    #[must_use]
    pub fn cell(&self, machine: &str, workload: &str, variant: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.machine == machine && c.workload == workload && c.variant == variant)
    }

    /// Speedup of `variant` over the `baseline` variant on the same
    /// machine × workload cell; `NaN` when either cell is missing.
    #[must_use]
    pub fn speedup(&self, machine: &str, workload: &str, variant: &str) -> f64 {
        let (Some(v), Some(b)) = (
            self.cell(machine, workload, variant),
            self.cell(machine, workload, "baseline"),
        ) else {
            return f64::NAN;
        };
        v.stats().speedup_vs(b.stats())
    }
}

/// How the harness uses the `swpf-trace` record/replay subsystem.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TracePolicy {
    /// Simulate every cell directly (no recording, no replay).
    Off,
    /// Record each distinct kernel while its first cell simulates and
    /// replay the group's remaining machine cells from the in-memory
    /// trace, which is dropped when the group completes (the default).
    #[default]
    Memory,
    /// Like [`TracePolicy::Memory`], but persist traces under this
    /// directory and reuse fingerprint-matching traces across runs and
    /// experiments (`--trace-dir` / `SWPF_TRACE_DIR`).
    Dir(PathBuf),
}

impl TracePolicy {
    /// Stable label for logs and artifacts.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TracePolicy::Off => "off".to_string(),
            TracePolicy::Memory => "memory".to_string(),
            TracePolicy::Dir(d) => d.display().to_string(),
        }
    }
}

/// How to run an experiment's jobs.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads; `0` (the default) means one per host core.
    pub threads: usize,
    /// Trace record/replay policy.
    pub trace: TracePolicy,
    /// Replay persisted traces block-at-a-time through
    /// [`StreamingReplay`] instead of materialising the payload
    /// (`--stream-replay` / `SWPF_TRACE_STREAM`; only meaningful with
    /// [`TracePolicy::Dir`]). Counters are bit-identical either way;
    /// peak memory stops depending on trace length.
    pub stream: bool,
    /// Byte budget for the [`TracePolicy::Dir`] cache (`--trace-cap` /
    /// `SWPF_TRACE_CAP`): after each store, the least-recently-used
    /// trace files are evicted until the directory fits. `None`: no
    /// bound.
    pub trace_cap: Option<u64>,
    /// Force per-PC prefetch-efficacy profiling on for every cell
    /// (`--perf` / `SWPF_PERF`), regardless of the spec's own `perf`
    /// flag. The default path runs profiling-free.
    pub perf: bool,
}

impl RunOptions {
    fn effective_threads(&self, units: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, units.max(1))
    }
}

/// A derived (printable + serialised) table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSection {
    /// Section heading.
    pub title: String,
    /// Column headings (value columns; the row-name column is implied).
    pub columns: Vec<String>,
    /// Rows in display order.
    pub rows: Vec<Row>,
    /// Free-form footer lines (e.g. Table 1's real-hardware reference).
    pub notes: Vec<String>,
}

impl TableSection {
    /// A section with no footer notes.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>, rows: Vec<Row>) -> TableSection {
        TableSection {
            title: title.into(),
            columns,
            rows,
            notes: Vec::new(),
        }
    }
}

/// One row of a derived table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row name (workload, machine, or sweep point).
    pub name: String,
    /// One value per column.
    pub values: Vec<f64>,
}

/// A shape-assertion verdict.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable check name.
    pub name: String,
    /// Did the shape hold?
    pub passed: bool,
    /// Human-readable evidence (the numbers involved).
    pub detail: String,
}

impl Check {
    /// Build a verdict from a condition and its evidence.
    #[must_use]
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Check {
        Check {
            name: name.into(),
            passed,
            detail: detail.into(),
        }
    }
}

/// Derivation hook: turn raw cells into the figure's tables.
pub type DeriveFn = fn(&ExperimentResult) -> Vec<TableSection>;
/// Shape-check hook: assert the paper's qualitative claims.
pub type ChecksFn = fn(&ExperimentResult, &[TableSection]) -> Vec<Check>;

/// A complete experiment: grid + derivation + shape checks.
pub struct Experiment {
    /// The declarative grid.
    pub spec: ExperimentSpec,
    /// Derivation hook.
    pub derive: DeriveFn,
    /// Shape-check hook (behavioural; structural checks are automatic).
    pub checks: ChecksFn,
}

/// Run an experiment: prepare modules, execute the job grid on a thread
/// pool (grouped by shared kernel trace, see [`TracePolicy`]), and
/// collect per-cell statistics in deterministic order.
///
/// # Panics
/// On unsupported spec cells surviving expansion, simulation traps, or
/// a poisoned result mutex — all harness-fatal configuration errors.
#[must_use]
pub fn run_experiment(exp: &Experiment, opts: &RunOptions) -> ExperimentResult {
    let spec = &exp.spec;
    let t0 = Instant::now();

    // Per-PC profiling enablement is read once per simulation (at
    // `MemSys` construction), so flipping it here covers every cell of
    // this run; the previous state is restored afterwards so one
    // profiled experiment in a multi-experiment driver (`--bin all`)
    // does not bloat its successors' artifacts. Profiling never changes
    // simulated statistics (see `swpf_sim::perf`), only whether cells
    // carry a profile.
    let perf_prev = swpf_sim::perf::enabled();
    swpf_sim::perf::set_enabled(spec.perf || opts.perf || perf_prev);

    // Instantiate each workload once; jobs share them read-only.
    let workloads: Vec<Box<dyn Workload>> = spec
        .workloads
        .iter()
        .map(|id| id.instantiate(spec.scale))
        .collect();

    let jobs = expand(spec);

    // Build + pass-compile + decode each distinct kernel module once.
    let mut modules: HashMap<(usize, String), PreparedModule> = HashMap::new();
    for job in &jobs {
        let key = (job.workload, spec.variants[job.variant].module_key());
        if modules.contains_key(&key) {
            continue;
        }
        let w = workloads[job.workload].as_ref();
        let module = {
            let _span = swpf_obs::span("build");
            match &spec.variants[job.variant] {
                Variant::Kernel(kv) => w
                    .build_variant(*kv)
                    .expect("expansion only keeps supported kernel variants"),
                Variant::Auto { config, .. } => auto_module(w, config),
                Variant::Icc => icc_module(w, &PassConfig::default()),
                Variant::Multicore { auto, .. } => {
                    if *auto {
                        auto_module(w, &PassConfig::default())
                    } else {
                        w.build_baseline()
                    }
                }
            }
        };
        let func = module
            .find_function("kernel")
            .expect("workload kernels are named `kernel`");
        let text_hash = fnv64(swpf_ir::printer::print_module(&module).as_bytes());
        let _span = swpf_obs::span("decode");
        modules.insert(
            key,
            PreparedModule {
                image: Arc::new(ExecImage::build(&module)),
                func,
                text_hash,
            },
        );
    }
    if swpf_obs::enabled() {
        swpf_obs::count("harness.jobs", jobs.len() as u64);
        swpf_obs::count("harness.modules_prepared", modules.len() as u64);
        // Jobs map many-to-one onto prepared modules; the difference is
        // the build+compile+decode work the dedup saved.
        swpf_obs::count(
            "harness.kernel_dedup_hits",
            (jobs.len().saturating_sub(modules.len())) as u64,
        );
    }

    // Group jobs by the trace they can share: same workload, same
    // trace key (module + core count). The group's first cell records
    // while it measures; the rest replay — each distinct kernel is
    // interpreted exactly once per run (or zero times on a disk hit).
    let mut group_of: HashMap<(usize, String), usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        let key = (job.workload, spec.variants[job.variant].trace_key());
        match group_of.get(&key) {
            Some(&gi) => groups[gi].push(ji),
            None => {
                group_of.insert(key, groups.len());
                groups.push(vec![ji]);
            }
        }
    }

    // Execute: worker threads self-schedule trace groups off an atomic
    // queue (pull-based stealing — a slow group never blocks the rest
    // of the grid behind it). Groups are independent, so the grid still
    // parallelises embarrassingly; results land in job order.
    let threads = opts.effective_threads(groups.len());
    if swpf_obs::enabled() {
        swpf_obs::count("harness.trace_groups", groups.len() as u64);
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; jobs.len()]);
    let (workloads_ref, modules_ref, jobs_ref) = (&workloads, &modules, &jobs);
    let (groups_ref, next_ref, slots_ref) = (&groups, &next, &slots);
    std::thread::scope(|scope| {
        for wi in 0..threads {
            scope.spawn(move || {
                if swpf_obs::enabled() {
                    swpf_obs::name_thread(&format!("worker-{wi}"));
                }
                loop {
                    let gi = next_ref.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups_ref.get(gi) else {
                        break;
                    };
                    let cells = run_group(spec, workloads_ref, modules_ref, jobs_ref, group, opts);
                    let mut slots = slots_ref.lock().expect("no panics hold the lock");
                    for (ji, cell) in cells {
                        slots[ji] = Some(cell);
                    }
                }
            });
        }
    });

    let cells = slots
        .into_inner()
        .expect("workers finished")
        .into_iter()
        .map(|c| c.expect("every job ran"))
        .collect();

    swpf_sim::perf::set_enabled(perf_prev);

    ExperimentResult {
        name: spec.name,
        title: spec.title,
        scale: spec.scale,
        machines: spec.machines.clone(),
        cells,
        threads,
        wall_s: t0.elapsed().as_secs_f64(),
        trace_policy: opts.trace.label(),
    }
}

/// Everything the trace fingerprint must cover: the kernel's textual
/// IR, the workload (whose `setup` fixes the input data), the scale,
/// and the core count. A cached trace with any of these changed is
/// re-recorded, never silently replayed. Public so trace consumers
/// outside the grid runner (the `trace_analytics` experiment, the
/// `mine_pairs` miner) can share the harness's cache files.
#[must_use]
pub fn kernel_fingerprint(workload: &str, scale: Scale, cores: usize, text_hash: u64) -> u64 {
    fnv64(format!("{workload}|{}|{cores}|{text_hash:016x}", scale.label()).as_bytes())
}

/// The cache file a (scale, workload, trace-key) triple persists to
/// under a [`TracePolicy::Dir`] directory — one naming scheme shared by
/// the harness, the analytics experiment, and the pair miner.
#[must_use]
pub fn trace_cache_path(dir: &Path, scale: Scale, workload: &str, trace_key: &str) -> PathBuf {
    dir.join(format!("{}_{workload}_{trace_key}.trace", scale.label()))
}

/// Run one trace group: all jobs sharing a workload and trace key.
/// Returns `(job index, cell)` pairs.
fn run_group(
    spec: &ExperimentSpec,
    workloads: &[Box<dyn Workload>],
    modules: &HashMap<(usize, String), PreparedModule>,
    jobs: &[SimJob],
    group: &[usize],
    opts: &RunOptions,
) -> Vec<(usize, CellResult)> {
    let policy = &opts.trace;
    let mut out = Vec::with_capacity(group.len());
    if *policy == TracePolicy::Off {
        for &ji in group {
            out.push((ji, run_job_direct(spec, workloads, modules, jobs[ji])));
        }
        return out;
    }

    let first = jobs[group[0]];
    let variant = &spec.variants[first.variant];
    let w = workloads[first.workload].as_ref();
    let prepared = &modules[&(first.workload, variant.module_key())];
    let fingerprint = kernel_fingerprint(
        w.name(),
        spec.scale,
        variant.core_count(),
        prepared.text_hash,
    );
    let cache_path = match policy {
        TracePolicy::Dir(dir) => Some(trace_cache_path(
            dir,
            spec.scale,
            w.name(),
            &variant.trace_key(),
        )),
        _ => None,
    };

    // Warm paths, preferred order: the bounded-memory streaming reader
    // (when asked for), then the full in-memory decode. Either miss —
    // no file, stale fingerprint, v1 envelope under streaming, damage —
    // falls through to re-record.
    let streamed = if opts.stream {
        cache_path
            .as_deref()
            .and_then(|p| open_streaming(p, fingerprint))
    } else {
        None
    };
    let cached = if streamed.is_some() {
        None
    } else {
        cache_path
            .as_deref()
            .and_then(|p| load_trace(p, fingerprint))
    };
    if cache_path.is_some() && swpf_obs::enabled() {
        if streamed.is_some() || cached.is_some() {
            swpf_obs::count("trace.disk_hit", 1);
        } else {
            swpf_obs::count("trace.disk_miss", 1);
        }
    }

    // Multicore cells interleave their per-core streams on a schedule
    // that depends on the machine's timing, so they cannot share one
    // fused pass; the group's first cell records (with step boundaries)
    // and the rest replay the trace.
    if matches!(variant, Variant::Multicore { .. }) {
        if let Some(replay) = &streamed {
            for &ji in group {
                out.push((
                    ji,
                    run_job_replay_streaming(spec, workloads, jobs[ji], replay),
                ));
            }
            return out;
        }
        let mut remaining = group.iter();
        let trace = match cached {
            Some(trace) => trace,
            None if group.len() == 1 && cache_path.is_none() => {
                // Nothing would ever replay the recording: skip it.
                let &ji = remaining.next().expect("groups are non-empty");
                out.push((ji, run_job_direct(spec, workloads, modules, jobs[ji])));
                return out;
            }
            None => {
                let &ji = remaining.next().expect("groups are non-empty");
                let (cell, trace) = run_job_traced(spec, workloads, modules, jobs[ji], fingerprint);
                out.push((ji, cell));
                if let Some(path) = &cache_path {
                    store_trace(path, &trace, opts.trace_cap);
                }
                trace
            }
        };
        for &ji in remaining {
            out.push((ji, run_job_replay(spec, workloads, jobs[ji], &trace)));
        }
        return out;
    }

    // Single-core cells: one event stream serves the whole group at
    // once. Cold, the interpreter runs a single time with its events
    // fanned out to every machine's timing model (plus the encoder when
    // persisting); warm, the cached trace is decoded once and fanned
    // out the same way. Either way each kernel is interpreted at most
    // once per run, and the event stream crosses the host caches once
    // per group, not once per cell.
    let configs: Vec<&MachineConfig> = group
        .iter()
        .map(|&ji| &spec.machines[jobs[ji].machine])
        .collect();
    let mut recorded: Option<TraceRecorder> = None;
    let t0 = Instant::now();
    let (runs, from_trace) = match (&streamed, cached) {
        (Some(replay), _) => {
            let _span = swpf_obs::span("stream_replay");
            (
                streaming_replay_on_machines_perf(&configs, replay)
                    .unwrap_or_else(|e| panic!("batched streaming replay failed: {e}")),
                true,
            )
        }
        (None, Some(trace)) => {
            let _span = swpf_obs::span("replay");
            (
                replay_on_machines_perf(&configs, &trace)
                    .unwrap_or_else(|e| panic!("batched trace replay failed: {e}")),
                true,
            )
        }
        (None, None) => {
            let _span = swpf_obs::span("interpret");
            let mut recorder = cache_path
                .as_ref()
                .map(|_| TraceRecorder::new(1, fingerprint));
            let runs = run_on_machines_image_perf(
                &configs,
                &prepared.image,
                prepared.func,
                |interp| w.setup(interp),
                recorder.as_mut().map(|r| r.stream(0)),
            );
            recorded = recorder;
            (runs, false)
        }
    };
    // wall_ms covers the simulation only; persisting the trace (below)
    // is cache upkeep, not cell cost.
    let wall_each = t0.elapsed().as_secs_f64() * 1e3 / group.len() as f64;
    if let (Some(path), Some(recorder)) = (&cache_path, recorded) {
        store_trace(path, &recorder.finish(), opts.trace_cap);
    }
    for (k, (&ji, run)) in group.iter().zip(runs).enumerate() {
        let job = jobs[ji];
        let (cores, perf) = split_runs(vec![run]);
        out.push((
            ji,
            CellResult {
                machine: spec.machines[job.machine].name,
                workload: w.name(),
                variant: spec.variants[job.variant].label(),
                cores,
                wall_ms: wall_each,
                replayed: from_trace || k > 0,
                params: spec.variants[job.variant].pass_params(),
                tier: Tier::from_env().label(),
                perf,
            },
        ));
    }
    out
}

/// Mark a cache file recently used, so size-capped eviction (see
/// [`store_trace`]) removes cold traces first. Best-effort: an
/// unwritable cache degrades to FIFO eviction, not an error.
fn touch_trace(path: &Path) {
    if let Ok(f) = std::fs::File::options().append(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Load a cached trace, rejecting stale fingerprints and warning (once
/// per file, on stderr) about undecodable ones.
fn load_trace(path: &Path, fingerprint: u64) -> Option<Trace> {
    let bytes = std::fs::read(path).ok()?;
    match Trace::from_bytes(&bytes) {
        Ok(trace) if trace.fingerprint == fingerprint => {
            touch_trace(path);
            Some(trace)
        }
        Ok(_) => None, // kernel, workload, or scale changed: re-record
        Err(e) => {
            eprintln!("warning: ignoring trace {}: {e}", path.display());
            None
        }
    }
}

/// Open a cached trace for bounded-memory streaming replay, rejecting
/// stale fingerprints. A v1 envelope (no block structure to stream) is
/// treated exactly like a stale fingerprint: miss, re-record, and the
/// store upgrades the file to v2. Public within the crate so the
/// `trace_analytics` experiment shares the cache discipline.
pub(crate) fn open_streaming(path: &Path, fingerprint: u64) -> Option<StreamingReplay> {
    match StreamingReplay::open(path) {
        Ok(replay) if replay.fingerprint() == fingerprint => {
            touch_trace(path);
            Some(replay)
        }
        Ok(_) => None,
        Err(swpf_trace::TraceError::UnsupportedVersion(_))
        | Err(swpf_trace::TraceError::Io(std::io::ErrorKind::NotFound)) => None,
        Err(e) => {
            eprintln!("warning: ignoring trace {}: {e}", path.display());
            None
        }
    }
}

/// Persist a recorded trace; cache-write failures degrade to a warning
/// (the run itself does not depend on the cache). With a byte cap, the
/// directory is LRU-pruned afterwards — oldest-read `.trace` files go
/// first, the file just written never does.
pub(crate) fn store_trace(path: &Path, trace: &Trace, cap: Option<u64>) {
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, trace.to_bytes())
    };
    if let Err(e) = write() {
        eprintln!("warning: cannot cache trace {}: {e}", path.display());
        return;
    }
    swpf_obs::count("trace.stored", 1);
    if let (Some(cap), Some(dir)) = (cap, path.parent()) {
        evict_lru(dir, cap, path);
    }
}

/// Evict least-recently-used `.trace` files until the directory's trace
/// bytes fit under `cap`. `keep` (the file just written) is exempt —
/// the cap bounds the cache, it must not turn the current store into a
/// no-op. Concurrent workers may race this scan; losing a file another
/// thread was about to replay is just a cache miss, so every step is
/// best-effort.
fn evict_lru(dir: &Path, cap: u64, keep: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            let p = e.path();
            if p.extension().is_none_or(|x| x != "trace") || p == keep {
                return None;
            }
            let meta = e.metadata().ok()?;
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            Some((mtime, meta.len(), p))
        })
        .collect();
    let kept = std::fs::metadata(keep).map_or(0, |m| m.len());
    let mut total: u64 = kept + files.iter().map(|(_, len, _)| len).sum::<u64>();
    files.sort();
    for (_, len, p) in files {
        if total <= cap {
            break;
        }
        if std::fs::remove_file(&p).is_ok() {
            total -= len;
        }
    }
}

/// Split per-core simulation results into the stats vector and the
/// profile vector [`CellResult`] stores — profiles are present for all
/// cores or none (enablement is per run, not per core).
fn split_runs(runs: Vec<SimRun>) -> (Vec<SimStats>, Vec<PcProfile>) {
    let mut cores = Vec::with_capacity(runs.len());
    let mut perf = Vec::new();
    for r in runs {
        cores.push(r.stats);
        perf.extend(r.perf);
    }
    (cores, perf)
}

/// Shared cell bookkeeping: label the result and time the simulation.
fn make_cell(
    machine: &MachineConfig,
    w: &dyn Workload,
    variant: &Variant,
    replayed: bool,
    body: impl FnOnce() -> Vec<SimRun>,
) -> CellResult {
    let t0 = Instant::now();
    let (cores, perf) = split_runs(body());
    CellResult {
        machine: machine.name,
        workload: w.name(),
        variant: variant.label(),
        cores,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        replayed,
        params: variant.pass_params(),
        tier: Tier::from_env().label(),
        perf,
    }
}

fn run_job_direct(
    spec: &ExperimentSpec,
    workloads: &[Box<dyn Workload>],
    modules: &HashMap<(usize, String), PreparedModule>,
    job: SimJob,
) -> CellResult {
    let variant = &spec.variants[job.variant];
    let machine = &spec.machines[job.machine];
    let w = workloads[job.workload].as_ref();
    let prepared = &modules[&(job.workload, variant.module_key())];
    let _span = swpf_obs::span("interpret");
    make_cell(machine, w, variant, false, || match variant {
        Variant::Multicore { cores, .. } => run_multicore_image_perf(
            machine,
            *cores,
            &prepared.image,
            prepared.func,
            |_, interp| w.setup(interp),
        ),
        _ => vec![run_on_machine_image_perf(
            machine,
            &prepared.image,
            prepared.func,
            |interp| w.setup(interp),
        )],
    })
}

/// Direct multicore simulation that records every core's stream (with
/// step boundaries) as it runs; the measured stats are identical to an
/// untraced run. Single-core cells record through the fused group pass
/// ([`run_on_machines_image`]) instead.
fn run_job_traced(
    spec: &ExperimentSpec,
    workloads: &[Box<dyn Workload>],
    modules: &HashMap<(usize, String), PreparedModule>,
    job: SimJob,
    fingerprint: u64,
) -> (CellResult, Trace) {
    let variant = &spec.variants[job.variant];
    let Variant::Multicore { cores, .. } = variant else {
        unreachable!("single-core cells record via the fused group pass")
    };
    let machine = &spec.machines[job.machine];
    let w = workloads[job.workload].as_ref();
    let prepared = &modules[&(job.workload, variant.module_key())];
    let _span = swpf_obs::span("interpret");
    let mut recorder = TraceRecorder::new(*cores, fingerprint);
    let cell = make_cell(machine, w, variant, false, || {
        run_multicore_image_traced_perf(
            machine,
            *cores,
            &prepared.image,
            prepared.func,
            |_, interp| w.setup(interp),
            &mut recorder,
        )
    });
    (cell, recorder.finish())
}

/// Replay a persisted trace file on this cell's machine block-at-a-time
/// — no interpreter, no materialised payload.
fn run_job_replay_streaming(
    spec: &ExperimentSpec,
    workloads: &[Box<dyn Workload>],
    job: SimJob,
    replay: &StreamingReplay,
) -> CellResult {
    let variant = &spec.variants[job.variant];
    let machine = &spec.machines[job.machine];
    let w = workloads[job.workload].as_ref();
    let _span = swpf_obs::span("stream_replay");
    make_cell(machine, w, variant, true, || match variant {
        Variant::Multicore { .. } => streaming_replay_multicore_perf(machine, replay)
            .unwrap_or_else(|e| panic!("multicore streaming replay failed: {e}")),
        _ => streaming_replay_on_machines_perf(&[machine], replay)
            .unwrap_or_else(|e| panic!("streaming replay failed: {e}")),
    })
}

/// Replay a recorded trace on this cell's machine — no interpreter in
/// the loop.
fn run_job_replay(
    spec: &ExperimentSpec,
    workloads: &[Box<dyn Workload>],
    job: SimJob,
    trace: &Trace,
) -> CellResult {
    let variant = &spec.variants[job.variant];
    let machine = &spec.machines[job.machine];
    let w = workloads[job.workload].as_ref();
    let _span = swpf_obs::span("replay");
    make_cell(machine, w, variant, true, || match variant {
        Variant::Multicore { .. } => replay_multicore_perf(machine, trace)
            .unwrap_or_else(|e| panic!("multicore trace replay failed: {e}")),
        _ => vec![replay_on_machine_perf(machine, trace)],
    })
}

/// Structural shape checks every experiment gets for free: the grid is
/// complete, every simulated cell retired work, and no derived value is
/// non-finite or negative.
#[must_use]
pub fn structural_checks(result: &ExperimentResult, derived: &[TableSection]) -> Vec<Check> {
    let mut checks = Vec::new();
    let dead = result
        .cells
        .iter()
        .filter(|c| c.cores.iter().any(|s| s.cycles == 0 || s.insts.total == 0))
        .count();
    if !result.cells.is_empty() {
        checks.push(Check::new(
            "all_cells_simulated",
            dead == 0,
            format!("{} of {} cells retired no work", dead, result.cells.len()),
        ));
    }
    let mut bad_values = 0usize;
    let mut total_values = 0usize;
    for section in derived {
        for row in &section.rows {
            for v in &row.values {
                total_values += 1;
                if !v.is_finite() || *v < 0.0 {
                    bad_values += 1;
                }
            }
        }
    }
    checks.push(Check::new(
        "derived_values_finite",
        bad_values == 0,
        format!("{bad_values} of {total_values} derived values non-finite or negative"),
    ));
    checks
}

/// Geomean of one column across all named rows of a section.
#[must_use]
pub fn column_geomean(section: &TableSection, column: &str) -> f64 {
    let Some(ci) = section.columns.iter().position(|c| c == column) else {
        return f64::NAN;
    };
    let vals: Vec<f64> = section
        .rows
        .iter()
        .filter_map(|r| r.values.get(ci).copied())
        .collect();
    geomean(&vals)
}

/// Render sections the way the original per-figure binaries printed
/// their tables: the name column grows to the longest row name, and
/// whole-number values (Table 1's capacities and widths) print without
/// a fractional part.
pub fn print_sections(sections: &[TableSection]) {
    for section in sections {
        println!("\n=== {} ===", section.title);
        let name_width = section
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max(10);
        print!("{:<name_width$}", "");
        for c in &section.columns {
            print!(" {c:>10}");
        }
        println!();
        for row in &section.rows {
            print!("{:<name_width$}", row.name);
            for &v in &row.values {
                if v.fract() == 0.0 && v.abs() < 1e12 {
                    print!(" {:>10}", v as i64);
                } else {
                    print!(" {v:>10.3}");
                }
            }
            println!();
        }
        for note in &section.notes {
            println!("{note}");
        }
    }
}

/// Serialise one run to `dir/<name>.json` (creating `dir`), returning
/// the path written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_artifact(
    dir: &Path,
    result: &ExperimentResult,
    derived: &[TableSection],
    checks: &[Check],
) -> std::io::Result<PathBuf> {
    write_artifact_with_profile(dir, result, derived, checks, None)
}

/// [`write_artifact`], optionally carrying the run's additive `profile`
/// section (see [`profile_window_json`]).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_artifact_with_profile(
    dir: &Path,
    result: &ExperimentResult,
    derived: &[TableSection],
    checks: &[Check],
    profile: Option<Json>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", result.name));
    let mut doc = artifact_json(result, derived, checks);
    if let (Json::Obj(members), Some(p)) = (&mut doc, profile) {
        members.push(("profile".to_string(), p));
    }
    std::fs::write(&path, doc.to_pretty_string())?;
    Ok(path)
}

/// The additive `profile` artifact section: the *window* of profiling
/// activity between two [`swpf_obs::Summary`] captures (`swpf-obs` data
/// is cumulative per process; subtracting the pre-run capture keeps one
/// experiment's section free of its predecessors' spans when a driver
/// such as `--bin all` runs several in sequence).
#[must_use]
pub fn profile_window_json(pre: &swpf_obs::Summary, post: &swpf_obs::Summary) -> Json {
    let pre_rows: HashMap<&str, swpf_obs::SummaryRow> =
        pre.rows.iter().map(|(n, r)| (n.as_str(), *r)).collect();
    let mut phases = Vec::new();
    for (name, row) in &post.rows {
        let base = pre_rows.get(name.as_str()).copied().unwrap_or_default();
        let count = row.count.saturating_sub(base.count);
        let total_ns = row.total_ns.saturating_sub(base.total_ns);
        if count == 0 && total_ns == 0 {
            continue;
        }
        phases.push((
            name.clone(),
            Json::obj(vec![
                ("count", Json::U64(count)),
                ("total_ms", Json::F64(total_ns as f64 / 1e6)),
                (
                    "self_ms",
                    Json::F64(row.self_ns.saturating_sub(base.self_ns) as f64 / 1e6),
                ),
            ]),
        ));
    }
    let counters = post
        .counters
        .iter()
        .filter_map(|(name, &v)| {
            let delta = v.saturating_sub(pre.counters.get(name).copied().unwrap_or(0));
            (delta > 0).then(|| (name.clone(), Json::U64(delta)))
        })
        .collect();
    Json::Obj(vec![
        ("phases".to_string(), Json::Obj(phases)),
        ("counters".to_string(), Json::Obj(counters)),
    ])
}

/// Serialise a cell's effective pass parameters ([`ParamValue`]s) as a
/// JSON object.
#[must_use]
pub fn params_json(params: &[(&'static str, ParamValue)]) -> Json {
    Json::obj(
        params
            .iter()
            .map(|&(k, v)| {
                (
                    k,
                    match v {
                        // Non-negative ints as U64, the type the parser
                        // reads them back as (keeps round-trips exact).
                        ParamValue::Int(i) => match u64::try_from(i) {
                            Ok(u) => Json::U64(u),
                            Err(_) => Json::I64(i),
                        },
                        ParamValue::Bool(b) => Json::Bool(b),
                    },
                )
            })
            .collect(),
    )
}

/// The outcome-partition members of one [`swpf_sim::SiteProfile`],
/// shared by the per-site and totals objects of [`perf_json`].
fn site_members(s: &swpf_sim::SiteProfile) -> Vec<(&'static str, Json)> {
    vec![
        ("issued", Json::U64(s.issued)),
        ("timely", Json::U64(s.timely)),
        ("late", Json::U64(s.late)),
        ("early_evicted", Json::U64(s.early_evicted)),
        ("redundant_resident", Json::U64(s.redundant_resident)),
        ("redundant_inflight", Json::U64(s.redundant_inflight)),
        ("dropped", Json::U64(s.dropped)),
        ("unused_at_end", Json::U64(s.unused_at_end)),
        (
            "lead_cycles",
            Json::obj(vec![
                ("count", Json::U64(s.lead_cycles.count)),
                ("mean", Json::F64(s.lead_cycles.mean())),
                (
                    "min",
                    Json::U64(if s.lead_cycles.count == 0 {
                        0
                    } else {
                        s.lead_cycles.min
                    }),
                ),
                ("max", Json::U64(s.lead_cycles.max)),
            ]),
        ),
    ]
}

/// Serialise one core's [`PcProfile`] as the additive `perf` cell
/// member: the outcome partition per prefetch site and in total, plus
/// the hottest stall-attributed PCs (top 32 by attributed cycles — the
/// full map lives in memory for `perf_annotate`, the artifact carries
/// the headline).
#[must_use]
pub fn perf_json(p: &PcProfile) -> Json {
    let sites = p
        .sites
        .iter()
        .map(|(pc, s)| {
            let mut members = vec![("pc", Json::U64(*pc))];
            members.extend(site_members(s));
            Json::obj(members)
        })
        .collect();
    let mut stalls: Vec<(u64, swpf_sim::StallStat)> = p.stalls.clone();
    stalls.sort_by(|a, b| b.1.stall_ticks.cmp(&a.1.stall_ticks).then(a.0.cmp(&b.0)));
    stalls.truncate(32);
    let stalls = stalls
        .into_iter()
        .map(|(pc, st)| {
            Json::obj(vec![
                ("pc", Json::U64(pc)),
                ("stall_cycles", Json::U64(st.stall_cycles())),
                ("count", Json::U64(st.count)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("totals", Json::obj(site_members(&p.totals()))),
        ("conserved", Json::Bool(p.conserved())),
        ("stall_cycles", Json::U64(p.total_stall_cycles())),
        ("sites", Json::Arr(sites)),
        ("stalls", Json::Arr(stalls)),
    ])
}

/// The artifact document (schema v1; see DESIGN.md §5).
#[must_use]
pub fn artifact_json(
    result: &ExperimentResult,
    derived: &[TableSection],
    checks: &[Check],
) -> Json {
    let machines = result
        .machines
        .iter()
        .map(|m| {
            let mut members = vec![
                ("name", Json::Str(m.name.to_string())),
                ("core", Json::Str(m.core_kind_name().to_string())),
            ];
            members.extend(m.parameters().into_iter().map(|(k, v)| (k, Json::U64(v))));
            Json::obj(members)
        })
        .collect();
    let cells = result
        .cells
        .iter()
        .map(|c| {
            let cores = c
                .cores
                .iter()
                .map(|s| {
                    let mut members: Vec<(&str, Json)> = s
                        .counters()
                        .into_iter()
                        .map(|(k, v)| (k, Json::U64(v)))
                        .collect();
                    members.push(("ipc", Json::F64(s.ipc())));
                    Json::obj(members)
                })
                .collect();
            let mut members = vec![
                ("machine", Json::Str(c.machine.to_string())),
                ("workload", Json::Str(c.workload.to_string())),
                ("variant", Json::Str(c.variant.clone())),
                ("wall_ms", Json::F64(c.wall_ms)),
                ("replayed", Json::Bool(c.replayed)),
                ("tier", Json::Str(c.tier.to_string())),
            ];
            if !c.params.is_empty() {
                members.push(("params", params_json(&c.params)));
            }
            members.push(("cores", Json::Arr(cores)));
            if !c.perf.is_empty() {
                members.push(("perf", Json::Arr(c.perf.iter().map(perf_json).collect())));
            }
            Json::obj(members)
        })
        .collect();
    let derived = derived
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("title", Json::Str(s.title.clone())),
                (
                    "columns",
                    Json::Arr(s.columns.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
                (
                    "notes",
                    Json::Arr(s.notes.iter().map(|n| Json::Str(n.clone())).collect()),
                ),
                (
                    "rows",
                    Json::Arr(
                        s.rows
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("name", Json::Str(r.name.clone())),
                                    (
                                        "values",
                                        Json::Arr(r.values.iter().map(|v| Json::F64(*v)).collect()),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let checks = checks
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("name", Json::Str(c.name.clone())),
                ("passed", Json::Bool(c.passed)),
                ("detail", Json::Str(c.detail.clone())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::U64(1)),
        ("experiment", Json::Str(result.name.to_string())),
        ("title", Json::Str(result.title.to_string())),
        ("scale", Json::Str(result.scale.label().to_string())),
        ("threads", Json::U64(result.threads as u64)),
        ("jobs", Json::U64(result.cells.len() as u64)),
        ("wall_seconds", Json::F64(result.wall_s)),
        (
            "trace",
            Json::obj(vec![
                ("policy", Json::Str(result.trace_policy.clone())),
                ("hits", Json::U64(result.trace_hits() as u64)),
                ("misses", Json::U64(result.trace_misses() as u64)),
            ]),
        ),
        ("machines", Json::Arr(machines)),
        ("cells", Json::Arr(cells)),
        ("derived", Json::Arr(derived)),
        ("checks", Json::Arr(checks)),
    ])
}

/// Run one experiment end to end — simulate, print the tables, write
/// the artifact, print every check verdict — and return the result and
/// verdicts (the `--bin all` driver aggregates them into its suite
/// summary).
///
/// # Panics
/// If the artifact cannot be written.
pub fn run_and_report(
    exp: &Experiment,
    opts: &RunOptions,
    out_dir: &Path,
) -> (ExperimentResult, Vec<Check>) {
    let pre = swpf_obs::enabled().then(|| swpf_obs::snapshot().summary());
    let result = {
        let _span =
            swpf_obs::enabled().then(|| swpf_obs::span(format!("experiment:{}", exp.spec.name)));
        run_experiment(exp, opts)
    };
    if swpf_obs::enabled() {
        swpf_obs::count("trace.cache_hit", result.trace_hits() as u64);
        swpf_obs::count("trace.cache_miss", result.trace_misses() as u64);
        // Cell-size distribution: one sample per simulated cell, so
        // every profiled experiment exercises the chrome-trace
        // histogram series (`hist:harness.cell_cycles:*`).
        for c in &result.cells {
            swpf_obs::record("harness.cell_cycles", c.max_cycles());
        }
    }
    let profile = pre.map(|p| profile_window_json(&p, &swpf_obs::snapshot().summary()));
    let derived = (exp.derive)(&result);
    let mut checks = structural_checks(&result, &derived);
    checks.extend((exp.checks)(&result, &derived));

    println!(
        "\n#### {} — {} [scale={}, {} jobs, {} threads, {:.2}s, trace {}: {} replayed / {} interpreted]",
        result.name,
        result.title,
        result.scale.label(),
        result.cells.len(),
        result.threads,
        result.wall_s,
        result.trace_policy,
        result.trace_hits(),
        result.trace_misses(),
    );
    print_sections(&derived);
    let path = write_artifact_with_profile(out_dir, &result, &derived, &checks, profile)
        .unwrap_or_else(|e| panic!("cannot write artifact for {}: {e}", result.name));
    println!("\nartifact: {}", path.display());
    for check in &checks {
        let verdict = if check.passed { "ok  " } else { "FAIL" };
        println!("check {verdict} {} — {}", check.name, check.detail);
    }
    (result, checks)
}

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Worker threads (`--threads N`, `SWPF_THREADS`; 0 = all cores)
    /// and trace policy (`--trace-dir DIR`, `SWPF_TRACE_DIR`,
    /// `--no-trace`; default: in-memory record/replay).
    pub run: RunOptions,
    /// Artifact directory (`--out DIR`, default `RESULTS`).
    pub out_dir: PathBuf,
    /// Chrome-trace profile output (`--profile PATH`, `SWPF_PROFILE`);
    /// `None` leaves `swpf-obs` disabled.
    pub profile: Option<PathBuf>,
}

/// Parse process arguments and environment.
///
/// # Panics
/// On malformed arguments (this is a bench CLI; fail loudly).
#[must_use]
pub fn cli_options() -> CliOptions {
    cli_options_from(std::env::args().skip(1))
}

/// [`cli_options`] over an explicit argument stream — for drivers (the
/// `all` binary) that strip their own arguments (`--only`, `--skip`,
/// `--list`) before delegating the shared ones here.
///
/// # Panics
/// On malformed arguments (this is a bench CLI; fail loudly).
#[must_use]
pub fn cli_options_from(args: impl Iterator<Item = String>) -> CliOptions {
    let mut threads: usize = std::env::var("SWPF_THREADS")
        .ok()
        .map(|v| v.parse().expect("SWPF_THREADS must be an integer"))
        .unwrap_or(0);
    let mut trace = match std::env::var_os("SWPF_TRACE_DIR") {
        Some(dir) => TracePolicy::Dir(PathBuf::from(dir)),
        None => TracePolicy::default(),
    };
    let mut stream = std::env::var_os("SWPF_TRACE_STREAM").is_some();
    let mut trace_cap = std::env::var("SWPF_TRACE_CAP")
        .ok()
        .map(|v| parse_size(&v).expect("SWPF_TRACE_CAP must be a size like 512M"));
    let mut out_dir = PathBuf::from("RESULTS");
    let mut profile = std::env::var_os("SWPF_PROFILE").map(PathBuf::from);
    // `SWPF_PERF=0` explicitly off, any other value on — same contract
    // as the simulator's own env seed (`swpf_sim::perf`).
    let mut perf = std::env::var("SWPF_PERF").is_ok_and(|v| v != "0");
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = v.parse().expect("--threads must be an integer");
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--trace-dir" => {
                trace = TracePolicy::Dir(PathBuf::from(
                    args.next().expect("--trace-dir needs a directory"),
                ));
            }
            "--no-trace" => trace = TracePolicy::Off,
            "--stream-replay" => stream = true,
            "--trace-cap" => {
                let v = args.next().expect("--trace-cap needs a size (e.g. 512M)");
                trace_cap =
                    Some(parse_size(&v).expect("--trace-cap must be a size like 4096, 64K, 512M"));
            }
            "--profile" => {
                profile = Some(PathBuf::from(
                    args.next().expect("--profile needs an output path"),
                ));
            }
            "--perf" => perf = true,
            other => panic!(
                "unknown argument `{other}` \
                 (expected --threads N | --out DIR | --trace-dir DIR | --no-trace \
                 | --stream-replay | --trace-cap BYTES | --profile PATH | --perf)"
            ),
        }
    }
    CliOptions {
        run: RunOptions {
            threads,
            trace,
            stream,
            trace_cap,
            perf,
        },
        out_dir,
        profile,
    }
}

/// Enable `swpf-obs` profiling when the run asked for it (`--profile`
/// / `SWPF_PROFILE`), returning the chrome-trace output path to hand
/// to [`finish_profiling`] once the run completes.
#[must_use]
pub fn init_profiling(opts: &CliOptions) -> Option<PathBuf> {
    let path = opts.profile.clone()?;
    swpf_obs::enable();
    swpf_obs::name_thread("main");
    Some(path)
}

/// Capture everything recorded since [`init_profiling`] and write the
/// Chrome trace-event JSON to `path` (load in `chrome://tracing` /
/// Perfetto, or render as a table with `--bin prof_report`). Write
/// failures warn rather than fail the run — profiling is advisory.
pub fn finish_profiling(path: &Path) {
    let profile = swpf_obs::snapshot();
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, profile.to_chrome_json()) {
        Ok(()) => println!(
            "profile: {} ({} threads, {} counters; render with --bin prof_report)",
            path.display(),
            profile.threads.len(),
            profile.counters.len(),
        ),
        Err(e) => eprintln!("warning: cannot write profile {}: {e}", path.display()),
    }
}

/// Parse a byte count with an optional `K`/`M`/`G` suffix (powers of
/// 1024, case-insensitive): `4096`, `64K`, `512M`, `2G`.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits.parse::<u64>().ok()?.checked_shl(shift)
}

/// Entry point for the per-figure binaries: run the named experiment at
/// the `SWPF_SCALE` scale and exit non-zero on shape-check failure.
///
/// # Panics
/// If `name` is not a known experiment.
#[must_use]
pub fn cli_main(name: &str) -> std::process::ExitCode {
    let scale = crate::scale_from_env();
    let opts = cli_options();
    let profile = init_profiling(&opts);
    let exp = crate::experiments::by_name(name, scale)
        .unwrap_or_else(|| panic!("unknown experiment `{name}`"));
    let (_, checks) = run_and_report(&exp, &opts.run, &opts.out_dir);
    if let Some(path) = profile {
        finish_profiling(&path);
    }
    if checks.iter().all(|c| c.passed) {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "tiny",
            title: "expansion unit-test grid",
            scale: Scale::Test,
            machines: vec![MachineConfig::haswell(), MachineConfig::a53()],
            workloads: vec![WorkloadId::Is, WorkloadId::Hj8],
            variants: vec![
                Variant::baseline(),
                Variant::Kernel(KernelVariant::Manual { look_ahead: 64 }),
            ],
            filter: None,
            perf: false,
        }
    }

    #[test]
    fn expansion_covers_the_full_grid() {
        let jobs = expand(&tiny_spec());
        assert_eq!(jobs.len(), 2 * 2 * 2);
    }

    #[test]
    fn expansion_dedups_repeated_baselines() {
        let mut spec = tiny_spec();
        spec.variants.push(Variant::baseline());
        assert_eq!(expand(&spec).len(), 8, "duplicate baseline collapses");
    }

    #[test]
    fn expansion_drops_unsupported_kernel_variants() {
        let mut spec = tiny_spec();
        spec.variants.push(Variant::Kernel(KernelVariant::Fig2(
            swpf_workloads::is::Fig2Scheme::Optimal,
        )));
        // Fig. 2 schemes exist only for IS: +2 jobs, not +4.
        assert_eq!(expand(&spec).len(), 10);
    }

    #[test]
    fn expansion_applies_cell_filters() {
        let mut spec = tiny_spec();
        fn only_haswell(m: &MachineConfig, _w: WorkloadId, v: &Variant) -> bool {
            !matches!(v, Variant::Kernel(KernelVariant::Manual { .. })) || m.name == "haswell"
        }
        spec.filter = Some(only_haswell);
        assert_eq!(expand(&spec).len(), 4 + 2);
    }

    #[test]
    fn multicore_variants_share_kernel_modules() {
        let a = Variant::Multicore {
            cores: 1,
            auto: false,
        };
        let b = Variant::Multicore {
            cores: 4,
            auto: false,
        };
        assert_eq!(a.module_key(), b.module_key());
        assert_ne!(a.label(), b.label());
        assert_eq!(a.module_key(), Variant::baseline().module_key());
    }

    #[test]
    fn run_options_clamp_to_job_count() {
        let opts = RunOptions {
            threads: 64,
            ..RunOptions::default()
        };
        assert_eq!(opts.effective_threads(3), 3);
        assert_eq!(opts.effective_threads(0), 1);
        assert!(RunOptions::default().effective_threads(1000) >= 1);
    }

    #[test]
    fn trace_keys_separate_core_counts_but_share_modules() {
        let one = Variant::Multicore {
            cores: 1,
            auto: false,
        };
        let four = Variant::Multicore {
            cores: 4,
            auto: false,
        };
        assert_eq!(one.module_key(), four.module_key());
        assert_ne!(one.trace_key(), four.trace_key());
        assert_eq!(Variant::baseline().trace_key(), "baseline");
        assert_eq!(four.trace_key(), "baseline_mc4");
    }
}
