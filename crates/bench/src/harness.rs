//! # The experiment harness
//!
//! Every figure/table reproduction is a *declarative*
//! [`ExperimentSpec`]: a machine × workload × variant grid (plus an
//! optional cell filter for asymmetric figures like Fig. 4's
//! Phi-only ICC column). The harness expands the grid into independent
//! [`SimJob`]s, builds and pass-compiles each distinct kernel module
//! **once**, decodes it once into a shared [`ExecImage`], and executes
//! the jobs on a self-scheduling pool of host threads
//! (`std::thread::scope` workers pulling from an atomic job queue —
//! every simulation in a grid is independent, so the grid parallelises
//! embarrassingly).
//!
//! Each run emits:
//! * the human-readable table (what the original per-figure binaries
//!   printed), rendered from derived [`TableSection`]s, and
//! * a machine-readable JSON artifact `RESULTS/<name>.json` — spec,
//!   per-cell [`SimStats`] counters, derived tables, shape-check
//!   verdicts, and wall-clock metadata — so CI can diff the numbers a
//!   PR changed.
//!
//! Shape checks ([`Check`]) turn the suite into an end-to-end
//! regression oracle: structural checks (grid complete, non-zero
//! cycles, finite derived values) run at every scale, and each
//! experiment adds behavioural checks for the paper's qualitative
//! claims (e.g. *software prefetching speeds up in-order machines*).

use crate::json::Json;
use crate::{auto_module, geomean, icc_module};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use swpf_core::PassConfig;
use swpf_ir::exec::ExecImage;
use swpf_ir::FuncId;
use swpf_sim::{run_multicore_image, run_on_machine_image, MachineConfig, SimStats};
use swpf_workloads::{KernelVariant, Scale, Workload, WorkloadId};

/// One axis value of the variant dimension: what kernel to run, and how.
#[derive(Debug, Clone)]
pub enum Variant {
    /// A kernel the workload builds itself (baseline, manual, Fig. 2
    /// schemes, stagger depths).
    Kernel(KernelVariant),
    /// The automatic pass output under `config`. `label` names the cell
    /// (one spec may sweep several configs, e.g. Fig. 5).
    Auto {
        /// Cell label ("auto", "auto_nostride", ...).
        label: &'static str,
        /// Pass configuration to compile with.
        config: PassConfig,
    },
    /// The ICC-like stride-indirect baseline pass (Fig. 4d).
    Icc,
    /// `cores` copies of the kernel on a shared memory system (Fig. 9).
    Multicore {
        /// Number of cores, each running its own copy.
        cores: usize,
        /// Run the auto-pass kernel instead of the baseline.
        auto: bool,
    },
}

impl Variant {
    /// The baseline kernel variant (speedup denominator).
    #[must_use]
    pub fn baseline() -> Variant {
        Variant::Kernel(KernelVariant::Baseline)
    }

    /// The auto-pass variant at the default configuration.
    #[must_use]
    pub fn auto_default() -> Variant {
        Variant::Auto {
            label: "auto",
            config: PassConfig::default(),
        }
    }

    /// Unique cell label within an experiment.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Variant::Kernel(v) => v.label(),
            Variant::Auto { label, .. } => (*label).to_string(),
            Variant::Icc => "icc".to_string(),
            Variant::Multicore { cores, auto } => {
                format!("mc{cores}_{}", if *auto { "auto" } else { "baseline" })
            }
        }
    }

    /// Key of the kernel module this variant executes. Variants sharing
    /// a key share one build + pass-compile + decode (e.g. every
    /// Fig. 9 core count reuses the same two modules).
    #[must_use]
    pub fn module_key(&self) -> String {
        match self {
            Variant::Kernel(v) => v.label(),
            Variant::Auto { label, .. } => (*label).to_string(),
            Variant::Icc => "icc".to_string(),
            Variant::Multicore { auto: true, .. } => "auto".to_string(),
            Variant::Multicore { auto: false, .. } => "baseline".to_string(),
        }
    }
}

/// Cell filter: keep the (machine, workload, variant) combination?
pub type CellFilter = fn(&MachineConfig, WorkloadId, &Variant) -> bool;

/// A declarative experiment: the full grid, expanded by [`expand`].
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Artifact name ("fig4"); also the `RESULTS/<name>.json` stem.
    pub name: &'static str,
    /// Human title for tables and logs.
    pub title: &'static str,
    /// Workload scale the grid runs at.
    pub scale: Scale,
    /// Machine axis.
    pub machines: Vec<MachineConfig>,
    /// Workload axis.
    pub workloads: Vec<WorkloadId>,
    /// Variant axis.
    pub variants: Vec<Variant>,
    /// Optional cell filter (`None` keeps the full cross product).
    pub filter: Option<CellFilter>,
}

impl ExperimentSpec {
    fn keep(&self, m: &MachineConfig, w: WorkloadId, v: &Variant) -> bool {
        self.filter.is_none_or(|f| f(m, w, v))
    }
}

/// One independent simulation: indices into the spec's axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimJob {
    /// Index into [`ExperimentSpec::machines`].
    pub machine: usize,
    /// Index into [`ExperimentSpec::workloads`].
    pub workload: usize,
    /// Index into [`ExperimentSpec::variants`].
    pub variant: usize,
}

/// Expand a spec into its deduplicated job list.
///
/// Cells are dropped when the filter rejects them or the workload does
/// not support the kernel variant (e.g. Fig. 2 schemes outside IS), and
/// deduplicated by `(machine, workload, label)` so a variant listed
/// twice — typically a shared baseline — runs once.
#[must_use]
pub fn expand(spec: &ExperimentSpec) -> Vec<SimJob> {
    let supported: Vec<bool> = support_mask(spec);
    let mut seen = std::collections::HashSet::new();
    let mut jobs = Vec::new();
    for (wi, &w) in spec.workloads.iter().enumerate() {
        for (vi, v) in spec.variants.iter().enumerate() {
            if !supported[wi * spec.variants.len() + vi] {
                continue;
            }
            for (mi, m) in spec.machines.iter().enumerate() {
                if !spec.keep(m, w, v) {
                    continue;
                }
                if seen.insert((mi, wi, v.label())) {
                    jobs.push(SimJob {
                        machine: mi,
                        workload: wi,
                        variant: vi,
                    });
                }
            }
        }
    }
    jobs
}

/// `workload × variant` support matrix (kernel variants a workload
/// cannot build are unsupported; pass variants work everywhere).
fn support_mask(spec: &ExperimentSpec) -> Vec<bool> {
    let probe: Vec<Box<dyn Workload>> = spec
        .workloads
        .iter()
        .map(|id| id.instantiate(Scale::Test))
        .collect();
    let mut mask = Vec::with_capacity(spec.workloads.len() * spec.variants.len());
    for w in &probe {
        for v in &spec.variants {
            mask.push(match v {
                // Probe with tiny inputs: support depends only on the
                // workload's shape, not its scale.
                Variant::Kernel(kv) => w.build_variant(*kv).is_some(),
                Variant::Auto { .. } | Variant::Icc | Variant::Multicore { .. } => true,
            });
        }
    }
    mask
}

/// A decoded, ready-to-run kernel module.
struct PreparedModule {
    image: Arc<ExecImage>,
    func: FuncId,
}

/// The result of one simulated cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Machine display name.
    pub machine: &'static str,
    /// Workload display name.
    pub workload: &'static str,
    /// Variant label.
    pub variant: String,
    /// Per-core statistics; single-core cells have exactly one entry.
    pub cores: Vec<SimStats>,
    /// Host wall-clock time of this simulation in milliseconds.
    pub wall_ms: f64,
}

impl CellResult {
    /// The single-core statistics (first core).
    ///
    /// # Panics
    /// Never — every cell has at least one core.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.cores[0]
    }

    /// Simulated makespan: the slowest core's cycle count.
    #[must_use]
    pub fn max_cycles(&self) -> u64 {
        self.cores.iter().map(|s| s.cycles).max().unwrap_or(0)
    }
}

/// Everything one experiment run produced.
pub struct ExperimentResult {
    /// Artifact name.
    pub name: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Scale the run used.
    pub scale: Scale,
    /// Machine axis (for artifact metadata).
    pub machines: Vec<MachineConfig>,
    /// One entry per executed job, in deterministic job order.
    pub cells: Vec<CellResult>,
    /// Worker threads used.
    pub threads: usize,
    /// Total harness wall time in seconds (prepare + simulate).
    pub wall_s: f64,
}

impl ExperimentResult {
    /// Find a cell by its three axis labels.
    #[must_use]
    pub fn cell(&self, machine: &str, workload: &str, variant: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.machine == machine && c.workload == workload && c.variant == variant)
    }

    /// Speedup of `variant` over the `baseline` variant on the same
    /// machine × workload cell; `NaN` when either cell is missing.
    #[must_use]
    pub fn speedup(&self, machine: &str, workload: &str, variant: &str) -> f64 {
        let (Some(v), Some(b)) = (
            self.cell(machine, workload, variant),
            self.cell(machine, workload, "baseline"),
        ) else {
            return f64::NAN;
        };
        v.stats().speedup_vs(b.stats())
    }
}

/// How to run an experiment's jobs.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads; `0` (the default) means one per host core.
    pub threads: usize,
}

impl RunOptions {
    fn effective_threads(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, jobs.max(1))
    }
}

/// A derived (printable + serialised) table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSection {
    /// Section heading.
    pub title: String,
    /// Column headings (value columns; the row-name column is implied).
    pub columns: Vec<String>,
    /// Rows in display order.
    pub rows: Vec<Row>,
    /// Free-form footer lines (e.g. Table 1's real-hardware reference).
    pub notes: Vec<String>,
}

impl TableSection {
    /// A section with no footer notes.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>, rows: Vec<Row>) -> TableSection {
        TableSection {
            title: title.into(),
            columns,
            rows,
            notes: Vec::new(),
        }
    }
}

/// One row of a derived table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row name (workload, machine, or sweep point).
    pub name: String,
    /// One value per column.
    pub values: Vec<f64>,
}

/// A shape-assertion verdict.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable check name.
    pub name: String,
    /// Did the shape hold?
    pub passed: bool,
    /// Human-readable evidence (the numbers involved).
    pub detail: String,
}

impl Check {
    /// Build a verdict from a condition and its evidence.
    #[must_use]
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Check {
        Check {
            name: name.into(),
            passed,
            detail: detail.into(),
        }
    }
}

/// Derivation hook: turn raw cells into the figure's tables.
pub type DeriveFn = fn(&ExperimentResult) -> Vec<TableSection>;
/// Shape-check hook: assert the paper's qualitative claims.
pub type ChecksFn = fn(&ExperimentResult, &[TableSection]) -> Vec<Check>;

/// A complete experiment: grid + derivation + shape checks.
pub struct Experiment {
    /// The declarative grid.
    pub spec: ExperimentSpec,
    /// Derivation hook.
    pub derive: DeriveFn,
    /// Shape-check hook (behavioural; structural checks are automatic).
    pub checks: ChecksFn,
}

/// Run an experiment: prepare modules, execute the job grid on a thread
/// pool, and collect per-cell statistics in deterministic order.
///
/// # Panics
/// On unsupported spec cells surviving expansion, simulation traps, or
/// a poisoned result mutex — all harness-fatal configuration errors.
#[must_use]
pub fn run_experiment(exp: &Experiment, opts: &RunOptions) -> ExperimentResult {
    let spec = &exp.spec;
    let t0 = Instant::now();

    // Instantiate each workload once; jobs share them read-only.
    let workloads: Vec<Box<dyn Workload>> = spec
        .workloads
        .iter()
        .map(|id| id.instantiate(spec.scale))
        .collect();

    let jobs = expand(spec);

    // Build + pass-compile + decode each distinct kernel module once.
    let mut modules: HashMap<(usize, String), PreparedModule> = HashMap::new();
    for job in &jobs {
        let key = (job.workload, spec.variants[job.variant].module_key());
        if modules.contains_key(&key) {
            continue;
        }
        let w = workloads[job.workload].as_ref();
        let module = match &spec.variants[job.variant] {
            Variant::Kernel(kv) => w
                .build_variant(*kv)
                .expect("expansion only keeps supported kernel variants"),
            Variant::Auto { config, .. } => auto_module(w, config),
            Variant::Icc => icc_module(w, &PassConfig::default()),
            Variant::Multicore { auto, .. } => {
                if *auto {
                    auto_module(w, &PassConfig::default())
                } else {
                    w.build_baseline()
                }
            }
        };
        let func = module
            .find_function("kernel")
            .expect("workload kernels are named `kernel`");
        modules.insert(
            key,
            PreparedModule {
                image: Arc::new(ExecImage::build(&module)),
                func,
            },
        );
    }

    // Execute: worker threads self-schedule jobs off an atomic queue
    // (pull-based stealing — a slow cell never blocks the rest of the
    // grid behind it).
    let threads = opts.effective_threads(jobs.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; jobs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let cell = run_job(spec, &workloads, &modules, *job);
                slots.lock().expect("no panics hold the lock")[i] = Some(cell);
            });
        }
    });

    let cells = slots
        .into_inner()
        .expect("workers finished")
        .into_iter()
        .map(|c| c.expect("every job ran"))
        .collect();

    ExperimentResult {
        name: spec.name,
        title: spec.title,
        scale: spec.scale,
        machines: spec.machines.clone(),
        cells,
        threads,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

fn run_job(
    spec: &ExperimentSpec,
    workloads: &[Box<dyn Workload>],
    modules: &HashMap<(usize, String), PreparedModule>,
    job: SimJob,
) -> CellResult {
    let variant = &spec.variants[job.variant];
    let machine = &spec.machines[job.machine];
    let w = workloads[job.workload].as_ref();
    let prepared = &modules[&(job.workload, variant.module_key())];
    let t0 = Instant::now();
    let cores = match variant {
        Variant::Multicore { cores, .. } => run_multicore_image(
            machine,
            *cores,
            &prepared.image,
            prepared.func,
            |_, interp| w.setup(interp),
        ),
        _ => vec![run_on_machine_image(
            machine,
            &prepared.image,
            prepared.func,
            |interp| w.setup(interp),
        )],
    };
    CellResult {
        machine: machine.name,
        workload: w.name(),
        variant: variant.label(),
        cores,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Structural shape checks every experiment gets for free: the grid is
/// complete, every simulated cell retired work, and no derived value is
/// non-finite or negative.
#[must_use]
pub fn structural_checks(result: &ExperimentResult, derived: &[TableSection]) -> Vec<Check> {
    let mut checks = Vec::new();
    let dead = result
        .cells
        .iter()
        .filter(|c| c.cores.iter().any(|s| s.cycles == 0 || s.insts.total == 0))
        .count();
    if !result.cells.is_empty() {
        checks.push(Check::new(
            "all_cells_simulated",
            dead == 0,
            format!("{} of {} cells retired no work", dead, result.cells.len()),
        ));
    }
    let mut bad_values = 0usize;
    let mut total_values = 0usize;
    for section in derived {
        for row in &section.rows {
            for v in &row.values {
                total_values += 1;
                if !v.is_finite() || *v < 0.0 {
                    bad_values += 1;
                }
            }
        }
    }
    checks.push(Check::new(
        "derived_values_finite",
        bad_values == 0,
        format!("{bad_values} of {total_values} derived values non-finite or negative"),
    ));
    checks
}

/// Geomean of one column across all named rows of a section.
#[must_use]
pub fn column_geomean(section: &TableSection, column: &str) -> f64 {
    let Some(ci) = section.columns.iter().position(|c| c == column) else {
        return f64::NAN;
    };
    let vals: Vec<f64> = section
        .rows
        .iter()
        .filter_map(|r| r.values.get(ci).copied())
        .collect();
    geomean(&vals)
}

/// Render sections the way the original per-figure binaries printed
/// their tables: the name column grows to the longest row name, and
/// whole-number values (Table 1's capacities and widths) print without
/// a fractional part.
pub fn print_sections(sections: &[TableSection]) {
    for section in sections {
        println!("\n=== {} ===", section.title);
        let name_width = section
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max(10);
        print!("{:<name_width$}", "");
        for c in &section.columns {
            print!(" {c:>10}");
        }
        println!();
        for row in &section.rows {
            print!("{:<name_width$}", row.name);
            for &v in &row.values {
                if v.fract() == 0.0 && v.abs() < 1e12 {
                    print!(" {:>10}", v as i64);
                } else {
                    print!(" {v:>10.3}");
                }
            }
            println!();
        }
        for note in &section.notes {
            println!("{note}");
        }
    }
}

/// Serialise one run to `dir/<name>.json` (creating `dir`), returning
/// the path written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_artifact(
    dir: &Path,
    result: &ExperimentResult,
    derived: &[TableSection],
    checks: &[Check],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", result.name));
    std::fs::write(
        &path,
        artifact_json(result, derived, checks).to_pretty_string(),
    )?;
    Ok(path)
}

/// The artifact document (schema v1; see DESIGN.md §5).
#[must_use]
pub fn artifact_json(
    result: &ExperimentResult,
    derived: &[TableSection],
    checks: &[Check],
) -> Json {
    let machines = result
        .machines
        .iter()
        .map(|m| {
            let mut members = vec![
                ("name", Json::Str(m.name.to_string())),
                ("core", Json::Str(m.core_kind_name().to_string())),
            ];
            members.extend(m.parameters().into_iter().map(|(k, v)| (k, Json::U64(v))));
            Json::obj(members)
        })
        .collect();
    let cells = result
        .cells
        .iter()
        .map(|c| {
            let cores = c
                .cores
                .iter()
                .map(|s| {
                    let mut members: Vec<(&str, Json)> = s
                        .counters()
                        .into_iter()
                        .map(|(k, v)| (k, Json::U64(v)))
                        .collect();
                    members.push(("ipc", Json::F64(s.ipc())));
                    Json::obj(members)
                })
                .collect();
            Json::obj(vec![
                ("machine", Json::Str(c.machine.to_string())),
                ("workload", Json::Str(c.workload.to_string())),
                ("variant", Json::Str(c.variant.clone())),
                ("wall_ms", Json::F64(c.wall_ms)),
                ("cores", Json::Arr(cores)),
            ])
        })
        .collect();
    let derived = derived
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("title", Json::Str(s.title.clone())),
                (
                    "columns",
                    Json::Arr(s.columns.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
                (
                    "notes",
                    Json::Arr(s.notes.iter().map(|n| Json::Str(n.clone())).collect()),
                ),
                (
                    "rows",
                    Json::Arr(
                        s.rows
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("name", Json::Str(r.name.clone())),
                                    (
                                        "values",
                                        Json::Arr(r.values.iter().map(|v| Json::F64(*v)).collect()),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let checks = checks
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("name", Json::Str(c.name.clone())),
                ("passed", Json::Bool(c.passed)),
                ("detail", Json::Str(c.detail.clone())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::U64(1)),
        ("experiment", Json::Str(result.name.to_string())),
        ("title", Json::Str(result.title.to_string())),
        ("scale", Json::Str(result.scale.label().to_string())),
        ("threads", Json::U64(result.threads as u64)),
        ("jobs", Json::U64(result.cells.len() as u64)),
        ("wall_seconds", Json::F64(result.wall_s)),
        ("machines", Json::Arr(machines)),
        ("cells", Json::Arr(cells)),
        ("derived", Json::Arr(derived)),
        ("checks", Json::Arr(checks)),
    ])
}

/// Run one experiment end to end — simulate, print the tables, write
/// the artifact, print every check verdict — and return the result and
/// verdicts (the `--bin all` driver aggregates them into its suite
/// summary).
///
/// # Panics
/// If the artifact cannot be written.
pub fn run_and_report(
    exp: &Experiment,
    opts: &RunOptions,
    out_dir: &Path,
) -> (ExperimentResult, Vec<Check>) {
    let result = run_experiment(exp, opts);
    let derived = (exp.derive)(&result);
    let mut checks = structural_checks(&result, &derived);
    checks.extend((exp.checks)(&result, &derived));

    println!(
        "\n#### {} — {} [scale={}, {} jobs, {} threads, {:.2}s]",
        result.name,
        result.title,
        result.scale.label(),
        result.cells.len(),
        result.threads,
        result.wall_s,
    );
    print_sections(&derived);
    let path = write_artifact(out_dir, &result, &derived, &checks)
        .unwrap_or_else(|e| panic!("cannot write artifact for {}: {e}", result.name));
    println!("\nartifact: {}", path.display());
    for check in &checks {
        let verdict = if check.passed { "ok  " } else { "FAIL" };
        println!("check {verdict} {} — {}", check.name, check.detail);
    }
    (result, checks)
}

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Worker threads (`--threads N`, `SWPF_THREADS`; 0 = all cores).
    pub run: RunOptions,
    /// Artifact directory (`--out DIR`, default `RESULTS`).
    pub out_dir: PathBuf,
}

/// Parse process arguments and environment.
///
/// # Panics
/// On malformed arguments (this is a bench CLI; fail loudly).
#[must_use]
pub fn cli_options() -> CliOptions {
    let mut threads: usize = std::env::var("SWPF_THREADS")
        .ok()
        .map(|v| v.parse().expect("SWPF_THREADS must be an integer"))
        .unwrap_or(0);
    let mut out_dir = PathBuf::from("RESULTS");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = v.parse().expect("--threads must be an integer");
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            other => panic!("unknown argument `{other}` (expected --threads N | --out DIR)"),
        }
    }
    CliOptions {
        run: RunOptions { threads },
        out_dir,
    }
}

/// Entry point for the per-figure binaries: run the named experiment at
/// the `SWPF_SCALE` scale and exit non-zero on shape-check failure.
///
/// # Panics
/// If `name` is not a known experiment.
#[must_use]
pub fn cli_main(name: &str) -> std::process::ExitCode {
    let scale = crate::scale_from_env();
    let opts = cli_options();
    let exp = crate::experiments::by_name(name, scale)
        .unwrap_or_else(|| panic!("unknown experiment `{name}`"));
    let (_, checks) = run_and_report(&exp, &opts.run, &opts.out_dir);
    if checks.iter().all(|c| c.passed) {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "tiny",
            title: "expansion unit-test grid",
            scale: Scale::Test,
            machines: vec![MachineConfig::haswell(), MachineConfig::a53()],
            workloads: vec![WorkloadId::Is, WorkloadId::Hj8],
            variants: vec![
                Variant::baseline(),
                Variant::Kernel(KernelVariant::Manual { look_ahead: 64 }),
            ],
            filter: None,
        }
    }

    #[test]
    fn expansion_covers_the_full_grid() {
        let jobs = expand(&tiny_spec());
        assert_eq!(jobs.len(), 2 * 2 * 2);
    }

    #[test]
    fn expansion_dedups_repeated_baselines() {
        let mut spec = tiny_spec();
        spec.variants.push(Variant::baseline());
        assert_eq!(expand(&spec).len(), 8, "duplicate baseline collapses");
    }

    #[test]
    fn expansion_drops_unsupported_kernel_variants() {
        let mut spec = tiny_spec();
        spec.variants.push(Variant::Kernel(KernelVariant::Fig2(
            swpf_workloads::is::Fig2Scheme::Optimal,
        )));
        // Fig. 2 schemes exist only for IS: +2 jobs, not +4.
        assert_eq!(expand(&spec).len(), 10);
    }

    #[test]
    fn expansion_applies_cell_filters() {
        let mut spec = tiny_spec();
        fn only_haswell(m: &MachineConfig, _w: WorkloadId, v: &Variant) -> bool {
            !matches!(v, Variant::Kernel(KernelVariant::Manual { .. })) || m.name == "haswell"
        }
        spec.filter = Some(only_haswell);
        assert_eq!(expand(&spec).len(), 4 + 2);
    }

    #[test]
    fn multicore_variants_share_kernel_modules() {
        let a = Variant::Multicore {
            cores: 1,
            auto: false,
        };
        let b = Variant::Multicore {
            cores: 4,
            auto: false,
        };
        assert_eq!(a.module_key(), b.module_key());
        assert_ne!(a.label(), b.label());
        assert_eq!(a.module_key(), Variant::baseline().module_key());
    }

    #[test]
    fn run_options_clamp_to_job_count() {
        let opts = RunOptions { threads: 64 };
        assert_eq!(opts.effective_threads(3), 3);
        assert_eq!(opts.effective_threads(0), 1);
        assert!(RunOptions { threads: 0 }.effective_threads(1000) >= 1);
    }
}
