//! Per-pass optimizer counters surface in profiled artifacts.
//!
//! Every pipeline pass counts its own work (`pass.<name>.removed`,
//! `.hoisted`, `.folded`) through `swpf-obs`, and
//! [`swpf_bench::harness::profile_window_json`] copies every counter
//! with a positive delta into the artifact's `profile.counters`
//! section. This test pins that contract end to end: compile the whole
//! test-scale workload suite through the full pipeline — which
//! exercises GVN and LICM — and through the local-only pipeline —
//! which exercises CSE (in the full pipeline GVN runs first and
//! subsumes every duplicate CSE would catch) — plus one synthetic
//! kernel whose constant arithmetic feeds SCCP and whose dead
//! instruction feeds DCE (the workload kernels carry neither foldable
//! constants nor dead code, so those counters would otherwise stay at
//! zero and be filtered), then assert the rendered window names all
//! five.

use swpf_bench::harness::profile_window_json;
use swpf_core::{run_on_module, PassConfig};
use swpf_workloads::{suite, Scale};

/// Straight-line constant arithmetic: `%3` and `%4` are proven
/// constants, so SCCP folds them (two `pass.sccp.folded` ticks), and
/// the never-used `%6` guarantees DCE at least one removal on top of
/// whatever SCCP's folding leaves dead.
const FOLDABLE_KERNEL: &str = "module fold

func @kernel(%0: i64) -> i64 {
  %1 = const 3: i64
  %2 = const 4: i64
bb0:
  %3: i64 = add %1, %2
  %4: i64 = mul %3, %1
  %5: i64 = add %4, %0
  %6: i64 = sub %5, %2
  ret %5
}
";

#[test]
fn all_five_pass_counters_surface_in_the_profile_window() {
    swpf_obs::enable();
    let pre = swpf_obs::snapshot().summary();

    // The real kernels feed GVN, LICM, and DCE through the full
    // pipeline, and CSE through the local-only one (after GVN there is
    // nothing block-local left for CSE to remove).
    for spec in ["swpf,gvn,sccp,licm,cse,dce", "swpf,cse,dce"] {
        for w in suite(Scale::Test) {
            let mut m = w.build_baseline();
            run_on_module(&mut m, &PassConfig::with_pipeline(spec));
        }
    }

    // The synthetic kernel feeds SCCP (folds) and DCE (dead `%6`).
    let mut m = swpf_ir::parser::parse_module(FOLDABLE_KERNEL).expect("foldable kernel parses");
    swpf_ir::verifier::verify_module(&m).expect("foldable kernel verifies");
    run_on_module(&mut m, &PassConfig::with_pipeline("sccp,dce"));

    let post = swpf_obs::snapshot().summary();
    let window = profile_window_json(&pre, &post).to_pretty_string();
    for counter in [
        "pass.gvn.removed",
        "pass.sccp.folded",
        "pass.licm.hoisted",
        "pass.cse.removed",
        "pass.dce.removed",
    ] {
        assert!(
            window.contains(counter),
            "profile window must surface `{counter}`, got:\n{window}"
        );
    }
}
