//! End-to-end acceptance tests of the tuning subsystem at
//! `Scale::Test`: the golden-section/oracle equivalence on unimodal
//! cells, the ≤-half search-cost bound, the never-worse-than-heuristic
//! guarantee, determinism, and the artifact shape (including the
//! self-describing `params` member).

use swpf_bench::experiments;
use swpf_bench::harness::artifact_json;
use swpf_bench::json::Json;
use swpf_bench::tune::run_tune;
use swpf_core::PassConfig;
use swpf_sim::CoreKind;
use swpf_tune::{
    distance_curve, strictly_unimodal, tune_cell, Evaluator, Exhaustive, GoldenSection, SearchSpace,
};
use swpf_workloads::Scale;

/// The acceptance grid: the default tune experiment already spans
/// ≥ 2 in-order machines × ≥ 3 workloads.
#[test]
fn default_grid_is_in_order_machines_by_fig6_workloads() {
    let exp = experiments::tune(Scale::Test);
    assert!(exp.machines.len() >= 2);
    assert!(exp.machines.iter().all(|m| m.core == CoreKind::InOrder));
    assert!(exp.workloads.len() >= 3);
    assert!(
        exp.space.look_aheads.contains(&64),
        "heuristic is a candidate"
    );
}

/// The headline acceptance criteria, per cell of the default grid:
/// golden-section finds the exhaustive optimum on every strictly
/// unimodal cell while evaluating at most half as many points, and no
/// tuned config is ever worse than the paper heuristic.
#[test]
fn golden_matches_oracle_at_half_cost_and_tuned_never_loses() {
    let exp = experiments::tune(Scale::Test);
    for &wid in &exp.workloads {
        let w = wid.instantiate(exp.scale);
        let mut eval = Evaluator::new(w.as_ref(), &exp.machines);
        for mi in 0..exp.machines.len() {
            let oracle = tune_cell(&Exhaustive, &exp.space, mi, &mut eval, None);
            let golden = tune_cell(
                &GoldenSection,
                &exp.space,
                mi,
                &mut eval,
                Some(oracle.chosen_cycles),
            );
            let cell = format!("{}/{}", exp.machines[mi].name, w.name());

            assert!(
                golden.points.len() * 2 <= oracle.points.len(),
                "{cell}: golden evaluated {} of exhaustive's {} points",
                golden.points.len(),
                oracle.points.len()
            );
            assert!(
                golden.chosen_cycles <= golden.heuristic_cycles,
                "{cell}: tuned worse than heuristic"
            );
            assert!(
                oracle.chosen_cycles <= oracle.heuristic_cycles,
                "{cell}: oracle worse than heuristic"
            );

            let curve = distance_curve(&exp.space, &oracle.points);
            assert_eq!(curve.len(), exp.space.len(), "oracle sweeps the axis");
            if strictly_unimodal(&curve) {
                assert_eq!(
                    golden.chosen_cycles, oracle.chosen_cycles,
                    "{cell}: golden must find the oracle optimum on a unimodal curve"
                );
            }
        }
    }
}

/// The full experiment runner: every shape check passes at test scale
/// (the CI `tune-smoke` job runs exactly this via `--bin tune`), and
/// the run is deterministic.
#[test]
fn tune_experiment_checks_pass_and_runs_are_deterministic() {
    let exp = experiments::tune(Scale::Test);
    let (result, derived, checks) = run_tune(&exp);
    for c in &checks {
        assert!(c.passed, "check {} failed: {}", c.name, c.detail);
    }
    assert!(!derived.is_empty());

    let (again, _, _) = run_tune(&exp);
    assert_eq!(result.cells.len(), again.cells.len());
    for (a, b) in result.cells.iter().zip(&again.cells) {
        assert_eq!(
            (a.machine, a.workload, &a.variant),
            (b.machine, b.workload, &b.variant)
        );
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles, "{}", a.variant);
    }
}

/// The artifact: schema v1 with self-describing per-cell `params`
/// (look-ahead and transform toggles) on every evaluated point.
#[test]
fn tune_artifact_cells_carry_their_pass_parameters() {
    let mut exp = experiments::tune(Scale::Test);
    exp.workloads.truncate(1); // one workload is enough for shape
    let (result, derived, checks) = run_tune(&exp);
    let doc = artifact_json(&result, &derived, &checks);
    let parsed = Json::parse(&doc.to_pretty_string()).expect("artifact parses");

    assert_eq!(
        parsed.get("experiment").and_then(Json::as_str),
        Some("tune")
    );
    let cells = parsed
        .get("cells")
        .and_then(Json::as_array)
        .expect("cells array");
    assert!(!cells.is_empty());
    for cell in cells {
        let params = cell.get("params").expect("every tuned cell has params");
        let la = params
            .get("look_ahead")
            .and_then(Json::as_f64)
            .expect("look_ahead recorded");
        assert!(
            exp.space.look_aheads.contains(&(la as i64)) || la as i64 == 64,
            "look-ahead {la} comes from the search space"
        );
        assert!(
            params.get("stride_companion").is_some(),
            "enabled transforms recorded"
        );
    }
}

/// A synthetic sanity anchor for the equivalence machinery itself: a
/// hand-made strictly unimodal curve classifies as such and the golden
/// search over it returns the global optimum (guards against the
/// classifier and the bracket drifting apart).
#[test]
fn unimodality_classifier_and_curve_extraction_agree() {
    let space = SearchSpace::paper_default();
    // distance_curve() orders points by the axis, whatever order the
    // oracle visited them in.
    let points: Vec<swpf_tune::EvalPoint> = space
        .look_aheads
        .iter()
        .rev()
        .map(|&c| swpf_tune::EvalPoint {
            config: PassConfig::with_look_ahead(c),
            cycles: ((c - 40).unsigned_abs() + 100),
        })
        .collect();
    let curve = distance_curve(&space, &points);
    assert_eq!(curve.len(), space.len());
    assert!(strictly_unimodal(&curve));
    assert_eq!(curve.iter().min(), Some(&100));
}
