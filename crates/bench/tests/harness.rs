//! End-to-end tests of the experiment harness: spec expansion over the
//! real experiment list, deterministic threaded execution, and a
//! JSON-artifact snapshot at `Scale::Test`.

use swpf_bench::experiments::{self, ALL_NAMES};
use swpf_bench::harness::{
    artifact_json, expand, run_experiment, structural_checks, write_artifact, RunOptions,
    TracePolicy,
};
use swpf_bench::json::Json;
use swpf_workloads::Scale;

fn opts(threads: usize) -> RunOptions {
    RunOptions {
        threads,
        ..RunOptions::default()
    }
}

/// Grid sizes of every real experiment, pinned. A change here means the
/// evaluated grid changed — update deliberately, alongside DESIGN.md §5.
#[test]
fn experiment_grid_sizes_are_pinned() {
    let expected = [
        ("table1", 0),
        ("fig2", 4 * 5),         // 4 machines × (baseline + 4 schemes)
        ("fig4", 4 * 7 * 3 + 7), // + Phi-only ICC column
        ("fig5", 7 * 3),         // Haswell only
        ("fig6", 4 * 4 * 8),     // baseline + 7 distances
        ("fig7", 4 * 5),         // HJ-8 only, baseline + 4 depths
        ("fig8", 7 * 3),
        ("fig9", 6),                      // {1,2,4} cores × {baseline, auto}
        ("fig10", 2 * 3 * 2),             // two page policies
        ("ablation", 4 * 7 * 6),          // baseline + five pass pipelines
        ("trace_analytics", 0),           // all work happens in derive, off traces
        ("prefetch_profile", 4 * 4 * 10), // baseline + 8 distances + auto
    ];
    assert_eq!(expected.map(|(n, _)| n), ALL_NAMES);
    for (name, jobs) in expected {
        let exp = experiments::by_name(name, Scale::Test).unwrap();
        assert_eq!(expand(&exp.spec).len(), jobs, "{name} grid size");
    }
}

/// The simulation grid is deterministic and independent of the worker
/// count: a 1-thread and a 4-thread run must produce cell-identical
/// statistics (wall-clock metadata aside).
#[test]
fn results_are_thread_count_invariant() {
    let exp = experiments::by_name("fig2", Scale::Test).unwrap();
    let serial = run_experiment(&exp, &opts(1));
    let threaded = run_experiment(&exp, &opts(4));
    assert_eq!(serial.cells.len(), threaded.cells.len());
    for (a, b) in serial.cells.iter().zip(&threaded.cells) {
        assert_eq!(
            (a.machine, a.workload, &a.variant),
            (b.machine, b.workload, &b.variant)
        );
        assert_eq!(a.cores.len(), b.cores.len());
        for (sa, sb) in a.cores.iter().zip(&b.cores) {
            assert_eq!(
                sa.cycles, sb.cycles,
                "{}/{}/{}",
                a.machine, a.workload, a.variant
            );
            assert_eq!(sa.insts.total, sb.insts.total);
            assert_eq!(sa.l1_misses, sb.l1_misses);
        }
    }
    // And so must the derived tables.
    assert_eq!((exp.derive)(&serial), (exp.derive)(&threaded));
}

/// Snapshot of the artifact schema at `Scale::Test`: write a real
/// artifact, parse it back, and pin the structure PR-diff tooling
/// depends on.
#[test]
fn artifact_snapshot_at_test_scale() {
    let exp = experiments::by_name("fig9", Scale::Test).unwrap();
    let result = run_experiment(&exp, &opts(2));
    let derived = (exp.derive)(&result);
    let mut checks = structural_checks(&result, &derived);
    checks.extend((exp.checks)(&result, &derived));

    let dir = std::env::temp_dir().join(format!("swpf_artifact_{}", std::process::id()));
    let path = write_artifact(&dir, &result, &derived, &checks).expect("artifact written");
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    std::fs::remove_dir_all(&dir).ok();
    let doc = Json::parse(&text).expect("artifact is valid JSON");

    // Top-level schema.
    assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(1));
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("fig9"));
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("test"));
    assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(6));
    assert!(doc.get("wall_seconds").unwrap().as_f64().unwrap() >= 0.0);

    // Machine metadata carries the full model parameters.
    let machines = doc.get("machines").unwrap().as_array().unwrap();
    assert_eq!(machines.len(), 1);
    assert_eq!(machines[0].get("name").unwrap().as_str(), Some("haswell"));
    assert_eq!(
        machines[0].get("core").unwrap().as_str(),
        Some("out-of-order")
    );
    for key in ["width", "l1_bytes", "l2_bytes", "dram_latency", "page_bits"] {
        assert!(machines[0].get(key).unwrap().as_u64().is_some(), "{key}");
    }

    // Cells: one per job, each with per-core counter objects.
    let cells = doc.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 6);
    let quad = cells
        .iter()
        .find(|c| c.get("variant").unwrap().as_str() == Some("mc4_auto"))
        .expect("4-core auto cell present");
    let cores = quad.get("cores").unwrap().as_array().unwrap();
    assert_eq!(cores.len(), 4);
    for core in cores {
        assert!(core.get("cycles").unwrap().as_u64().unwrap() > 0);
        assert!(core.get("insts_total").unwrap().as_u64().unwrap() > 0);
        assert!(core.get("sw_prefetches").unwrap().as_u64().unwrap() > 0);
        assert!(core.get("ipc").unwrap().as_f64().unwrap() > 0.0);
    }

    // Pass-compiled cells are self-describing: the additive `params`
    // member records the effective PassConfig (look-ahead and enabled
    // transforms); baseline cells, which run no prefetch code, omit it.
    let params = quad.get("params").expect("auto cell records its params");
    assert_eq!(params.get("look_ahead").unwrap().as_u64(), Some(64));
    assert_eq!(
        params
            .get("stride_companion")
            .map(|j| j == &Json::Bool(true)),
        Some(true)
    );
    assert_eq!(
        params
            .get("enable_hoisting")
            .map(|j| j == &Json::Bool(true)),
        Some(true)
    );
    let base = cells
        .iter()
        .find(|c| c.get("variant").unwrap().as_str() == Some("mc4_baseline"))
        .expect("4-core baseline cell present");
    assert!(base.get("params").is_none(), "baselines have no params");

    // Derived tables mirror the printed figure.
    let derived_json = doc.get("derived").unwrap().as_array().unwrap();
    assert_eq!(derived_json.len(), 1);
    let rows = derived_json[0].get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 3, "one row per core count");

    // Check verdicts are recorded in the artifact.
    let checks_json = doc.get("checks").unwrap().as_array().unwrap();
    assert!(!checks_json.is_empty());
    for c in checks_json {
        assert!(c.get("passed").is_some());
        assert!(c.get("name").unwrap().as_str().is_some());
    }
}

/// Structural checks flag a grid whose cells did no work.
#[test]
fn structural_checks_catch_dead_cells() {
    let exp = experiments::by_name("fig2", Scale::Test).unwrap();
    let mut result = run_experiment(&exp, &opts(1));
    let derived = (exp.derive)(&result);
    assert!(structural_checks(&result, &derived)
        .iter()
        .all(|c| c.passed));

    result.cells[0].cores[0].cycles = 0;
    let broken = structural_checks(&result, &derived);
    assert!(
        broken
            .iter()
            .any(|c| c.name == "all_cells_simulated" && !c.passed),
        "zeroed cell must fail the structural check"
    );
}

/// The artifact JSON for the full suite at test scale stays parseable
/// and every experiment's checks pass — the exact gate CI applies.
#[test]
fn all_experiments_pass_their_checks_at_test_scale() {
    for name in ALL_NAMES {
        let exp = experiments::by_name(name, Scale::Test).unwrap();
        let result = run_experiment(&exp, &opts(2));
        let derived = (exp.derive)(&result);
        let mut checks = structural_checks(&result, &derived);
        checks.extend((exp.checks)(&result, &derived));
        for check in &checks {
            assert!(check.passed, "{name}: {} — {}", check.name, check.detail);
        }
        // Every prefetching cell carries its effective pass parameters;
        // cells without prefetch code carry none.
        for cell in &result.cells {
            let prefetching = cell.variant.starts_with("auto")
                || cell.variant.starts_with("manual_")
                || cell.variant.ends_with("_auto")
                || cell.variant.starts_with("swpf")
                || cell.variant == "icc";
            assert_eq!(
                !cell.params.is_empty(),
                prefetching,
                "{name}: {} params",
                cell.variant
            );
        }
        // Serialisation round-trips.
        let doc = artifact_json(&result, &derived, &checks);
        assert_eq!(Json::parse(&doc.to_pretty_string()).unwrap(), doc);
    }
}

/// Compare two runs of the same experiment cell-by-cell: every counter
/// of every core must match bit-for-bit.
fn assert_cells_identical(
    name: &str,
    a: &swpf_bench::harness::ExperimentResult,
    b: &swpf_bench::harness::ExperimentResult,
) {
    assert_eq!(a.cells.len(), b.cells.len(), "{name}: cell count");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(
            (ca.machine, ca.workload, &ca.variant),
            (cb.machine, cb.workload, &cb.variant),
            "{name}: cell order"
        );
        assert_eq!(ca.cores.len(), cb.cores.len());
        for (sa, sb) in ca.cores.iter().zip(&cb.cores) {
            assert_eq!(
                sa.counters(),
                sb.counters(),
                "{name}: {}/{}/{} diverged",
                ca.machine,
                ca.workload,
                ca.variant
            );
        }
    }
}

/// The replay equivalence contract at harness level: the default
/// record/replay policy produces cell-identical statistics to direct
/// simulation, including the multicore (fig9) and TLB-sweep (fig10)
/// grids, and actually replays the machine-axis cells.
#[test]
fn traced_runs_match_direct_runs() {
    for name in ["fig2", "fig9", "fig10"] {
        let exp = experiments::by_name(name, Scale::Test).unwrap();
        let direct = run_experiment(
            &exp,
            &RunOptions {
                threads: 2,
                trace: TracePolicy::Off,
                ..RunOptions::default()
            },
        );
        let traced = run_experiment(&exp, &opts(2));
        assert_eq!(direct.trace_hits(), 0);
        assert_cells_identical(name, &direct, &traced);
        assert_eq!((exp.derive)(&direct), (exp.derive)(&traced));
    }
    // fig2 runs 4 machines × 5 variants off 5 traces: 15 replays.
    let exp = experiments::by_name("fig2", Scale::Test).unwrap();
    let traced = run_experiment(&exp, &opts(2));
    assert_eq!(traced.trace_misses(), 5, "one interpretation per kernel");
    assert_eq!(traced.trace_hits(), 15, "every other machine cell replays");
}

/// The persistent trace cache: a second run replays every cell from
/// disk, and the artifact records hits/misses.
#[test]
fn trace_dir_caches_across_runs() {
    let dir = std::env::temp_dir().join(format!("swpf_traces_{}", std::process::id()));
    let exp = experiments::by_name("fig10", Scale::Test).unwrap();
    let run = || {
        run_experiment(
            &exp,
            &RunOptions {
                threads: 1,
                trace: TracePolicy::Dir(dir.clone()),
                ..RunOptions::default()
            },
        )
    };
    let cold = run();
    let warm = run();
    std::fs::remove_dir_all(&dir).ok();
    // fig10: 2 page-size machines × 3 workloads × 2 variants, 6 traces.
    assert_eq!(cold.trace_misses(), 6, "cold run records each kernel once");
    assert_eq!(warm.trace_misses(), 0, "warm run replays everything");
    assert_eq!(warm.trace_hits(), 12);
    assert_cells_identical("fig10", &cold, &warm);

    let doc = artifact_json(&warm, &[], &[]);
    let trace = doc.get("trace").expect("trace summary in artifact");
    assert_eq!(trace.get("hits").unwrap().as_u64(), Some(12));
    assert_eq!(trace.get("misses").unwrap().as_u64(), Some(0));
    let cells = doc.get("cells").unwrap().as_array().unwrap();
    assert!(cells
        .iter()
        .all(|c| c.get("replayed").unwrap() == &Json::Bool(true)));
}

/// Multicore traces round-trip through the disk cache too: a warm fig9
/// run replays every per-core stream with the interleaver's schedule
/// preserved, bit-identically.
#[test]
fn trace_dir_replays_multicore_cells() {
    let dir = std::env::temp_dir().join(format!("swpf_mc_traces_{}", std::process::id()));
    let exp = experiments::by_name("fig9", Scale::Test).unwrap();
    let run = || {
        run_experiment(
            &exp,
            &RunOptions {
                threads: 1,
                trace: TracePolicy::Dir(dir.clone()),
                ..RunOptions::default()
            },
        )
    };
    let cold = run();
    let warm = run();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(cold.trace_misses(), 6, "six multicore cells, six traces");
    assert_eq!(warm.trace_hits(), 6, "warm run replays all of them");
    assert_cells_identical("fig9", &cold, &warm);
}

/// Streaming replay (`--stream-replay`) from the disk cache is
/// bit-identical to both direct simulation and whole-trace replay, for
/// single-core (fig10) and multicore (fig9) grids alike.
#[test]
fn streaming_warm_runs_match_direct() {
    for name in ["fig10", "fig9"] {
        let dir = std::env::temp_dir().join(format!("swpf_stream_{name}_{}", std::process::id()));
        let exp = experiments::by_name(name, Scale::Test).unwrap();
        let run = |stream: bool| {
            run_experiment(
                &exp,
                &RunOptions {
                    threads: 1,
                    trace: TracePolicy::Dir(dir.clone()),
                    stream,
                    ..RunOptions::default()
                },
            )
        };
        let cold = run(false);
        let warm = run(true);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(warm.trace_misses(), 0, "{name}: warm run streams from disk");
        assert!(
            warm.trace_hits() > 0,
            "{name}: streamed cells count as hits"
        );
        assert_cells_identical(name, &cold, &warm);
    }
}

/// `--trace-cap` keeps the trace directory within its byte budget by
/// evicting least-recently-used files; the cache still works, it just
/// re-records what was evicted.
#[test]
fn trace_cap_evicts_least_recently_used() {
    let dir = std::env::temp_dir().join(format!("swpf_cap_{}", std::process::id()));
    let exp = experiments::by_name("fig10", Scale::Test).unwrap();
    let run = |cap: Option<u64>| {
        run_experiment(
            &exp,
            &RunOptions {
                threads: 1,
                trace: TracePolicy::Dir(dir.clone()),
                trace_cap: cap,
                ..RunOptions::default()
            },
        )
    };
    // Uncapped cold run: all six traces on disk.
    let cold = run(None);
    assert_eq!(cold.trace_misses(), 6);
    let bytes = |d: &std::path::Path| -> u64 {
        std::fs::read_dir(d)
            .map(|it| {
                it.flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "trace"))
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    };
    let full = bytes(&dir);
    assert!(full > 0);
    // A capped cold run must end within budget (cap below the full
    // corpus but big enough for single traces to survive): every store
    // evicts the least-recently-used files over the line.
    std::fs::remove_dir_all(&dir).ok();
    let cap = full / 2;
    let capped = run(Some(cap));
    let after = bytes(&dir);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(capped.trace_misses(), 6, "cold capped run records all");
    assert_cells_identical("fig10", &cold, &capped);
    assert!(after <= cap, "directory holds {after} bytes, cap is {cap}");
    assert!(after > 0, "cap keeps at least the newest trace");
}
