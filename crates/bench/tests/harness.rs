//! End-to-end tests of the experiment harness: spec expansion over the
//! real experiment list, deterministic threaded execution, and a
//! JSON-artifact snapshot at `Scale::Test`.

use swpf_bench::experiments::{self, ALL_NAMES};
use swpf_bench::harness::{
    artifact_json, expand, run_experiment, structural_checks, write_artifact, RunOptions,
};
use swpf_bench::json::Json;
use swpf_workloads::Scale;

/// Grid sizes of every real experiment, pinned. A change here means the
/// evaluated grid changed — update deliberately, alongside DESIGN.md §5.
#[test]
fn experiment_grid_sizes_are_pinned() {
    let expected = [
        ("table1", 0),
        ("fig2", 4 * 5),         // 4 machines × (baseline + 4 schemes)
        ("fig4", 4 * 7 * 3 + 7), // + Phi-only ICC column
        ("fig5", 7 * 3),         // Haswell only
        ("fig6", 4 * 4 * 8),     // baseline + 7 distances
        ("fig7", 4 * 5),         // HJ-8 only, baseline + 4 depths
        ("fig8", 7 * 3),
        ("fig9", 6),          // {1,2,4} cores × {baseline, auto}
        ("fig10", 2 * 3 * 2), // two page policies
    ];
    assert_eq!(expected.map(|(n, _)| n), ALL_NAMES);
    for (name, jobs) in expected {
        let exp = experiments::by_name(name, Scale::Test).unwrap();
        assert_eq!(expand(&exp.spec).len(), jobs, "{name} grid size");
    }
}

/// The simulation grid is deterministic and independent of the worker
/// count: a 1-thread and a 4-thread run must produce cell-identical
/// statistics (wall-clock metadata aside).
#[test]
fn results_are_thread_count_invariant() {
    let exp = experiments::by_name("fig2", Scale::Test).unwrap();
    let serial = run_experiment(&exp, &RunOptions { threads: 1 });
    let threaded = run_experiment(&exp, &RunOptions { threads: 4 });
    assert_eq!(serial.cells.len(), threaded.cells.len());
    for (a, b) in serial.cells.iter().zip(&threaded.cells) {
        assert_eq!(
            (a.machine, a.workload, &a.variant),
            (b.machine, b.workload, &b.variant)
        );
        assert_eq!(a.cores.len(), b.cores.len());
        for (sa, sb) in a.cores.iter().zip(&b.cores) {
            assert_eq!(
                sa.cycles, sb.cycles,
                "{}/{}/{}",
                a.machine, a.workload, a.variant
            );
            assert_eq!(sa.insts.total, sb.insts.total);
            assert_eq!(sa.l1_misses, sb.l1_misses);
        }
    }
    // And so must the derived tables.
    assert_eq!((exp.derive)(&serial), (exp.derive)(&threaded));
}

/// Snapshot of the artifact schema at `Scale::Test`: write a real
/// artifact, parse it back, and pin the structure PR-diff tooling
/// depends on.
#[test]
fn artifact_snapshot_at_test_scale() {
    let exp = experiments::by_name("fig9", Scale::Test).unwrap();
    let result = run_experiment(&exp, &RunOptions { threads: 2 });
    let derived = (exp.derive)(&result);
    let mut checks = structural_checks(&result, &derived);
    checks.extend((exp.checks)(&result, &derived));

    let dir = std::env::temp_dir().join(format!("swpf_artifact_{}", std::process::id()));
    let path = write_artifact(&dir, &result, &derived, &checks).expect("artifact written");
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    std::fs::remove_dir_all(&dir).ok();
    let doc = Json::parse(&text).expect("artifact is valid JSON");

    // Top-level schema.
    assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(1));
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("fig9"));
    assert_eq!(doc.get("scale").unwrap().as_str(), Some("test"));
    assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(6));
    assert!(doc.get("wall_seconds").unwrap().as_f64().unwrap() >= 0.0);

    // Machine metadata carries the full model parameters.
    let machines = doc.get("machines").unwrap().as_array().unwrap();
    assert_eq!(machines.len(), 1);
    assert_eq!(machines[0].get("name").unwrap().as_str(), Some("haswell"));
    assert_eq!(
        machines[0].get("core").unwrap().as_str(),
        Some("out-of-order")
    );
    for key in ["width", "l1_bytes", "l2_bytes", "dram_latency", "page_bits"] {
        assert!(machines[0].get(key).unwrap().as_u64().is_some(), "{key}");
    }

    // Cells: one per job, each with per-core counter objects.
    let cells = doc.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 6);
    let quad = cells
        .iter()
        .find(|c| c.get("variant").unwrap().as_str() == Some("mc4_auto"))
        .expect("4-core auto cell present");
    let cores = quad.get("cores").unwrap().as_array().unwrap();
    assert_eq!(cores.len(), 4);
    for core in cores {
        assert!(core.get("cycles").unwrap().as_u64().unwrap() > 0);
        assert!(core.get("insts_total").unwrap().as_u64().unwrap() > 0);
        assert!(core.get("sw_prefetches").unwrap().as_u64().unwrap() > 0);
        assert!(core.get("ipc").unwrap().as_f64().unwrap() > 0.0);
    }

    // Derived tables mirror the printed figure.
    let derived_json = doc.get("derived").unwrap().as_array().unwrap();
    assert_eq!(derived_json.len(), 1);
    let rows = derived_json[0].get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 3, "one row per core count");

    // Check verdicts are recorded in the artifact.
    let checks_json = doc.get("checks").unwrap().as_array().unwrap();
    assert!(!checks_json.is_empty());
    for c in checks_json {
        assert!(c.get("passed").is_some());
        assert!(c.get("name").unwrap().as_str().is_some());
    }
}

/// Structural checks flag a grid whose cells did no work.
#[test]
fn structural_checks_catch_dead_cells() {
    let exp = experiments::by_name("fig2", Scale::Test).unwrap();
    let mut result = run_experiment(&exp, &RunOptions { threads: 1 });
    let derived = (exp.derive)(&result);
    assert!(structural_checks(&result, &derived)
        .iter()
        .all(|c| c.passed));

    result.cells[0].cores[0].cycles = 0;
    let broken = structural_checks(&result, &derived);
    assert!(
        broken
            .iter()
            .any(|c| c.name == "all_cells_simulated" && !c.passed),
        "zeroed cell must fail the structural check"
    );
}

/// The artifact JSON for the full suite at test scale stays parseable
/// and every experiment's checks pass — the exact gate CI applies.
#[test]
fn all_experiments_pass_their_checks_at_test_scale() {
    for name in ALL_NAMES {
        let exp = experiments::by_name(name, Scale::Test).unwrap();
        let result = run_experiment(&exp, &RunOptions { threads: 2 });
        let derived = (exp.derive)(&result);
        let mut checks = structural_checks(&result, &derived);
        checks.extend((exp.checks)(&result, &derived));
        for check in &checks {
            assert!(check.passed, "{name}: {} — {}", check.name, check.detail);
        }
        // Serialisation round-trips.
        let doc = artifact_json(&result, &derived, &checks);
        assert_eq!(Json::parse(&doc.to_pretty_string()).unwrap(), doc);
    }
}
