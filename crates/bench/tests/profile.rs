//! Observability integration tests: the chrome-trace exporter against
//! the workspace JSON parser (the `swpf-obs` crate is dependency-free,
//! so well-formedness is property-tested from here), the profiled
//! worker pool, and the fig4 phase-coverage acceptance check.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use swpf_bench::experiments;
use swpf_bench::harness::{run_and_report, run_experiment, RunOptions, TracePolicy};
use swpf_bench::json::Json;
use swpf_obs::{Profile, ThreadTrack, TrackEvent};
use swpf_workloads::Scale;

/// The `swpf-obs` recorder is process-global; tests that touch it
/// serialise here and reset around themselves.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// One track of `names.len()` fully nested spans (all begins, then all
/// ends) — the worst case for both escaping and nesting.
fn nested_track(tid: u64, thread_name: &str, names: &[String]) -> ThreadTrack {
    let mut events = Vec::new();
    for (i, name) in names.iter().enumerate() {
        events.push(TrackEvent::Begin {
            name: name.clone(),
            ns: i as u64 * 10,
        });
    }
    for i in 0..names.len() {
        events.push(TrackEvent::End {
            ns: names.len() as u64 * 10 + i as u64,
        });
    }
    ThreadTrack {
        tid,
        name: thread_name.to_string(),
        events,
        dropped: 0,
    }
}

/// Per-tid begin/end tallies of a parsed chrome trace, asserting depth
/// never goes negative in stream order.
fn balance(doc: &Json) -> BTreeMap<u64, (usize, usize)> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("export has a traceEvents array");
    let mut per_tid: BTreeMap<u64, (usize, usize, i64)> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let e = per_tid.entry(tid).or_insert((0, 0, 0));
        match ph {
            "B" => {
                assert!(ev.get("name").and_then(Json::as_str).is_some());
                e.0 += 1;
                e.2 += 1;
            }
            "E" => {
                e.1 += 1;
                e.2 -= 1;
                assert!(e.2 >= 0, "tid {tid}: an end precedes its begin");
            }
            "M" | "C" => {}
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    per_tid
        .into_iter()
        .map(|(tid, (b, e, _))| (tid, (b, e)))
        .collect()
}

proptest! {
    // Arbitrary span/counter/thread names — including quotes,
    // backslashes, and raw control characters — export to JSON the
    // workspace parser accepts, with balanced per-track B/E events and
    // counter values preserved.
    #[test]
    fn chrome_export_is_valid_json_for_hostile_names(
        names_a in prop::collection::vec("[\"\\\\\n\t\u{1}a-z/ ]{0,12}", 0..8),
        names_b in prop::collection::vec("\\PC{0,10}", 0..5),
        counter_names in prop::collection::vec("[\"\\\\b-f.\u{7}]{1,8}", 0..6),
        counter_vals in prop::collection::vec(0u64..4_000_000_000, 0..6),
    ) {
        let counters: BTreeMap<String, u64> =
            counter_names.into_iter().zip(counter_vals).collect();
        let profile = Profile {
            captured_ns: 1_000_000,
            threads: vec![
                nested_track(1, "main\"\\\u{2}", &names_a),
                nested_track(2, "worker-0", &names_b),
            ],
            counters: counters.clone(),
            histograms: BTreeMap::new(),
        };
        let text = profile.to_chrome_json();
        let doc = Json::parse(&text).expect("chrome export parses");
        let per_tid = balance(&doc);
        prop_assert_eq!(
            per_tid.get(&1).copied().unwrap_or((0, 0)),
            (names_a.len(), names_a.len())
        );
        prop_assert_eq!(
            per_tid.get(&2).copied().unwrap_or((0, 0)),
            (names_b.len(), names_b.len())
        );

        // Every counter comes back with its exact value.
        let mut parsed: BTreeMap<String, u64> = BTreeMap::new();
        for ev in doc.get("traceEvents").and_then(Json::as_array).unwrap() {
            if ev.get("ph").and_then(Json::as_str) == Some("C") {
                let name = ev.get("name").and_then(Json::as_str).unwrap().to_string();
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_u64)
                    .unwrap();
                *parsed.entry(name).or_insert(0) += value;
            }
        }
        prop_assert_eq!(parsed, counters);

        // The summary renders the same capture without panicking.
        let _ = profile.summary().render();
    }
}

/// A profiled threaded run: every worker thread that did work has a
/// named, balanced track containing execution-phase spans.
#[test]
fn worker_pool_tracks_are_named_and_balanced() {
    let _g = lock();
    swpf_obs::reset();
    swpf_obs::enable();
    let exp = experiments::by_name("fig2", Scale::Test).unwrap();
    let result = run_experiment(
        &exp,
        &RunOptions {
            threads: 3,
            ..RunOptions::default()
        },
    );
    swpf_obs::disable();
    let profile = swpf_obs::snapshot();
    assert_eq!(result.threads, 3);

    let workers: Vec<&ThreadTrack> = profile
        .threads
        .iter()
        .filter(|t| t.name.starts_with("worker-") && !t.events.is_empty())
        .collect();
    assert!(!workers.is_empty(), "profiled workers have tracks");
    let mut span_names = BTreeSet::new();
    for track in &workers {
        assert_eq!(track.dropped, 0);
        let mut depth = 0i64;
        for ev in &track.events {
            match ev {
                TrackEvent::Begin { name, .. } => {
                    depth += 1;
                    span_names.insert(name.clone());
                }
                TrackEvent::End { .. } => {
                    depth -= 1;
                    assert!(depth >= 0, "{}: end precedes begin", track.name);
                }
            }
        }
        assert_eq!(depth, 0, "{}: track is balanced", track.name);
    }
    // Single-core groups are served by one fused fan-out interpretation
    // (no record/replay under the in-memory policy), so the execution
    // span to expect here is `interpret`; replay coverage lives in the
    // fig4 disk-cache test below.
    assert!(
        span_names.contains("interpret"),
        "some worker interpreted (spans seen: {span_names:?})"
    );
}

/// The acceptance check: a profiled test-scale fig4 (cold, then warm
/// through an on-disk trace cache) exports valid chrome-trace JSON with
/// compile/interpret/replay phase coverage and nonzero trace-cache
/// counters, and the artifact carries a `profile` section.
#[test]
fn fig4_profile_has_phase_coverage_and_cache_counters() {
    let _g = lock();
    let trace_dir = std::env::temp_dir().join(format!("swpf_prof_traces_{}", std::process::id()));
    let out_dir = std::env::temp_dir().join(format!("swpf_prof_out_{}", std::process::id()));
    swpf_obs::reset();
    swpf_obs::enable();
    swpf_obs::name_thread("main");
    let exp = experiments::by_name("fig4", Scale::Test).unwrap();
    let run = RunOptions {
        threads: 2,
        trace: TracePolicy::Dir(trace_dir.clone()),
        ..RunOptions::default()
    };
    let (_, cold_checks) = run_and_report(&exp, &run, &out_dir);
    let (_, warm_checks) = run_and_report(&exp, &run, &out_dir);
    swpf_obs::disable();
    let profile = swpf_obs::snapshot();
    let artifact = std::fs::read_to_string(out_dir.join("fig4.json")).expect("artifact written");
    std::fs::remove_dir_all(&trace_dir).ok();
    std::fs::remove_dir_all(&out_dir).ok();
    assert!(cold_checks.iter().all(|c| c.passed), "cold checks pass");
    assert!(warm_checks.iter().all(|c| c.passed), "warm checks pass");

    // The export is valid chrome-trace JSON with balanced tracks.
    let doc = Json::parse(&profile.to_chrome_json()).expect("chrome export parses");
    for (tid, (b, e)) in balance(&doc) {
        assert_eq!(b, e, "tid {tid}: balanced");
    }

    // Phase coverage: the compile pipeline, cold interpretation, and
    // warm replay all left spans.
    let mut spans = BTreeSet::new();
    for track in &profile.threads {
        for ev in &track.events {
            if let TrackEvent::Begin { name, .. } = ev {
                spans.insert(name.clone());
            }
        }
    }
    for phase in [
        "experiment:fig4",
        "build",
        "compile",
        "verify",
        "decode",
        "interpret",
        "replay",
    ] {
        assert!(
            spans.contains(phase),
            "span `{phase}` recorded (saw {spans:?})"
        );
    }

    // Trace-cache counters: the warm run hit both the in-memory group
    // cache and the on-disk store.
    let counter = |name: &str| profile.counters.get(name).copied().unwrap_or(0);
    assert!(counter("trace.cache_hit") > 0, "warm cells replayed");
    assert!(
        counter("trace.disk_hit") > 0,
        "warm groups loaded from disk"
    );
    assert!(counter("trace.stored") > 0, "cold run persisted traces");
    assert!(counter("harness.jobs") > 0);

    // The artifact gained an additive, windowed `profile` section.
    let doc = Json::parse(&artifact).expect("artifact parses");
    let prof = doc.get("profile").expect("artifact has a profile section");
    let phases = prof.get("phases").expect("profile.phases present");
    assert!(phases.get("compile").is_some(), "windowed compile phase");
    assert!(
        phases.get("experiment:fig4").is_some(),
        "windowed experiment phase"
    );
    let counters = prof.get("counters").expect("profile.counters present");
    assert!(
        counters
            .get("trace.cache_hit")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "warm artifact window sees cache hits"
    );
}
