//! Criterion bench: compile-time cost of the prefetch-generation pass
//! itself (analysis + code generation) on each benchmark kernel.
//!
//! The paper's pass runs inside LLVM's -O pipeline; this keeps ours
//! honest about asymptotics (the DFS memoises, codegen is O(chain²) per
//! candidate — both should stay microseconds on kernel-sized functions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swpf_core::{run_on_module, PassConfig};
use swpf_workloads::{suite, Scale};

fn pass_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("pass_compile");
    for w in suite(Scale::Test) {
        let baseline = w.build_baseline();
        group.bench_function(w.name(), |b| {
            b.iter(|| {
                let mut m = baseline.clone();
                let report = run_on_module(&mut m, &PassConfig::default());
                black_box((m, report));
            });
        });
    }
    group.finish();
}

fn analysis_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    for w in suite(Scale::Test) {
        let m = w.build_baseline();
        let fid = m.find_function("kernel").unwrap();
        group.bench_function(w.name(), |b| {
            b.iter(|| {
                let a = swpf_analysis::FuncAnalysis::compute(m.function(fid));
                black_box(a);
            });
        });
    }
    group.finish();
}

fn verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    for w in suite(Scale::Test) {
        let mut m = w.build_baseline();
        run_on_module(&mut m, &PassConfig::default());
        group.bench_function(w.name(), |b| {
            b.iter(|| {
                swpf_ir::verifier::verify_module(black_box(&m)).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, pass_compile, analysis_only, verifier);
criterion_main!(benches);
