//! Criterion bench: microbenchmarks of the memory-system components —
//! cache lookups, TLB translations with page walks, DRAM queueing, and
//! the full demand-access path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use swpf_sim::cache::Cache;
use swpf_sim::dram::Dram;
use swpf_sim::memsys::{AccessKind, MemSys, SharedMem};
use swpf_sim::tlb::Tlb;
use swpf_sim::MachineConfig;

const N: u64 = 4096;

fn cache_access(c: &mut Criterion) {
    let cfg = MachineConfig::haswell();
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(N));
    group.bench_function("l1_hits", |b| {
        let mut cache = Cache::new(&cfg.l1);
        for i in 0..512u64 {
            cache.insert(i * 64, 0, 0, false);
        }
        b.iter(|| {
            for i in 0..N {
                black_box(cache.access((i % 512) * 64, i, false));
            }
        });
    });
    group.bench_function("l2_insert_evict", |b| {
        let mut cache = Cache::new(&cfg.l2);
        let mut addr = 0u64;
        b.iter(|| {
            for i in 0..N {
                addr = addr.wrapping_add(0x1_0040);
                black_box(cache.insert(addr, i, i, i % 3 == 0));
            }
        });
    });
    group.finish();
}

fn tlb_translate(c: &mut Criterion) {
    let cfg = MachineConfig::a53();
    let mut group = c.benchmark_group("tlb");
    group.throughput(Throughput::Elements(N));
    group.bench_function("miss_heavy", |b| {
        b.iter(|| {
            let mut tlb = Tlb::new(&cfg.tlb);
            let mut t = 0;
            for i in 0..N {
                t = tlb.translate(i.wrapping_mul(0x9E37_79B9) << 12, t);
            }
            black_box(t);
        });
    });
    group.finish();
}

fn dram_queue(c: &mut Criterion) {
    let cfg = MachineConfig::xeon_phi();
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(N));
    group.bench_function("saturated_fills", |b| {
        b.iter(|| {
            let mut dram = Dram::new(&cfg.dram);
            let mut done = 0;
            for i in 0..N {
                done = dram.fill(i * 2);
            }
            black_box(done);
        });
    });
    group.finish();
}

fn full_access_path(c: &mut Criterion) {
    let cfg = MachineConfig::haswell();
    let mut group = c.benchmark_group("memsys");
    group.throughput(Throughput::Elements(N));
    group.bench_function("random_demand", |b| {
        b.iter(|| {
            let mut mem = MemSys::new(&cfg);
            let mut shared = SharedMem::new(&cfg);
            let mut t = 0;
            for i in 0..N {
                let addr = (i.wrapping_mul(2654435761) % (1 << 22)) & !7;
                t += mem.access(&mut shared, addr, t, AccessKind::Read, i);
            }
            black_box(t);
        });
    });
    group.bench_function("prefetch_then_demand", |b| {
        b.iter(|| {
            let mut mem = MemSys::new(&cfg);
            let mut shared = SharedMem::new(&cfg);
            let mut t = 0;
            for i in 0..N {
                let ahead = ((i + 32).wrapping_mul(2654435761) % (1 << 22)) & !7;
                mem.prefetch(&mut shared, ahead, t, i);
                let addr = (i.wrapping_mul(2654435761) % (1 << 22)) & !7;
                t += mem.access(&mut shared, addr, t, AccessKind::Read, i) / 8;
            }
            black_box(t);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    cache_access,
    tlb_translate,
    dram_queue,
    full_access_path
);
criterion_main!(benches);
