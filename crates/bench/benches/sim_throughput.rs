//! Criterion bench: host-side throughput of the execution-driven
//! simulator (interpreted instructions per second with the full timing
//! model attached). This bounds how large a paper-scale experiment can
//! be and is the number to watch when extending the machine models.
//!
//! The `engines` group compares the pre-decoded `ExecImage` engine (the
//! one every simulation path now uses) against the original tree-walking
//! interpreter (`ClassicInterp`, kept as the differential oracle); the
//! ratio is recorded in `BENCH_interp.json` at the repository root.
//!
//! The `trace` group compares a full timed simulation driven by the
//! interpreter (`direct`) against the same machine driven by a recorded
//! event trace (`replay`) — the per-cell saving the experiment
//! harness's record/replay cache banks for every repeated machine cell;
//! the ratio is recorded in `BENCH_trace.json` and gated by
//! `--bin bench_gate`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use swpf_ir::bytecode::{BcEngine, BcImage};
use swpf_ir::classic::ClassicInterp;
use swpf_ir::exec::ExecImage;
use swpf_ir::interp::{Interp, NullObserver, Tier};
use swpf_sim::{
    replay_on_machine, run_on_machine, run_on_machine_image, run_on_machine_traced,
    streaming_replay_on_machine, MachineConfig,
};
use swpf_trace::{StreamingReplay, TraceRecorder};
use swpf_workloads::is::IntegerSort;
use swpf_workloads::{Scale, Workload};

fn engines(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let f = m.find_function("kernel").unwrap();
    // ~12 instructions per iteration, 1024 iterations at test scale.
    let insts = 12 * u64::from(is.num_keys as u32);
    // Identical pre-built input state for both engines: setup once, clone
    // the simulated memory into each run, so the group compares engine
    // throughput alone (IS mutates its bucket array, hence the clone).
    // The image is decoded once outside the loop — the amortised shape of
    // every real simulation path (decode is per-module, not per-run).
    let mut proto = Interp::new();
    let args = is.setup(&mut proto);
    let proto_mem = proto.mem_ref().clone();
    let image = std::sync::Arc::new(swpf_ir::exec::ExecImage::build(&m));
    let mut group = c.benchmark_group("engines");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("exec_image/IS", |b| {
        b.iter(|| {
            // Pin the engine tier: `Interp::new` defaults to bytecode
            // (measured separately in the `bytecode` group).
            let mut interp = Interp::with_tier(Tier::Engine);
            *interp.mem() = proto_mem.clone();
            let r = interp
                .run_with_image(std::sync::Arc::clone(&image), f, &args, &mut NullObserver)
                .unwrap();
            black_box(r);
        });
    });
    group.bench_function("classic/IS", |b| {
        b.iter(|| {
            let mut interp = ClassicInterp::new();
            *interp.mem() = proto_mem.clone();
            let r = interp.run(&m, f, &args, &mut NullObserver).unwrap();
            black_box(r);
        });
    });
    group.finish();
}

/// The bytecode tier against the exec-image engine: the A/B the
/// `bytecode` tier must win (`bench_gate` enforces the ratio recorded
/// in `BENCH_interp.json`). The two sides run back to back in one group
/// under identical conditions — same pre-built image, same cloned input
/// memory, same facade entry point — so the comparison isolates
/// dispatch-loop cost alone. `unfused` runs the same flat words with
/// superinstruction fusion disabled, sizing the catalogue's own
/// contribution.
fn bytecode_tier(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let f = m.find_function("kernel").unwrap();
    let insts = 12 * u64::from(is.num_keys as u32);
    let mut proto = Interp::new();
    let args = is.setup(&mut proto);
    let proto_mem = proto.mem_ref().clone();
    let image = std::sync::Arc::new(ExecImage::build(&m));
    let unfused = std::sync::Arc::new(BcImage::lower_unfused(&image).expect("IS lowers"));
    let mut group = c.benchmark_group("bytecode");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("bytecode/IS", |b| {
        b.iter(|| {
            let mut interp = Interp::with_tier(Tier::Bytecode);
            *interp.mem() = proto_mem.clone();
            let r = interp
                .run_with_image(std::sync::Arc::clone(&image), f, &args, &mut NullObserver)
                .unwrap();
            black_box(r);
        });
    });
    group.bench_function("engine/IS", |b| {
        b.iter(|| {
            let mut interp = Interp::with_tier(Tier::Engine);
            *interp.mem() = proto_mem.clone();
            let r = interp
                .run_with_image(std::sync::Arc::clone(&image), f, &args, &mut NullObserver)
                .unwrap();
            black_box(r);
        });
    });
    group.bench_function("unfused/IS", |b| {
        b.iter(|| {
            let mut mem = proto_mem.clone();
            let mut eng = BcEngine::new();
            eng.start(std::sync::Arc::clone(&unfused), f, &args);
            let r = eng.run_to_done(&mut mem, &mut NullObserver).unwrap();
            black_box(r);
        });
    });
    group.finish();
}

/// The observability cost contract on the hottest loop we have: the
/// bytecode-tier IS simulation with profiling explicitly disabled
/// (`disabled/IS`) must stay within noise of the same run before the
/// instrumentation existed — `bench_gate` compares it against the
/// same-process `bytecode/IS` record with a tight allowance. The
/// `enabled/IS` side runs the identical cell with the recorder on (and
/// a span around each iteration), sizing what turning profiling on
/// actually costs.
fn profiling_overhead(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let f = m.find_function("kernel").unwrap();
    let insts = 12 * u64::from(is.num_keys as u32);
    let mut proto = Interp::new();
    let args = is.setup(&mut proto);
    let proto_mem = proto.mem_ref().clone();
    let image = std::sync::Arc::new(ExecImage::build(&m));
    let run = |image: &std::sync::Arc<ExecImage>, proto_mem: &swpf_ir::interp::Memory| {
        let mut interp = Interp::with_tier(Tier::Bytecode);
        *interp.mem() = proto_mem.clone();
        interp
            .run_with_image(std::sync::Arc::clone(image), f, &args, &mut NullObserver)
            .unwrap()
    };
    let mut group = c.benchmark_group("profiling");
    group.throughput(Throughput::Elements(insts));
    swpf_obs::disable();
    group.bench_function("disabled/IS", |b| {
        b.iter(|| black_box(run(&image, &proto_mem)));
    });
    swpf_obs::enable();
    group.bench_function("enabled/IS", |b| {
        b.iter(|| {
            let _span = swpf_obs::span("bench:cell");
            black_box(run(&image, &proto_mem))
        });
    });
    swpf_obs::disable();
    swpf_obs::reset();
    group.finish();
}

fn interp_only(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let f = m.find_function("kernel").unwrap();
    let insts = 12 * u64::from(is.num_keys as u32);
    let mut group = c.benchmark_group("interp_only");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("IS", |b| {
        b.iter(|| {
            let mut interp = Interp::new();
            let args = is.setup(&mut interp);
            let r = interp.run(&m, f, &args, &mut NullObserver).unwrap();
            black_box(r);
        });
    });
    group.finish();
}

fn interp_with_timing(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let insts = 12 * u64::from(is.num_keys as u32);
    let mut group = c.benchmark_group("interp_with_timing");
    group.throughput(Throughput::Elements(insts));
    for cfg in [MachineConfig::haswell(), MachineConfig::a53()] {
        group.bench_function(cfg.name, |b| {
            b.iter(|| {
                let stats = run_on_machine(&cfg, &m, "kernel", |interp| is.setup(interp));
                black_box(stats);
            });
        });
    }
    group.finish();
}

/// Direct simulation vs. trace replay of the identical cell: same
/// machine, same kernel, same input data. `record` measures the
/// one-time cost of recording while measuring (the trace cache's miss
/// path).
fn trace_replay(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let f = m.find_function("kernel").unwrap();
    let insts = 12 * u64::from(is.num_keys as u32);
    let image = std::sync::Arc::new(ExecImage::build(&m));
    let cfg = MachineConfig::haswell();
    let mut proto = Interp::new();
    let args = is.setup(&mut proto);
    let proto_mem = proto.mem_ref().clone();
    let setup = |interp: &mut Interp| {
        *interp.mem() = proto_mem.clone();
        args.clone()
    };
    // Record the trace once, outside the timed loops (the amortised
    // shape: one recording serves every machine cell of a grid row).
    let mut rec = TraceRecorder::new(1, 0);
    let _ = run_on_machine_traced(&cfg, &image, f, setup, rec.stream(0));
    let trace = rec.finish();

    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("direct/IS", |b| {
        b.iter(|| black_box(run_on_machine_image(&cfg, &image, f, setup)));
    });
    group.bench_function("replay/IS", |b| {
        b.iter(|| black_box(replay_on_machine(&cfg, &trace)));
    });
    // Streaming replay: same cell, but decoded block-at-a-time from the
    // persisted (compressed) file — the bounded-memory warm path.
    let path = std::env::temp_dir().join(format!("swpf_bench_stream_{}.trace", std::process::id()));
    std::fs::write(&path, trace.to_bytes()).expect("trace file written");
    let replay = StreamingReplay::open(&path).expect("trace file opens");
    group.bench_function("stream_replay/IS", |b| {
        b.iter(|| {
            black_box(streaming_replay_on_machine(&cfg, &replay).expect("streaming replay runs"))
        });
    });
    group.bench_function("record/IS", |b| {
        b.iter(|| {
            let mut rec = TraceRecorder::new(1, 0);
            let stats = run_on_machine_traced(&cfg, &image, f, setup, rec.stream(0));
            black_box((stats, rec.finish()))
        });
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Per-PC prefetch-profiling overhead on the full timed simulation
/// path: `perf/disabled/IS` is the production configuration (one
/// `Option` check per memory access) and must stay within the
/// `bench_gate` 1.10 allowance of the bytecode-tier reference
/// (`trace/direct/IS`); `perf/enabled/IS` prices the opt-in.
fn perf_overhead(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    // The gated pair (`disabled/IS` vs `trace/direct/IS`) must run the
    // *same* baseline kernel, so the ratio prices the profiling hook
    // alone, not kernel differences; `enabled_manual/IS` additionally
    // exercises the prefetch-site classification on the manual kernel.
    let m = is.build_baseline();
    let f = m.find_function("kernel").unwrap();
    let insts = 12 * u64::from(is.num_keys as u32);
    let image = std::sync::Arc::new(ExecImage::build(&m));
    let manual = is.build_manual(64);
    let manual_f = manual.find_function("kernel").unwrap();
    let manual_image = std::sync::Arc::new(ExecImage::build(&manual));
    let cfg = MachineConfig::haswell();
    let mut proto = Interp::new();
    let args = is.setup(&mut proto);
    let proto_mem = proto.mem_ref().clone();
    let setup = |interp: &mut Interp| {
        *interp.mem() = proto_mem.clone();
        args.clone()
    };
    let mut group = c.benchmark_group("perf");
    group.throughput(Throughput::Elements(insts));
    swpf_sim::perf::set_enabled(false);
    group.bench_function("disabled/IS", |b| {
        b.iter(|| black_box(run_on_machine_image(&cfg, &image, f, setup)));
    });
    swpf_sim::perf::set_enabled(true);
    group.bench_function("enabled/IS", |b| {
        b.iter(|| black_box(swpf_sim::run_on_machine_image_perf(&cfg, &image, f, setup)));
    });
    group.bench_function("enabled_manual/IS", |b| {
        b.iter(|| {
            black_box(swpf_sim::run_on_machine_image_perf(
                &cfg,
                &manual_image,
                manual_f,
                setup,
            ))
        });
    });
    swpf_sim::perf::set_enabled(false);
    group.finish();
}

criterion_group!(
    benches,
    engines,
    bytecode_tier,
    profiling_overhead,
    perf_overhead,
    interp_only,
    interp_with_timing,
    trace_replay
);
criterion_main!(benches);
