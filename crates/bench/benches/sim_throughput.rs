//! Criterion bench: host-side throughput of the execution-driven
//! simulator (interpreted instructions per second with the full timing
//! model attached). This bounds how large a paper-scale experiment can
//! be and is the number to watch when extending the machine models.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use swpf_ir::interp::{Interp, NullObserver};
use swpf_sim::{run_on_machine, MachineConfig};
use swpf_workloads::is::IntegerSort;
use swpf_workloads::{Scale, Workload};

fn interp_only(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let f = m.find_function("kernel").unwrap();
    // ~12 instructions per iteration, 1024 iterations at test scale.
    let insts = 12 * u64::from(is.num_keys as u32);
    let mut group = c.benchmark_group("interp_only");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("IS", |b| {
        b.iter(|| {
            let mut interp = Interp::new();
            let args = is.setup(&mut interp);
            let r = interp.run(&m, f, &args, &mut NullObserver).unwrap();
            black_box(r);
        });
    });
    group.finish();
}

fn interp_with_timing(c: &mut Criterion) {
    let is = IntegerSort::new(Scale::Test);
    let m = is.build_baseline();
    let insts = 12 * u64::from(is.num_keys as u32);
    let mut group = c.benchmark_group("interp_with_timing");
    group.throughput(Throughput::Elements(insts));
    for cfg in [MachineConfig::haswell(), MachineConfig::a53()] {
        group.bench_function(cfg.name, |b| {
            b.iter(|| {
                let stats = run_on_machine(&cfg, &m, "kernel", |interp| is.setup(interp));
                black_box(stats);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, interp_only, interp_with_timing);
criterion_main!(benches);
