//! Instructions: the operations of the IR.

use crate::block::BlockId;
use crate::function::FuncId;
use crate::types::Type;
use crate::value::ValueId;
use std::fmt;

/// Binary integer/float arithmetic and bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on division by zero in the interpreter).
    Sdiv,
    /// Unsigned division.
    Udiv,
    /// Signed remainder.
    Srem,
    /// Unsigned remainder.
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical (unsigned) shift right.
    Lshr,
    /// Arithmetic (signed) shift right.
    Ashr,
    /// Float addition (operands must be `f64`).
    Fadd,
    /// Float subtraction.
    Fsub,
    /// Float multiplication.
    Fmul,
    /// Float division.
    Fdiv,
}

impl BinOp {
    /// Whether the operator works on floats rather than integers.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::Fadd | BinOp::Fsub | BinOp::Fmul | BinOp::Fdiv)
    }

    /// Mnemonic as used by the printer/parser.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Udiv => "udiv",
            BinOp::Srem => "srem",
            BinOp::Urem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::Fadd => "fadd",
            BinOp::Fsub => "fsub",
            BinOp::Fmul => "fmul",
            BinOp::Fdiv => "fdiv",
        }
    }

    /// Inverse of [`BinOp::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "sdiv" => BinOp::Sdiv,
            "udiv" => BinOp::Udiv,
            "srem" => BinOp::Srem,
            "urem" => BinOp::Urem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::Lshr,
            "ashr" => BinOp::Ashr,
            "fadd" => BinOp::Fadd,
            "fsub" => BinOp::Fsub,
            "fmul" => BinOp::Fmul,
            "fdiv" => BinOp::Fdiv,
            _ => return None,
        })
    }
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl Pred {
    /// Mnemonic as used by the printer/parser.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Slt => "slt",
            Pred::Sle => "sle",
            Pred::Sgt => "sgt",
            Pred::Sge => "sge",
            Pred::Ult => "ult",
            Pred::Ule => "ule",
            Pred::Ugt => "ugt",
            Pred::Uge => "uge",
        }
    }

    /// Inverse of [`Pred::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Pred> {
        Some(match s {
            "eq" => Pred::Eq,
            "ne" => Pred::Ne,
            "slt" => Pred::Slt,
            "sle" => Pred::Sle,
            "sgt" => Pred::Sgt,
            "sge" => Pred::Sge,
            "ult" => Pred::Ult,
            "ule" => Pred::Ule,
            "ugt" => Pred::Ugt,
            "uge" => Pred::Uge,
            _ => return None,
        })
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    #[must_use]
    pub fn swapped(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Slt => Pred::Sgt,
            Pred::Sle => Pred::Sge,
            Pred::Sgt => Pred::Slt,
            Pred::Sge => Pred::Sle,
            Pred::Ult => Pred::Ugt,
            Pred::Ule => Pred::Uge,
            Pred::Ugt => Pred::Ult,
            Pred::Uge => Pred::Ule,
        }
    }

    /// The logically negated predicate (`a < b` ⇔ `!(a >= b)`).
    #[must_use]
    pub fn negated(self) -> Pred {
        match self {
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
            Pred::Slt => Pred::Sge,
            Pred::Sle => Pred::Sgt,
            Pred::Sgt => Pred::Sle,
            Pred::Sge => Pred::Slt,
            Pred::Ult => Pred::Uge,
            Pred::Ule => Pred::Ugt,
            Pred::Ugt => Pred::Ule,
            Pred::Uge => Pred::Ult,
        }
    }
}

/// Scalar conversion operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Truncate an integer to a narrower type.
    Trunc,
    /// Zero-extend an integer to a wider type.
    Zext,
    /// Sign-extend an integer to a wider type.
    Sext,
    /// Reinterpret an integer as a pointer.
    IntToPtr,
    /// Reinterpret a pointer as an integer.
    PtrToInt,
}

impl CastOp {
    /// Mnemonic as used by the printer/parser.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::IntToPtr => "inttoptr",
            CastOp::PtrToInt => "ptrtoint",
        }
    }

    /// Inverse of [`CastOp::mnemonic`].
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<CastOp> {
        Some(match s {
            "trunc" => CastOp::Trunc,
            "zext" => CastOp::Zext,
            "sext" => CastOp::Sext,
            "inttoptr" => CastOp::IntToPtr,
            "ptrtoint" => CastOp::PtrToInt,
            _ => return None,
        })
    }
}

/// The operation an instruction performs.
#[derive(Debug, Clone)]
pub enum InstKind {
    /// Binary arithmetic: `result = op lhs, rhs`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Integer comparison producing an `i1`.
    ICmp {
        /// The comparison predicate.
        pred: Pred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Branchless conditional: `result = cond ? then_val : else_val`.
    Select {
        /// An `i1` selector.
        cond: ValueId,
        /// Value when `cond` is true.
        then_val: ValueId,
        /// Value when `cond` is false.
        else_val: ValueId,
    },
    /// Scalar conversion.
    Cast {
        /// The conversion operator.
        op: CastOp,
        /// Input value.
        val: ValueId,
        /// Destination type.
        to: Type,
    },
    /// Heap allocation of `count` elements of `elem_size` bytes each;
    /// yields a pointer. The element count is an operand so the pass can
    /// recover array bounds by walking the data-dependence graph (§4.2).
    Alloc {
        /// Number of elements (any integer value).
        count: ValueId,
        /// Static size of one element in bytes.
        elem_size: u64,
    },
    /// Address computation: `result = base + index * elem_size + offset`.
    ///
    /// `offset` is a static byte displacement, used for field accesses
    /// (e.g. `node->next` is `gep node, 0, node_size` with offset 8).
    Gep {
        /// Base pointer.
        base: ValueId,
        /// Scaled index (any integer value, sign-extended).
        index: ValueId,
        /// Static element size in bytes.
        elem_size: u64,
        /// Static byte offset added after scaling.
        offset: u64,
    },
    /// Memory read of a `ty`-sized scalar.
    Load {
        /// Address operand (must be `ptr`).
        addr: ValueId,
        /// Loaded type.
        ty: Type,
    },
    /// Memory write of a scalar.
    Store {
        /// Address operand (must be `ptr`).
        addr: ValueId,
        /// Value to store.
        value: ValueId,
    },
    /// Non-binding, non-faulting cache-fill hint — the software prefetch
    /// instruction of the paper. Never traps, never changes program state.
    Prefetch {
        /// Address to prefetch (may be invalid; the hint is dropped).
        addr: ValueId,
    },
    /// SSA phi node: selects an incoming value by predecessor block.
    Phi {
        /// `(predecessor, value)` pairs.
        incomings: Vec<(BlockId, ValueId)>,
    },
    /// Direct call to another function in the module.
    Call {
        /// Callee.
        callee: FuncId,
        /// Actual arguments.
        args: Vec<ValueId>,
    },
    /// Unconditional branch.
    Br {
        /// Successor block.
        target: BlockId,
    },
    /// Two-way conditional branch on an `i1`.
    CondBr {
        /// Condition.
        cond: ValueId,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret {
        /// Returned value, if the function is non-void.
        value: Option<ValueId>,
    },
}

/// An instruction: its operation plus the block that contains it.
#[derive(Debug, Clone)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// Owning basic block.
    pub block: BlockId,
}

impl Inst {
    /// Whether this instruction ends a basic block.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. }
        )
    }

    /// Whether this instruction reads or writes memory (including
    /// prefetches, which occupy memory-system resources but cannot fault).
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Load { .. } | InstKind::Store { .. } | InstKind::Prefetch { .. }
        )
    }

    /// Append all value operands to `out`.
    ///
    /// For phis this includes every incoming value; callers doing
    /// dependence analysis may instead want
    /// [`InstKind::Phi`]'s `incomings` directly.
    pub fn operands_into(&self, out: &mut Vec<ValueId>) {
        match &self.kind {
            InstKind::Binary { lhs, rhs, .. } | InstKind::ICmp { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => {
                out.push(*cond);
                out.push(*then_val);
                out.push(*else_val);
            }
            InstKind::Cast { val, .. } => out.push(*val),
            InstKind::Alloc { count, .. } => out.push(*count),
            InstKind::Gep { base, index, .. } => {
                out.push(*base);
                out.push(*index);
            }
            InstKind::Load { addr, .. } | InstKind::Prefetch { addr } => out.push(*addr),
            InstKind::Store { addr, value } => {
                out.push(*addr);
                out.push(*value);
            }
            InstKind::Phi { incomings } => out.extend(incomings.iter().map(|(_, v)| *v)),
            InstKind::Call { args, .. } => out.extend(args.iter().copied()),
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => out.push(*cond),
            InstKind::Ret { value } => out.extend(value.iter().copied()),
        }
    }

    /// Collect all value operands into a fresh vector.
    #[must_use]
    pub fn operands(&self) -> Vec<ValueId> {
        let mut v = Vec::with_capacity(3);
        self.operands_into(&mut v);
        v
    }

    /// Replace every operand equal to `from` with `to`. Returns the number
    /// of replacements performed.
    pub fn replace_uses(&mut self, from: ValueId, to: ValueId) -> usize {
        let mut n = 0;
        let mut rep = |v: &mut ValueId| {
            if *v == from {
                *v = to;
                n += 1;
            }
        };
        match &mut self.kind {
            InstKind::Binary { lhs, rhs, .. } | InstKind::ICmp { lhs, rhs, .. } => {
                rep(lhs);
                rep(rhs);
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => {
                rep(cond);
                rep(then_val);
                rep(else_val);
            }
            InstKind::Cast { val, .. } => rep(val),
            InstKind::Alloc { count, .. } => rep(count),
            InstKind::Gep { base, index, .. } => {
                rep(base);
                rep(index);
            }
            InstKind::Load { addr, .. } | InstKind::Prefetch { addr } => rep(addr),
            InstKind::Store { addr, value } => {
                rep(addr);
                rep(value);
            }
            InstKind::Phi { incomings } => {
                for (_, v) in incomings.iter_mut() {
                    rep(v);
                }
            }
            InstKind::Call { args, .. } => {
                for a in args.iter_mut() {
                    rep(a);
                }
            }
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => rep(cond),
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    rep(v);
                }
            }
        }
        n
    }

    /// The block successors of a terminator (empty for non-terminators).
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match &self.kind {
            InstKind::Br { target } => vec![*target],
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstKind::Binary { op, lhs, rhs } => write!(f, "{} {lhs}, {rhs}", op.mnemonic()),
            InstKind::ICmp { pred, lhs, rhs } => {
                write!(f, "icmp {} {lhs}, {rhs}", pred.mnemonic())
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => write!(f, "select {cond}, {then_val}, {else_val}"),
            InstKind::Cast { op, val, to } => write!(f, "{} {val} to {to}", op.mnemonic()),
            InstKind::Alloc { count, elem_size } => write!(f, "alloc {count} x {elem_size}"),
            InstKind::Gep {
                base,
                index,
                elem_size,
                offset,
            } => {
                if *offset == 0 {
                    write!(f, "gep {base}, {index} x {elem_size}")
                } else {
                    write!(f, "gep {base}, {index} x {elem_size} + {offset}")
                }
            }
            InstKind::Load { addr, ty } => write!(f, "load {ty}, {addr}"),
            InstKind::Store { addr, value } => write!(f, "store {value}, {addr}"),
            InstKind::Prefetch { addr } => write!(f, "prefetch {addr}"),
            InstKind::Phi { incomings } => {
                write!(f, "phi ")?;
                for (i, (b, v)) in incomings.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "[{b}: {v}]")?;
                }
                Ok(())
            }
            InstKind::Call { callee, args } => {
                write!(f, "call @{}(", callee.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            InstKind::Br { target } => write!(f, "br {target}"),
            InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "br {cond}, {then_bb}, {else_bb}"),
            InstKind::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(kind: InstKind) -> Inst {
        Inst {
            kind,
            block: BlockId(0),
        }
    }

    #[test]
    fn operand_collection() {
        let i = inst(InstKind::Store {
            addr: ValueId(1),
            value: ValueId(2),
        });
        assert_eq!(i.operands(), vec![ValueId(1), ValueId(2)]);
        let b = inst(InstKind::Br { target: BlockId(3) });
        assert!(b.operands().is_empty());
        assert!(b.is_terminator());
    }

    #[test]
    fn replace_uses_counts() {
        let mut i = inst(InstKind::Binary {
            op: BinOp::Add,
            lhs: ValueId(5),
            rhs: ValueId(5),
        });
        assert_eq!(i.replace_uses(ValueId(5), ValueId(9)), 2);
        assert_eq!(i.operands(), vec![ValueId(9), ValueId(9)]);
        assert_eq!(i.replace_uses(ValueId(5), ValueId(1)), 0);
    }

    #[test]
    fn successors_of_terminators() {
        let c = inst(InstKind::CondBr {
            cond: ValueId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        assert_eq!(c.successors(), vec![BlockId(1), BlockId(2)]);
        let r = inst(InstKind::Ret { value: None });
        assert!(r.successors().is_empty());
    }

    #[test]
    fn pred_negation_and_swap() {
        assert_eq!(Pred::Slt.negated(), Pred::Sge);
        assert_eq!(Pred::Slt.swapped(), Pred::Sgt);
        assert_eq!(Pred::Eq.swapped(), Pred::Eq);
        for p in [
            Pred::Eq,
            Pred::Ne,
            Pred::Slt,
            Pred::Sle,
            Pred::Sgt,
            Pred::Sge,
            Pred::Ult,
            Pred::Ule,
            Pred::Ugt,
            Pred::Uge,
        ] {
            assert_eq!(p.negated().negated(), p);
            assert_eq!(p.swapped().swapped(), p);
            assert_eq!(Pred::from_mnemonic(p.mnemonic()), Some(p));
        }
    }

    #[test]
    fn mnemonic_roundtrips() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Sdiv,
            BinOp::Udiv,
            BinOp::Srem,
            BinOp::Urem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Lshr,
            BinOp::Ashr,
            BinOp::Fadd,
            BinOp::Fsub,
            BinOp::Fmul,
            BinOp::Fdiv,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for op in [
            CastOp::Trunc,
            CastOp::Zext,
            CastOp::Sext,
            CastOp::IntToPtr,
            CastOp::PtrToInt,
        ] {
            assert_eq!(CastOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }
}
