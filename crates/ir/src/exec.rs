//! Pre-decoded execution engine: decode once, execute a dense image.
//!
//! The timing simulator in `swpf-sim` is execution-driven — every cycle
//! it charges is attached to an instruction the interpreter retires — so
//! interpreter throughput bounds every experiment in the reproduction.
//! The original engine (preserved as [`crate::classic::ClassicInterp`])
//! pays per *dynamic* instruction for work that only depends on *static*
//! program structure: indexing block instruction lists, matching heap-
//! carried [`InstKind`](crate::inst::InstKind) payloads, looking up
//! operand types for casts and stores, recomputing the event `pc`,
//! copying operand ids into a scratch vector, and searching phi incoming
//! lists on every block entry.
//!
//! This module splits the interpreter into two layers:
//!
//! * **Decode** ([`ExecImage::build`]): a one-time pass that lowers every
//!   function of a [`Module`] into a [`FuncImage`] — a flat instruction
//!   array in block order whose operands are dense frame-slot indices,
//!   with branch targets resolved to instruction indices, phi parallel
//!   copies precompiled into per-CFG-edge move lists, constants pooled
//!   for one-`memcpy` frame initialisation, cast masks/shifts and memory
//!   access widths baked into the opcode, and the observer-facing static
//!   metadata (`pc`, result id, operand id list) precomputed into pools
//!   so event emission is allocation- and copy-free.
//! * **Execute** ([`Engine`]): a resumable (`start`/`step`) loop over the
//!   image, implementing exactly the observer contract of
//!   [`crate::interp`] — same [`Event`] fields, same event order
//!   (phi copies report before their branch), same trap behaviour, same
//!   fuel accounting — verified against the classic engine by the
//!   differential test suite.
//!
//! Frame slots coincide with [`ValueId`] indices (the per-function value
//! arena is already dense), so observer-visible operand ids and engine
//! slot numbers agree without a translation table.
//!
//! Callers normally use the [`crate::interp::Interp`] facade, which owns
//! the simulated [`Memory`] and builds images on demand. Multi-core
//! simulations decode once and share the image across engines via
//! [`std::sync::Arc`] (see `swpf_sim::multicore`).

use crate::function::FuncId;
use crate::inst::{BinOp, CastOp, InstKind, Pred};
use crate::interp::{
    decode_scalar, encode_scalar, eval_binary, eval_icmp, Event, EventKind, ExecObserver, Memory,
    RtVal, Step, Trap,
};
use crate::module::Module;
use crate::types::Type;
use crate::value::{Constant, ValueId, ValueKind};
use std::sync::Arc;

/// Sentinel slot meaning "absent" (void return value / no return slot).
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// A decoded instruction. Operand fields are dense frame-slot indices;
/// control-flow fields index [`FuncImage::edges`] (branches) or carry the
/// callee function index (calls). `dst` is the instruction's own slot.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Integer/float arithmetic.
    Bin {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    /// Integer comparison.
    ICmp {
        pred: Pred,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    /// Branchless conditional.
    Select {
        cond: u32,
        then_val: u32,
        else_val: u32,
        dst: u32,
    },
    /// Truncation, pre-lowered to an AND mask.
    Mask { src: u32, mask: i64, dst: u32 },
    /// Sign extension, pre-lowered to a shift pair.
    SignExtend { src: u32, shift: u32, dst: u32 },
    /// Width-preserving cast (zext of a canonical value, ptr/int casts).
    Copy { src: u32, dst: u32 },
    /// Heap allocation.
    Alloc {
        count: u32,
        elem_size: u64,
        dst: u32,
    },
    /// Address computation.
    Gep {
        base: u32,
        index: u32,
        elem_size: u64,
        offset: u64,
        dst: u32,
    },
    /// Memory read; `size` is precomputed from `ty`.
    Load {
        addr: u32,
        ty: Type,
        size: u32,
        dst: u32,
    },
    /// Memory write; `size` precomputed from the stored value's type.
    Store { addr: u32, val: u32, size: u32 },
    /// Non-faulting cache hint.
    Prefetch { addr: u32 },
    /// Call; arguments are the instruction's pooled event operands.
    Call { callee: u32, dst: u32 },
    /// Unconditional branch through a pre-compiled CFG edge.
    Br { edge: u32 },
    /// Conditional branch selecting one of two pre-compiled edges.
    CondBr {
        cond: u32,
        then_edge: u32,
        else_edge: u32,
    },
    /// Function return; `val` is [`NO_SLOT`] for void returns.
    Ret { val: u32 },
    /// Decode-time marker for a block without a terminator; executing it
    /// reproduces the classic engine's "fell off block end" panic.
    FallOff,
}

/// One decoded instruction plus its observer-facing static metadata,
/// stored together so the execute loop touches one array entry per step.
#[derive(Debug, Clone)]
pub(crate) struct DecInst {
    /// The operation.
    pub(crate) op: Op,
    /// `(function index << 32) | value index` — stable across iterations.
    pub(crate) pc: u64,
    /// The instruction's own value id.
    pub(crate) result: ValueId,
    /// Range into [`FuncImage::operands`]: the event operand list.
    pub(crate) ops_at: u32,
    pub(crate) ops_len: u32,
}

/// One phi of a CFG edge's parallel copy, with its retire-event fields.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PhiMove {
    /// Destination slot (the phi's own value id).
    pub(crate) dst: u32,
    /// Source slot (the incoming chosen for this edge).
    pub(crate) src: u32,
    /// Event pc of the phi.
    pub(crate) pc: u64,
    /// The phi's value id.
    pub(crate) result: ValueId,
    /// The chosen incoming's value id (the event's single operand).
    pub(crate) incoming: ValueId,
}

/// A pre-compiled CFG edge: where to jump and which phi moves to apply.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Edge {
    /// Instruction index of the target block's first non-phi instruction.
    pub(crate) target: u32,
    /// Range into [`FuncImage::moves`].
    pub(crate) moves_at: u32,
    pub(crate) moves_len: u32,
}

/// Static per-instruction classification, exposed for observers and
/// tooling that want memory-op facts without decoding events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticMeta {
    /// Demand memory read.
    pub is_load: bool,
    /// Memory write.
    pub is_store: bool,
    /// Software prefetch hint.
    pub is_prefetch: bool,
    /// Access width in bytes for memory operations, 0 otherwise.
    pub width: u32,
}

/// The decoded form of one function.
#[derive(Debug)]
pub struct FuncImage {
    /// Flat instruction array, blocks concatenated in creation order.
    pub(crate) code: Vec<DecInst>,
    /// CFG edges referenced by `Br`/`CondBr`.
    pub(crate) edges: Vec<Edge>,
    /// Pooled phi moves referenced by `edges`.
    pub(crate) moves: Vec<PhiMove>,
    /// Pooled event-operand lists referenced by `meta`. For calls this
    /// doubles as the argument list: slot `k` of an operand id is the
    /// id's own index (slots and value ids coincide).
    pub(crate) operands: Vec<ValueId>,
    /// `(slot, value)` pairs to materialise when a frame is created.
    pub(crate) consts: Vec<(u32, RtVal)>,
    /// Frame size in slots (the function's value-arena length).
    pub(crate) num_slots: u32,
    /// Formal parameter count, for the `start` arity check.
    pub(crate) num_params: u32,
    /// Instruction index where execution of the function begins.
    pub(crate) entry_ip: u32,
}

impl FuncImage {
    /// A fresh frame register file: zeroed, constants materialised, the
    /// leading slots filled from `args`.
    fn new_regs(&self, args: &[RtVal]) -> Vec<RtVal> {
        let mut regs = vec![RtVal::Int(0); self.num_slots as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = *a;
        }
        for &(slot, v) in &self.consts {
            regs[slot as usize] = v;
        }
        regs
    }
}

/// A module lowered for execution: one [`FuncImage`] per function.
///
/// Build once with [`ExecImage::build`], then run any number of
/// [`Engine`]s (or [`crate::interp::Interp`] facades) against it —
/// typically wrapped in an [`Arc`] so multi-core simulations share one
/// decode.
#[derive(Debug)]
pub struct ExecImage {
    pub(crate) funcs: Vec<FuncImage>,
    /// Lazily-lowered bytecode form (`None` once lowering has failed, so
    /// the failure is not retried); see [`ExecImage::bytecode`].
    bc: std::sync::OnceLock<Option<Arc<crate::bytecode::BcImage>>>,
}

impl ExecImage {
    /// Decode every function of `module`.
    ///
    /// The module should satisfy the [`crate::verifier`] invariants the
    /// classic engine also relies on (phis leading their blocks, one
    /// incoming per predecessor). Structural violations the classic
    /// engine would only hit at run time — a phi after a non-phi, a
    /// missing incoming — panic here, at decode time.
    ///
    /// # Panics
    /// On structurally invalid modules, as described above.
    #[must_use]
    pub fn build(module: &Module) -> ExecImage {
        ExecImage {
            funcs: module
                .func_ids()
                .map(|f| decode_function(module, f))
                .collect(),
            bc: std::sync::OnceLock::new(),
        }
    }

    /// The bytecode-tier lowering of this image (see [`crate::bytecode`]),
    /// built on first use and cached, so every engine sharing this image
    /// (e.g. the cores of a multicore simulation) pays for lowering once.
    ///
    /// Returns `None` when the image exceeds the bytecode encoding's
    /// 14-bit field capacities ([`crate::bytecode::LowerError`]); callers
    /// are expected to fall back to the [`Engine`] tier.
    #[must_use]
    pub fn bytecode(&self) -> Option<Arc<crate::bytecode::BcImage>> {
        self.bc
            .get_or_init(|| match crate::bytecode::BcImage::lower(self) {
                Ok(b) => Some(Arc::new(b)),
                Err(e) => {
                    eprintln!(
                        "swpf-ir: bytecode lowering unavailable ({e}); \
                         falling back to the engine tier"
                    );
                    None
                }
            })
            .clone()
    }

    /// Mnemonic class of the instruction retiring at each event `pc`,
    /// including phis (which live on CFG edges, not in the code array,
    /// but appear in retire streams). Intended for trace analytics such
    /// as the superinstruction pair miner.
    #[must_use]
    pub fn op_class_table(&self) -> std::collections::HashMap<u64, &'static str> {
        let mut table = std::collections::HashMap::new();
        for fi in &self.funcs {
            for d in &fi.code {
                if !matches!(d.op, Op::FallOff) {
                    table.insert(d.pc, op_class_name(&d.op));
                }
            }
            for mv in &fi.moves {
                table.insert(mv.pc, "phi");
            }
        }
        table
    }

    /// Number of decoded functions.
    #[must_use]
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Decoded instruction count of `func` (phis excluded — they live on
    /// edges).
    #[must_use]
    pub fn code_len(&self, func: FuncId) -> usize {
        self.funcs[func.index()].code.len()
    }

    /// Static classification of the instruction with the given event
    /// `pc`, or `None` if the pc does not name a decoded instruction.
    /// Linear in function size; intended for observer setup and tooling,
    /// not per-event paths (events already carry [`EventKind`]).
    #[must_use]
    pub fn static_meta(&self, pc: u64) -> Option<StaticMeta> {
        let fi = self.funcs.get((pc >> 32) as usize)?;
        let idx = fi.code.iter().position(|d| d.pc == pc)?;
        let (mut is_load, mut is_store, mut is_prefetch, mut width) = (false, false, false, 0);
        match fi.code[idx].op {
            Op::Load { size, .. } => {
                is_load = true;
                width = size;
            }
            Op::Store { size, .. } => {
                is_store = true;
                width = size;
            }
            Op::Prefetch { .. } => {
                is_prefetch = true;
                width = 1;
            }
            _ => {}
        }
        Some(StaticMeta {
            is_load,
            is_store,
            is_prefetch,
            width,
        })
    }
}

/// Mnemonic for one decoded op, aligned with the bytecode tier's opcode
/// names so mined pair tables read like the superinstruction catalogue.
pub(crate) fn op_class_name(op: &Op) -> &'static str {
    match op {
        Op::Bin { op, .. } => match op {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Udiv => "udiv",
            BinOp::Srem => "srem",
            BinOp::Urem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::Fadd => "fadd",
            BinOp::Fsub => "fsub",
            BinOp::Fmul => "fmul",
            BinOp::Fdiv => "fdiv",
        },
        Op::ICmp { .. } => "icmp",
        Op::Select { .. } => "select",
        Op::Mask { .. } => "mask",
        Op::SignExtend { .. } => "sext",
        Op::Copy { .. } => "copy",
        Op::Alloc { .. } => "alloc",
        Op::Gep { .. } => "gep",
        Op::Load { ty, .. } => match ty {
            Type::I1 => "ld_i1",
            Type::I8 => "ld_i8",
            Type::I16 => "ld_i16",
            Type::I32 => "ld_i32",
            Type::I64 | Type::Ptr => "ld_i64",
            Type::F64 => "ld_f64",
        },
        Op::Store { size, .. } => match size {
            1 => "st1",
            2 => "st2",
            4 => "st4",
            _ => "st8",
        },
        Op::Prefetch { .. } => "prefetch",
        Op::Call { .. } => "call",
        Op::Br { .. } => "br",
        Op::CondBr { .. } => "cbr",
        Op::Ret { .. } => "ret",
        Op::FallOff => "falloff",
    }
}

/// Lower one function to its dense image.
#[allow(clippy::too_many_lines)]
fn decode_function(module: &Module, func: FuncId) -> FuncImage {
    let f = module.function(func);
    let pc_of = |v: ValueId| (u64::from(func.0) << 32) | u64::from(v.0);

    // Pass 1: for each block, the leading phi run and the code index at
    // which its non-phi instructions will start.
    let mut block_phis: Vec<Vec<ValueId>> = Vec::with_capacity(f.num_blocks());
    let mut block_start: Vec<u32> = Vec::with_capacity(f.num_blocks());
    let mut next_code = 0u32;
    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        let mut phis = Vec::new();
        for (pos, &v) in insts.iter().enumerate() {
            if matches!(f.inst(v).map(|i| &i.kind), Some(InstKind::Phi { .. })) {
                assert_eq!(phis.len(), pos, "phi after non-phi in {b} of @{}", f.name);
                phis.push(v);
            }
        }
        let n_phis = phis.len() as u32;
        block_phis.push(phis);
        block_start.push(next_code);
        // Every block contributes its non-phi instructions, plus a
        // FallOff marker when it lacks a terminator.
        let non_phi = insts.len() as u32 - n_phis;
        let has_term = f
            .block(b)
            .last()
            .and_then(|t| f.inst(t))
            .is_some_and(crate::inst::Inst::is_terminator);
        next_code += non_phi + u32::from(!has_term);
    }
    assert!(
        block_phis.first().is_none_or(Vec::is_empty),
        "entry block of @{} has phis",
        f.name
    );

    // Pass 2: emit decoded instructions and compile CFG edges.
    let mut img = FuncImage {
        code: Vec::with_capacity(next_code as usize),
        edges: Vec::new(),
        moves: Vec::new(),
        operands: Vec::new(),
        consts: Vec::new(),
        num_slots: f.num_values() as u32,
        num_params: f.params.len() as u32,
        entry_ip: block_start[0],
    };

    for (idx, vd) in (0..f.num_values()).map(|i| (i, f.value(ValueId(i as u32)))) {
        if let ValueKind::Const(c) = &vd.kind {
            let v = match c {
                Constant::Int(v, _) => RtVal::Int(*v),
                Constant::Float(v) => RtVal::Float(*v),
            };
            img.consts.push((idx as u32, v));
        }
    }

    let compile_edge =
        |img: &mut FuncImage, from: crate::block::BlockId, target: crate::block::BlockId| -> u32 {
            let moves_at = img.moves.len() as u32;
            for &pv in &block_phis[target.index()] {
                let Some(InstKind::Phi { incomings }) = f.inst(pv).map(|i| &i.kind) else {
                    unreachable!("collected as phi");
                };
                let (_, iv) = incomings
                    .iter()
                    .find(|(b, _)| *b == from)
                    .expect("verifier guarantees an incoming per predecessor");
                img.moves.push(PhiMove {
                    dst: pv.0,
                    src: iv.0,
                    pc: pc_of(pv),
                    result: pv,
                    incoming: *iv,
                });
            }
            let edge = Edge {
                target: block_start[target.index()],
                moves_at,
                moves_len: img.moves.len() as u32 - moves_at,
            };
            img.edges.push(edge);
            img.edges.len() as u32 - 1
        };

    for b in f.block_ids() {
        let mut emitted = 0u32;
        for &v in &f.block(b).insts {
            let inst = f.inst(v).expect("placed value is an instruction");
            if matches!(inst.kind, InstKind::Phi { .. }) {
                continue;
            }
            let ops_at = img.operands.len() as u32;
            let dst = v.0;
            let op = match &inst.kind {
                InstKind::Binary { op, lhs, rhs } => {
                    img.operands.extend([*lhs, *rhs]);
                    Op::Bin {
                        op: *op,
                        lhs: lhs.0,
                        rhs: rhs.0,
                        dst,
                    }
                }
                InstKind::ICmp { pred, lhs, rhs } => {
                    img.operands.extend([*lhs, *rhs]);
                    Op::ICmp {
                        pred: *pred,
                        lhs: lhs.0,
                        rhs: rhs.0,
                        dst,
                    }
                }
                InstKind::Select {
                    cond,
                    then_val,
                    else_val,
                } => {
                    img.operands.extend([*cond, *then_val, *else_val]);
                    Op::Select {
                        cond: cond.0,
                        then_val: then_val.0,
                        else_val: else_val.0,
                        dst,
                    }
                }
                InstKind::Cast { op, val, to } => {
                    img.operands.push(*val);
                    match op {
                        CastOp::Trunc => {
                            let bits = to.bits();
                            if bits >= 64 {
                                Op::Copy { src: val.0, dst }
                            } else {
                                Op::Mask {
                                    src: val.0,
                                    mask: (1i64 << bits) - 1,
                                    dst,
                                }
                            }
                        }
                        CastOp::Sext => {
                            let from_bits = f.value(*val).ty.expect("cast source typed").bits();
                            if from_bits < 64 {
                                Op::SignExtend {
                                    src: val.0,
                                    shift: 64 - from_bits,
                                    dst,
                                }
                            } else {
                                Op::Copy { src: val.0, dst }
                            }
                        }
                        // Values are stored canonically (zero-extended),
                        // so zext and the pointer casts are moves.
                        CastOp::Zext | CastOp::IntToPtr | CastOp::PtrToInt => {
                            Op::Copy { src: val.0, dst }
                        }
                    }
                }
                InstKind::Alloc { count, elem_size } => {
                    img.operands.push(*count);
                    Op::Alloc {
                        count: count.0,
                        elem_size: *elem_size,
                        dst,
                    }
                }
                InstKind::Gep {
                    base,
                    index,
                    elem_size,
                    offset,
                } => {
                    img.operands.extend([*base, *index]);
                    Op::Gep {
                        base: base.0,
                        index: index.0,
                        elem_size: *elem_size,
                        offset: *offset,
                        dst,
                    }
                }
                InstKind::Load { addr, ty } => {
                    img.operands.push(*addr);
                    Op::Load {
                        addr: addr.0,
                        ty: *ty,
                        size: ty.size_bytes() as u32,
                        dst,
                    }
                }
                InstKind::Store { addr, value } => {
                    img.operands.extend([*addr, *value]);
                    let ty = f.value(*value).ty.expect("store of typed value");
                    Op::Store {
                        addr: addr.0,
                        val: value.0,
                        size: ty.size_bytes() as u32,
                    }
                }
                InstKind::Prefetch { addr } => {
                    img.operands.push(*addr);
                    Op::Prefetch { addr: addr.0 }
                }
                InstKind::Phi { .. } => unreachable!("skipped above"),
                InstKind::Call { callee, args } => {
                    img.operands.extend(args.iter().copied());
                    Op::Call {
                        callee: callee.0,
                        dst,
                    }
                }
                InstKind::Br { target } => Op::Br {
                    edge: compile_edge(&mut img, b, *target),
                },
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    img.operands.push(*cond);
                    let then_edge = compile_edge(&mut img, b, *then_bb);
                    let else_edge = compile_edge(&mut img, b, *else_bb);
                    Op::CondBr {
                        cond: cond.0,
                        then_edge,
                        else_edge,
                    }
                }
                InstKind::Ret { value } => {
                    if let Some(x) = value {
                        img.operands.push(*x);
                    }
                    Op::Ret {
                        val: value.map_or(NO_SLOT, |x| x.0),
                    }
                }
            };
            img.code.push(DecInst {
                op,
                pc: pc_of(v),
                result: v,
                ops_at,
                ops_len: img.operands.len() as u32 - ops_at,
            });
            emitted += 1;
        }
        let has_term = f
            .block(b)
            .last()
            .and_then(|t| f.inst(t))
            .is_some_and(crate::inst::Inst::is_terminator);
        if !has_term {
            img.code.push(DecInst {
                op: Op::FallOff,
                pc: pc_of(ValueId(u32::MAX)),
                result: ValueId(u32::MAX),
                ops_at: img.operands.len() as u32,
                ops_len: 0,
            });
            emitted += 1;
        }
        debug_assert_eq!(
            block_start[b.index()] + emitted,
            if b.index() + 1 < block_start.len() {
                block_start[b.index() + 1]
            } else {
                img.code.len() as u32
            },
            "block layout mismatch"
        );
    }

    validate_image(&img);
    img
}

/// Decode-time validation establishing the execute loop's safety
/// invariant: every slot index is within the frame register file, every
/// pool range is within its pool, and every edge jumps to a valid
/// instruction index. [`State::step`] relies on this to elide per-access
/// bounds checks on the register file (see [`rd`] / [`wr`]).
fn validate_image(img: &FuncImage) {
    let ns = img.num_slots;
    let slot = |s: u32| assert!(s < ns, "slot {s} out of range ({ns} slots)");
    for d in &img.code {
        assert!(
            d.ops_at as usize + d.ops_len as usize <= img.operands.len(),
            "operand range out of pool"
        );
        match d.op {
            Op::Bin { lhs, rhs, dst, .. } | Op::ICmp { lhs, rhs, dst, .. } => {
                slot(lhs);
                slot(rhs);
                slot(dst);
            }
            Op::Select {
                cond,
                then_val,
                else_val,
                dst,
            } => {
                slot(cond);
                slot(then_val);
                slot(else_val);
                slot(dst);
            }
            Op::Mask { src, dst, .. } | Op::SignExtend { src, dst, .. } | Op::Copy { src, dst } => {
                slot(src);
                slot(dst);
            }
            Op::Alloc { count, dst, .. } => {
                slot(count);
                slot(dst);
            }
            Op::Gep {
                base, index, dst, ..
            } => {
                slot(base);
                slot(index);
                slot(dst);
            }
            Op::Load { addr, dst, .. } => {
                slot(addr);
                slot(dst);
            }
            Op::Store { addr, val, .. } => {
                slot(addr);
                slot(val);
            }
            Op::Prefetch { addr } => slot(addr),
            Op::Call { dst, .. } => slot(dst),
            Op::Br { edge } => assert!((edge as usize) < img.edges.len(), "edge out of range"),
            Op::CondBr {
                cond,
                then_edge,
                else_edge,
            } => {
                slot(cond);
                assert!((then_edge as usize) < img.edges.len(), "edge out of range");
                assert!((else_edge as usize) < img.edges.len(), "edge out of range");
            }
            Op::Ret { val } => assert!(val == NO_SLOT || val < ns, "ret slot out of range"),
            Op::FallOff => {}
        }
    }
    // Event operand ids double as caller-frame slots for call arguments.
    for v in &img.operands {
        slot(v.0);
    }
    for e in &img.edges {
        assert!((e.target as usize) < img.code.len(), "edge target OOB");
        assert!(
            e.moves_at as usize + e.moves_len as usize <= img.moves.len(),
            "move range out of pool"
        );
    }
    for mv in &img.moves {
        slot(mv.dst);
        slot(mv.src);
    }
    assert!(
        (img.entry_ip as usize) < img.code.len(),
        "entry ip out of range"
    );
    assert!(img.num_params <= ns, "more parameters than frame slots");
}

/// Read a frame slot.
///
/// Bounds are guaranteed by [`validate_image`]: `regs` was sized by
/// [`FuncImage::new_regs`] to `num_slots` and every decoded slot index
/// was checked against `num_slots`.
#[inline(always)]
pub(crate) fn rd(regs: &[RtVal], slot: u32) -> RtVal {
    debug_assert!((slot as usize) < regs.len(), "slot out of range");
    unsafe { *regs.get_unchecked(slot as usize) }
}

/// Write a frame slot; bounds guaranteed as for [`rd`].
#[inline(always)]
pub(crate) fn wr(regs: &mut [RtVal], slot: u32, v: RtVal) {
    debug_assert!((slot as usize) < regs.len(), "slot out of range");
    unsafe {
        *regs.get_unchecked_mut(slot as usize) = v;
    }
}

/// One activation record of the engine.
#[derive(Debug)]
struct Frame {
    /// Function index into [`ExecImage::funcs`].
    func: u32,
    /// Monotonic frame id reported in events.
    frame_id: u64,
    /// Next instruction index.
    ip: u32,
    /// Slot in the *caller's* frame receiving our return value
    /// ([`NO_SLOT`] for the top-level frame).
    ret_slot: u32,
    /// Dense register file; slot k holds the value with id k.
    regs: Vec<RtVal>,
}

/// Mutable execution state, split from the image handle so the borrow
/// checker can see that stepping borrows the image and the state
/// disjointly.
#[derive(Debug)]
struct State {
    frames: Vec<Frame>,
    next_frame_id: u64,
    fuel: u64,
    retired: u64,
    max_depth: usize,
    /// Reusable gather buffer for phi parallel copies.
    move_buf: Vec<RtVal>,
}

/// The execute layer: a resumable cursor over an [`ExecImage`].
///
/// The engine holds no simulated memory; callers pass a [`Memory`] to
/// every [`Engine::step`], which is what lets the
/// [`crate::interp::Interp`] facade own memory across engine restarts
/// and lets tests run several engines against cloned memories.
#[derive(Debug)]
pub struct Engine {
    image: Option<Arc<ExecImage>>,
    st: State,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An idle engine with no image and no cursor.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            image: None,
            st: State {
                frames: Vec::new(),
                next_frame_id: 0,
                fuel: u64::MAX,
                retired: 0,
                max_depth: 1 << 10,
                move_buf: Vec::new(),
            },
        }
    }

    /// Total instructions retired since construction.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.st.retired
    }

    /// Limit the number of instructions that may retire before
    /// [`Trap::OutOfFuel`]; defaults to unlimited.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.st.fuel = fuel;
    }

    /// Begin executing `func` with `args`. Any previous cursor state is
    /// discarded; the retired count and frame-id sequence continue.
    ///
    /// # Panics
    /// If the argument count does not match the function's arity.
    pub fn start(&mut self, image: Arc<ExecImage>, func: FuncId, args: &[RtVal]) {
        let fi = &image.funcs[func.index()];
        assert_eq!(
            args.len(),
            fi.num_params as usize,
            "argument count mismatch"
        );
        let regs = fi.new_regs(args);
        let entry_ip = fi.entry_ip;
        self.st.frames.clear();
        let id = self.st.next_frame_id;
        self.st.next_frame_id += 1;
        self.st.frames.push(Frame {
            func: func.0,
            frame_id: id,
            ip: entry_ip,
            ret_slot: NO_SLOT,
            regs,
        });
        self.image = Some(image);
    }

    /// Execute and retire exactly one instruction (plus the phi copies of
    /// a taken branch, which retire with it, as in the classic engine).
    ///
    /// # Errors
    /// Any [`Trap`] raised by the instruction.
    ///
    /// # Panics
    /// If called without an active cursor (no `start`, or after `Done`).
    #[inline]
    pub fn step(
        &mut self,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Step, Trap> {
        let image = self.image.as_deref().expect("step() without an image");
        self.st.step(image, mem, obs)
    }

    /// Run the current cursor to completion.
    ///
    /// # Errors
    /// Any [`Trap`] raised during execution.
    pub fn run_to_done(
        &mut self,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Option<RtVal>, Trap> {
        let image = self.image.as_deref().expect("run without an image");
        loop {
            match self.st.step(image, mem, obs)? {
                Step::Continue => {}
                Step::Done(v) => return Ok(v),
            }
        }
    }
}

impl State {
    #[allow(clippy::too_many_lines)]
    #[inline]
    fn step(
        &mut self,
        image: &ExecImage,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Step, Trap> {
        if self.retired >= self.fuel {
            return Err(Trap::OutOfFuel);
        }
        let depth = self.frames.len();
        assert!(depth > 0, "step() without an active cursor");
        let frame = self.frames.last_mut().expect("non-empty");
        let fi = &image.funcs[frame.func as usize];
        let ip = frame.ip as usize;
        let d = &fi.code[ip];
        let frame_id = frame.frame_id;
        let ops = &fi.operands[d.ops_at as usize..(d.ops_at + d.ops_len) as usize];
        let regs = frame.regs.as_mut_slice();

        /// Retire the current instruction with the given event kind.
        macro_rules! emit {
            ($kind:expr) => {{
                self.retired += 1;
                obs.on_event(&Event {
                    pc: d.pc,
                    frame: frame_id,
                    result: d.result,
                    kind: $kind,
                    operands: ops,
                });
            }};
        }

        match d.op {
            Op::Bin { op, lhs, rhs, dst } => {
                let r = eval_binary(op, rd(regs, lhs), rd(regs, rhs))?;
                wr(regs, dst, r);
                frame.ip += 1;
                emit!(EventKind::Alu);
            }
            Op::ICmp {
                pred,
                lhs,
                rhs,
                dst,
            } => {
                let r = eval_icmp(pred, rd(regs, lhs).as_int(), rd(regs, rhs).as_int());
                wr(regs, dst, RtVal::Int(i64::from(r)));
                frame.ip += 1;
                emit!(EventKind::Alu);
            }
            Op::Select {
                cond,
                then_val,
                else_val,
                dst,
            } => {
                let c = rd(regs, cond).as_int() != 0;
                let v = if c {
                    rd(regs, then_val)
                } else {
                    rd(regs, else_val)
                };
                wr(regs, dst, v);
                frame.ip += 1;
                emit!(EventKind::Alu);
            }
            Op::Mask { src, mask, dst } => {
                let x = rd(regs, src).as_int();
                wr(regs, dst, RtVal::Int(x & mask));
                frame.ip += 1;
                emit!(EventKind::Alu);
            }
            Op::SignExtend { src, shift, dst } => {
                let x = rd(regs, src).as_int();
                wr(regs, dst, RtVal::Int((x << shift) >> shift));
                frame.ip += 1;
                emit!(EventKind::Alu);
            }
            Op::Copy { src, dst } => {
                let x = rd(regs, src).as_int();
                wr(regs, dst, RtVal::Int(x));
                frame.ip += 1;
                emit!(EventKind::Alu);
            }
            Op::Alloc {
                count,
                elem_size,
                dst,
            } => {
                let n = rd(regs, count).as_int();
                let size = u64::try_from(n.max(0)).expect("non-negative") * elem_size;
                let addr = mem.alloc(size)?;
                wr(regs, dst, RtVal::Int(addr as i64));
                frame.ip += 1;
                emit!(EventKind::Alloc);
            }
            Op::Gep {
                base,
                index,
                elem_size,
                offset,
                dst,
            } => {
                let b = rd(regs, base).as_int() as u64;
                let i = rd(regs, index).as_int();
                let addr = b
                    .wrapping_add((i as u64).wrapping_mul(elem_size))
                    .wrapping_add(offset);
                wr(regs, dst, RtVal::Int(addr as i64));
                frame.ip += 1;
                emit!(EventKind::Alu);
            }
            Op::Load {
                addr,
                ty,
                size,
                dst,
            } => {
                let a = rd(regs, addr).as_int() as u64;
                let raw = mem.read(a, size)?;
                wr(regs, dst, decode_scalar(raw, ty));
                frame.ip += 1;
                emit!(EventKind::Load { addr: a, size });
            }
            Op::Store { addr, val, size } => {
                let a = rd(regs, addr).as_int() as u64;
                let v = rd(regs, val);
                mem.write(a, size, encode_scalar(v))?;
                frame.ip += 1;
                emit!(EventKind::Store { addr: a, size });
            }
            Op::Prefetch { addr } => {
                let a = rd(regs, addr).as_int() as u64;
                // Prefetches never fault: an unmapped hint is dropped.
                let valid = mem.is_valid(a, 1);
                frame.ip += 1;
                emit!(EventKind::Prefetch { addr: a, valid });
            }
            Op::Call { callee, dst } => {
                if depth >= self.max_depth {
                    return Err(Trap::StackOverflow);
                }
                let callee_img = &image.funcs[callee as usize];
                let mut new_regs = vec![RtVal::Int(0); callee_img.num_slots as usize];
                for (k, &arg) in ops.iter().enumerate() {
                    new_regs[k] = rd(regs, arg.0);
                }
                for &(slot, v) in &callee_img.consts {
                    new_regs[slot as usize] = v;
                }
                frame.ip += 1; // resume after the call on return
                let entry_ip = callee_img.entry_ip;
                emit!(EventKind::Call);
                let id = self.next_frame_id;
                self.next_frame_id += 1;
                self.frames.push(Frame {
                    func: callee,
                    frame_id: id,
                    ip: entry_ip,
                    ret_slot: dst,
                    regs: new_regs,
                });
            }
            Op::Br { edge } => {
                self.take_edge(fi, edge, frame_id, obs)?;
                self.retired += 1;
                obs.on_event(&Event {
                    pc: d.pc,
                    frame: frame_id,
                    result: d.result,
                    kind: EventKind::Branch { taken: true },
                    operands: ops,
                });
            }
            Op::CondBr {
                cond,
                then_edge,
                else_edge,
            } => {
                let c = rd(regs, cond).as_int() != 0;
                let edge = if c { then_edge } else { else_edge };
                self.take_edge(fi, edge, frame_id, obs)?;
                self.retired += 1;
                obs.on_event(&Event {
                    pc: d.pc,
                    frame: frame_id,
                    result: d.result,
                    kind: EventKind::Branch { taken: c },
                    operands: ops,
                });
            }
            Op::Ret { val } => {
                let rv = if val == NO_SLOT {
                    None
                } else {
                    Some(rd(regs, val))
                };
                let finished = self.frames.pop().expect("non-empty");
                self.retired += 1;
                obs.on_event(&Event {
                    pc: d.pc,
                    frame: finished.frame_id,
                    result: d.result,
                    kind: EventKind::Ret,
                    operands: ops,
                });
                if let Some(parent) = self.frames.last_mut() {
                    if let (true, Some(v)) = (finished.ret_slot != NO_SLOT, rv) {
                        parent.regs[finished.ret_slot as usize] = v;
                    }
                    return Ok(Step::Continue);
                }
                return Ok(Step::Done(rv));
            }
            Op::FallOff => panic!("fell off block end"),
        }
        Ok(Step::Continue)
    }

    /// Apply one CFG edge in the current frame: the phi parallel copy,
    /// the jump, and the phi retire events (reported after the copy so
    /// dependence times are consistent — each phi depends only on its
    /// chosen incoming — and *before* the branch's own event, matching
    /// the classic engine's order).
    #[inline]
    fn take_edge(
        &mut self,
        fi: &FuncImage,
        edge: u32,
        frame_id: u64,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<(), Trap> {
        let e = fi.edges[edge as usize];
        let moves = &fi.moves[e.moves_at as usize..(e.moves_at + e.moves_len) as usize];
        let frame = self.frames.last_mut().expect("non-empty");
        if !moves.is_empty() {
            // Gather every source before writing any destination: phi
            // copies are simultaneous (the swap test relies on this).
            let regs = frame.regs.as_mut_slice();
            self.move_buf.clear();
            self.move_buf
                .extend(moves.iter().map(|mv| rd(regs, mv.src)));
            for (mv, &v) in moves.iter().zip(&self.move_buf) {
                wr(regs, mv.dst, v);
            }
        }
        frame.ip = e.target;
        for mv in moves {
            self.retired += 1;
            if self.retired > self.fuel {
                return Err(Trap::OutOfFuel);
            }
            let ops = [mv.incoming];
            obs.on_event(&Event {
                pc: mv.pc,
                frame: frame_id,
                result: mv.result,
                kind: EventKind::Alu,
                operands: &ops,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::NullObserver;

    #[test]
    fn decode_flattens_blocks_and_pools_constants() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let x = b.arg(0);
            let k = b.const_i64(7);
            let r = b.add(x, k);
            b.ret(Some(r));
        }
        let image = ExecImage::build(&m);
        assert_eq!(image.num_funcs(), 1);
        // add + ret; the constant lives in the const pool, not the code.
        assert_eq!(image.code_len(fid), 2);
        let fi = &image.funcs[0];
        assert!(fi.consts.iter().any(|&(_, v)| v == RtVal::Int(7)));
        assert_eq!(fi.num_params, 1);
    }

    #[test]
    fn engine_runs_a_simple_function() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::I64, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let r = b.add(b.arg(0), b.arg(1));
            b.ret(Some(r));
        }
        let image = Arc::new(ExecImage::build(&m));
        let mut eng = Engine::new();
        let mut mem = Memory::with_limit(1 << 20);
        eng.start(image, fid, &[RtVal::Int(30), RtVal::Int(12)]);
        let r = eng.run_to_done(&mut mem, &mut NullObserver).unwrap();
        assert_eq!(r, Some(RtVal::Int(42)));
        assert_eq!(eng.retired(), 2);
    }

    #[test]
    fn static_meta_classifies_memory_ops() {
        let mut m = Module::new("t");
        let fid = m.declare_function("f", &[Type::Ptr], None);
        let (load_v, store_v, pf_v);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let p = b.arg(0);
            load_v = b.load(Type::I32, p);
            store_v = b.store(load_v, p);
            pf_v = b.prefetch(p);
            b.ret(None);
        }
        let image = ExecImage::build(&m);
        let pc = |v: ValueId| (u64::from(fid.0) << 32) | u64::from(v.0);
        let lm = image.static_meta(pc(load_v)).unwrap();
        assert!(lm.is_load && lm.width == 4);
        let sm = image.static_meta(pc(store_v)).unwrap();
        assert!(sm.is_store && sm.width == 4);
        let pm = image.static_meta(pc(pf_v)).unwrap();
        assert!(pm.is_prefetch);
        assert_eq!(image.static_meta(u64::MAX), None);
    }
}
