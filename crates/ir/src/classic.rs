//! The original tree-walking interpreter, kept as a reference oracle.
//!
//! [`ClassicInterp`] executes IR by re-reading the [`Module`] on every
//! dynamic instruction: block instruction lists are indexed, `InstKind`
//! payloads are matched, operand types are looked up, and phi incomings
//! are searched at each block entry. It is the engine the repository
//! originally shipped and is retained verbatim (modulo the rename) for
//! two reasons:
//!
//! 1. **Differential testing.** The pre-decoded engine in [`crate::exec`]
//!    must produce exactly the same architectural results *and* the same
//!    observer event stream. The suite runs every workload through both
//!    engines and compares (see `tests/exec_differential.rs` in the
//!    facade crate).
//! 2. **Semantics documentation.** When the decode layer is in doubt,
//!    this file is the specification: it maps one-to-one onto the IR.
//!
//! New code should use [`crate::interp::Interp`], which runs on the
//! pre-decoded engine and is substantially faster.

use crate::block::BlockId;
use crate::function::FuncId;
use crate::inst::{CastOp, InstKind};
use crate::interp::{
    decode_scalar, encode_scalar, eval_binary, eval_icmp, Event, EventKind, ExecObserver, Memory,
    RtVal, Step, Trap,
};
use crate::module::Module;
use crate::value::{Constant, ValueId, ValueKind};

struct Frame {
    func: FuncId,
    frame_id: u64,
    regs: Vec<RtVal>,
    block: u32,
    inst_idx: usize,
    /// Value id in the *caller* frame to receive our return value.
    ret_to: Option<ValueId>,
}

fn make_frame(
    module: &Module,
    func: FuncId,
    args: &[RtVal],
    ret_to: Option<ValueId>,
    frame_id: u64,
) -> Frame {
    let f = module.function(func);
    let mut regs = vec![RtVal::Int(0); f.num_values()];
    for (i, a) in args.iter().enumerate() {
        regs[i] = *a;
    }
    // Pre-materialise constants so operand reads are a plain index.
    for (idx, slot) in regs.iter_mut().enumerate() {
        if let ValueKind::Const(c) = &f.value(ValueId(idx as u32)).kind {
            *slot = match c {
                Constant::Int(v, _) => RtVal::Int(*v),
                Constant::Float(v) => RtVal::Float(*v),
            };
        }
    }
    Frame {
        func,
        frame_id,
        regs,
        block: f.entry().0,
        inst_idx: 0,
        ret_to,
    }
}

/// The reference interpreter: simulated memory plus a resumable cursor,
/// decoding the module afresh on every retired instruction.
pub struct ClassicInterp {
    mem: Memory,
    frames: Vec<Frame>,
    next_frame_id: u64,
    fuel: u64,
    retired: u64,
    max_depth: usize,
    scratch_ops: Vec<ValueId>,
    phi_buf: Vec<(ValueId, RtVal, ValueId)>,
}

impl Default for ClassicInterp {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassicInterp {
    /// Create an interpreter with a 1 GiB heap limit.
    #[must_use]
    pub fn new() -> Self {
        Self::with_heap_limit(1 << 30)
    }

    /// Create an interpreter with an explicit heap limit in bytes.
    #[must_use]
    pub fn with_heap_limit(limit: u64) -> Self {
        ClassicInterp {
            mem: Memory::with_limit(limit),
            frames: Vec::new(),
            next_frame_id: 0,
            fuel: u64::MAX,
            retired: 0,
            max_depth: 1 << 10,
            scratch_ops: Vec::new(),
            phi_buf: Vec::new(),
        }
    }

    /// Access the simulated memory (e.g. to initialise workload arrays).
    pub fn mem(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Read-only view of the simulated memory.
    #[must_use]
    pub fn mem_ref(&self) -> &Memory {
        &self.mem
    }

    /// Total instructions retired since construction.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Limit the number of instructions that may retire before
    /// [`Trap::OutOfFuel`]; defaults to unlimited.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Allocate and zero-fill an array; convenience for workload setup.
    ///
    /// # Errors
    /// [`Trap::OutOfMemory`] if the heap limit would be exceeded.
    pub fn alloc_array(&mut self, elems: u64, elem_size: u32) -> Result<u64, Trap> {
        self.mem.alloc(elems * u64::from(elem_size))
    }

    /// Begin executing `func` with `args`. Any previous cursor state is
    /// discarded; allocated memory is retained.
    ///
    /// # Panics
    /// If the argument count does not match the signature.
    pub fn start(&mut self, module: &Module, func: FuncId, args: &[RtVal]) {
        let f = module.function(func);
        assert_eq!(args.len(), f.params.len(), "argument count mismatch");
        self.frames.clear();
        let id = self.next_frame_id;
        self.next_frame_id += 1;
        self.frames.push(make_frame(module, func, args, None, id));
    }

    /// Run to completion with the given observer.
    ///
    /// # Errors
    /// Any [`Trap`] raised during execution.
    pub fn run(
        &mut self,
        module: &Module,
        func: FuncId,
        args: &[RtVal],
        obs: &mut dyn ExecObserver,
    ) -> Result<Option<RtVal>, Trap> {
        self.start(module, func, args);
        loop {
            match self.step(module, obs)? {
                Step::Continue => {}
                Step::Done(v) => return Ok(v),
            }
        }
    }

    /// Execute and retire exactly one instruction.
    ///
    /// `module` must be the same module passed to [`ClassicInterp::start`].
    ///
    /// # Errors
    /// Any [`Trap`] raised by the instruction.
    ///
    /// # Panics
    /// If called without an active cursor (no `start`, or after `Done`).
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self, module: &Module, obs: &mut dyn ExecObserver) -> Result<Step, Trap> {
        if self.retired >= self.fuel {
            return Err(Trap::OutOfFuel);
        }
        let depth = self.frames.len();
        assert!(depth > 0, "step() without an active cursor");
        let frame = self.frames.last_mut().expect("non-empty");
        let func = frame.func;
        let f = module.function(func);
        let block = BlockId(frame.block);
        let insts = &f.block(block).insts;
        debug_assert!(frame.inst_idx < insts.len(), "fell off block end");
        let v = insts[frame.inst_idx];
        let inst = f.inst(v).expect("placed value is an instruction");
        let pc = (u64::from(func.0) << 32) | u64::from(v.0);
        let frame_id = frame.frame_id;

        self.scratch_ops.clear();
        let mut kind_out = EventKind::Alu;
        let mut advance = true;

        macro_rules! reg {
            ($vid:expr) => {
                frame.regs[$vid.index()]
            };
        }

        match &inst.kind {
            InstKind::Binary { op, lhs, rhs } => {
                self.scratch_ops.push(*lhs);
                self.scratch_ops.push(*rhs);
                let r = eval_binary(*op, reg!(lhs), reg!(rhs))?;
                frame.regs[v.index()] = r;
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                self.scratch_ops.push(*lhs);
                self.scratch_ops.push(*rhs);
                let r = eval_icmp(*pred, reg!(lhs).as_int(), reg!(rhs).as_int());
                frame.regs[v.index()] = RtVal::Int(i64::from(r));
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => {
                self.scratch_ops.push(*cond);
                self.scratch_ops.push(*then_val);
                self.scratch_ops.push(*else_val);
                let c = reg!(cond).as_int() != 0;
                frame.regs[v.index()] = if c { reg!(then_val) } else { reg!(else_val) };
            }
            InstKind::Cast { op, val, to } => {
                self.scratch_ops.push(*val);
                let x = reg!(val).as_int();
                let r = match op {
                    CastOp::Trunc => {
                        let bits = to.bits();
                        let mask = if bits >= 64 {
                            -1i64
                        } else {
                            (1i64 << bits) - 1
                        };
                        x & mask
                    }
                    CastOp::Zext | CastOp::Sext => {
                        // Values are stored canonically; extension depends on
                        // the *source* width, which trunc already masked.
                        // Sext re-signs from the source type width.
                        let from_bits = f.value(*val).ty.expect("cast source typed").bits();
                        if *op == CastOp::Sext && from_bits < 64 {
                            let shift = 64 - from_bits;
                            (x << shift) >> shift
                        } else {
                            x
                        }
                    }
                    CastOp::IntToPtr | CastOp::PtrToInt => x,
                };
                frame.regs[v.index()] = RtVal::Int(r);
            }
            InstKind::Alloc { count, elem_size } => {
                self.scratch_ops.push(*count);
                let n = reg!(count).as_int();
                let size = u64::try_from(n.max(0)).expect("non-negative") * elem_size;
                // Borrow dance: allocation needs &mut self.mem.
                let addr = {
                    let mem = &mut self.mem;
                    mem.alloc(size)?
                };
                self.frames.last_mut().expect("non-empty").regs[v.index()] =
                    RtVal::Int(addr as i64);
                kind_out = EventKind::Alloc;
            }
            InstKind::Gep {
                base,
                index,
                elem_size,
                offset,
            } => {
                self.scratch_ops.push(*base);
                self.scratch_ops.push(*index);
                let b = reg!(base).as_int() as u64;
                let i = reg!(index).as_int();
                let addr = b
                    .wrapping_add((i as u64).wrapping_mul(*elem_size))
                    .wrapping_add(*offset);
                frame.regs[v.index()] = RtVal::Int(addr as i64);
            }
            InstKind::Load { addr, ty } => {
                self.scratch_ops.push(*addr);
                let a = reg!(addr).as_int() as u64;
                let size = ty.size_bytes() as u32;
                let raw = self.mem.read(a, size)?;
                let frame = self.frames.last_mut().expect("non-empty");
                frame.regs[v.index()] = decode_scalar(raw, *ty);
                kind_out = EventKind::Load { addr: a, size };
            }
            InstKind::Store { addr, value } => {
                self.scratch_ops.push(*addr);
                self.scratch_ops.push(*value);
                let a = reg!(addr).as_int() as u64;
                let val = reg!(value);
                let ty = f.value(*value).ty.expect("store of typed value");
                let size = ty.size_bytes() as u32;
                self.mem.write(a, size, encode_scalar(val))?;
                kind_out = EventKind::Store { addr: a, size };
            }
            InstKind::Prefetch { addr } => {
                self.scratch_ops.push(*addr);
                let a = reg!(addr).as_int() as u64;
                // Prefetches never fault: an unmapped hint is dropped.
                let valid = self.mem.is_valid(a, 1);
                kind_out = EventKind::Prefetch { addr: a, valid };
            }
            InstKind::Phi { .. } => {
                unreachable!("phis are executed en masse at block entry")
            }
            InstKind::Call { callee, args } => {
                self.scratch_ops.extend(args.iter().copied());
                if depth >= self.max_depth {
                    return Err(Trap::StackOverflow);
                }
                let argv: Vec<RtVal> = args.iter().map(|a| frame.regs[a.index()]).collect();
                frame.inst_idx += 1; // resume after the call on return
                let id = self.next_frame_id;
                self.next_frame_id += 1;
                let new_frame = make_frame(module, *callee, &argv, Some(v), id);
                self.frames.push(new_frame);
                kind_out = EventKind::Call;
                advance = false;
            }
            InstKind::Br { target } => {
                let t = *target;
                self.enter_block(module, t, block, obs, pc)?;
                kind_out = EventKind::Branch { taken: true };
                advance = false;
            }
            InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                self.scratch_ops.push(*cond);
                let c = reg!(cond).as_int() != 0;
                let t = if c { *then_bb } else { *else_bb };
                self.enter_block(module, t, block, obs, pc)?;
                kind_out = EventKind::Branch { taken: c };
                advance = false;
            }
            InstKind::Ret { value } => {
                let rv = value.map(|x| {
                    self.scratch_ops.push(x);
                    frame.regs[x.index()]
                });
                let finished = self.frames.pop().expect("non-empty");
                self.retired += 1;
                obs.on_event(&Event {
                    pc,
                    frame: finished.frame_id,
                    result: v,
                    kind: EventKind::Ret,
                    operands: &self.scratch_ops,
                });
                if let Some(parent) = self.frames.last_mut() {
                    if let (Some(slot), Some(val)) = (finished.ret_to, rv) {
                        parent.regs[slot.index()] = val;
                    }
                    return Ok(Step::Continue);
                }
                return Ok(Step::Done(rv));
            }
        }

        self.retired += 1;
        obs.on_event(&Event {
            pc,
            frame: frame_id,
            result: v,
            kind: kind_out,
            operands: &self.scratch_ops,
        });
        if advance {
            self.frames.last_mut().expect("non-empty").inst_idx += 1;
        }
        Ok(Step::Continue)
    }

    /// Branch to `target` from `from`: execute all phis as a parallel copy
    /// and position the cursor after them.
    fn enter_block(
        &mut self,
        module: &Module,
        target: BlockId,
        from: BlockId,
        obs: &mut dyn ExecObserver,
        _branch_pc: u64,
    ) -> Result<(), Trap> {
        let frame = self.frames.last_mut().expect("non-empty");
        let f = module.function(frame.func);
        self.phi_buf.clear();
        let insts = &f.block(target).insts;
        let mut n_phis = 0;
        for &pv in insts {
            let Some(InstKind::Phi { incomings }) = f.inst(pv).map(|i| &i.kind) else {
                break;
            };
            n_phis += 1;
            let (_, iv) = incomings
                .iter()
                .find(|(b, _)| *b == from)
                .expect("verifier guarantees an incoming per predecessor");
            self.phi_buf.push((pv, frame.regs[iv.index()], *iv));
        }
        let func = frame.func;
        let frame_id = frame.frame_id;
        for &(pv, val, _) in &self.phi_buf {
            frame.regs[pv.index()] = val;
        }
        frame.block = target.0;
        frame.inst_idx = n_phis;
        // Report phis after the parallel copy so dependence times are
        // consistent (each phi depends only on its chosen incoming).
        for i in 0..self.phi_buf.len() {
            let (pv, _, iv) = self.phi_buf[i];
            self.retired += 1;
            if self.retired > self.fuel {
                return Err(Trap::OutOfFuel);
            }
            let ops = [iv];
            obs.on_event(&Event {
                pc: (u64::from(func.0) << 32) | u64::from(pv.0),
                frame: frame_id,
                result: pv,
                kind: EventKind::Alu,
                operands: &ops,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;
    use crate::interp::NullObserver;
    use crate::types::Type;
    use crate::verifier::verify_module;

    #[test]
    fn classic_engine_still_runs() {
        let mut m = Module::new("t");
        let fid = m.declare_function("sum", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let n = b.arg(0);
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let acc = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let acc2 = b.add(acc, i);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to(exit);
            b.ret(Some(acc));
        }
        verify_module(&m).unwrap();
        let f = m.find_function("sum").unwrap();
        let mut interp = ClassicInterp::new();
        let r = interp
            .run(&m, f, &[RtVal::Int(10)], &mut NullObserver)
            .unwrap();
        assert_eq!(r, Some(RtVal::Int(45)));
        assert!(interp.retired() > 0);
    }
}
