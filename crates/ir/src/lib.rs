//! # swpf-ir — a compact SSA intermediate representation
//!
//! This crate provides the compiler substrate for the CGO'17 paper
//! *Software Prefetching for Indirect Memory Accesses* (Ainsworth & Jones).
//! The paper's pass operates on LLVM IR; this crate supplies an equivalent,
//! self-contained SSA IR with the concepts the pass needs:
//!
//! * typed instructions in basic blocks with explicit control flow,
//! * phi nodes (so induction variables are discoverable),
//! * `gep`/`load`/`store`/`prefetch` memory operations with static element
//!   sizes (so address arithmetic is analysable),
//! * `alloc` instructions carrying an element count (so data-structure sizes
//!   can be recovered by walking the data-dependence graph, §4.2 of the
//!   paper),
//! * a [`builder::FunctionBuilder`] for programmatic construction,
//! * a [`verifier`] checking SSA dominance and structural invariants,
//! * a textual [`printer`] / [`parser`] round-trip format, and
//! * a two-layer execution stack: a one-time decode pass lowering
//!   functions into dense [`exec::ExecImage`]s plus a slim execute loop,
//!   fronted by the [`interp::Interp`] facade, with a pluggable
//!   [`interp::ExecObserver`] through which the timing simulator (crate
//!   `swpf-sim`) watches every retired instruction. The original
//!   tree-walking engine is preserved as [`classic::ClassicInterp`] and
//!   serves as the differential-testing oracle.
//!
//! The IR is deliberately small: enough to express the paper's benchmarks
//! (integer sort, sparse conjugate gradient, RandomAccess, hash join,
//! Graph500 BFS) and every transformation the prefetching pass performs,
//! without the incidental complexity of a production IR.
//!
//! ## Quick example
//!
//! ```
//! use swpf_ir::prelude::*;
//!
//! // Build: for (i = 0; i < n; i++) sum += a[b[i]];
//! let mut m = Module::new("example");
//! let f = m.declare_function("kernel", &[Type::Ptr, Type::Ptr, Type::I64], Type::I64);
//! {
//!     let mut b = FunctionBuilder::new(m.function_mut(f));
//!     let (a, bptr, n) = (b.arg(0), b.arg(1), b.arg(2));
//!     let entry = b.entry_block();
//!     let header = b.create_block("header");
//!     let body = b.create_block("body");
//!     let exit = b.create_block("exit");
//!     b.switch_to(entry);
//!     let zero = b.const_i64(0);
//!     b.br(header);
//!     b.switch_to(header);
//!     let i = b.phi(Type::I64, &[(entry, zero)]);
//!     let sum = b.phi(Type::I64, &[(entry, zero)]);
//!     let cont = b.icmp(Pred::Slt, i, n);
//!     b.cond_br(cont, body, exit);
//!     b.switch_to(body);
//!     let bi_addr = b.gep(bptr, i, 8);
//!     let idx = b.load(Type::I64, bi_addr);
//!     let ai_addr = b.gep(a, idx, 8);
//!     let v = b.load(Type::I64, ai_addr);
//!     let sum2 = b.add(sum, v);
//!     let one = b.const_i64(1);
//!     let i2 = b.add(i, one);
//!     b.add_phi_incoming(i, body, i2);
//!     b.add_phi_incoming(sum, body, sum2);
//!     b.br(header);
//!     b.switch_to(exit);
//!     b.ret(Some(sum));
//! }
//! swpf_ir::verifier::verify_module(&m).unwrap();
//! ```

pub mod block;
pub mod builder;
pub mod bytecode;
pub mod classic;
pub mod exec;
pub mod function;
pub mod inst;
pub mod interp;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verifier;

pub use block::{Block, BlockId};
pub use builder::FunctionBuilder;
pub use bytecode::{BcEngine, BcImage, LowerError};
pub use exec::ExecImage;
pub use function::{FuncId, Function};
pub use inst::{BinOp, CastOp, Inst, InstKind, Pred};
pub use interp::Tier;
pub use module::Module;
pub use types::Type;
pub use value::{Constant, ValueData, ValueId, ValueKind};

/// Convenient glob-import surface for downstream crates and examples.
pub mod prelude {
    pub use crate::block::BlockId;
    pub use crate::builder::FunctionBuilder;
    pub use crate::exec::ExecImage;
    pub use crate::function::{FuncId, Function};
    pub use crate::inst::{BinOp, CastOp, Inst, InstKind, Pred};
    pub use crate::interp::{ExecObserver, Interp, RtVal, Tier};
    pub use crate::module::Module;
    pub use crate::types::Type;
    pub use crate::value::{Constant, ValueId, ValueKind};
}
