//! Bytecode execution tier: fixed-width threaded code with fused
//! superinstructions.
//!
//! The [`crate::exec`] engine already decodes a module once, but its
//! execute loop still matches on enum-shaped [`Op`](crate::exec::Op)
//! values (24-byte variants behind a discriminant) and re-acquires the
//! active frame, function image and slice bounds on every step. This
//! module lowers an [`ExecImage`] one level further, into a flat array
//! of fixed-width 8-byte instruction words:
//!
//! ```text
//!  bit 63      50 49      36 35      22 21       8 7        0
//!      +----------+----------+----------+----------+--------+
//!      |    d     |    c     |    b     |    a     | opcode |
//!      +----------+----------+----------+----------+--------+
//!        14 bits    14 bits    14 bits    14 bits    8 bits
//! ```
//!
//! The opcode byte drives a tight `match`-on-`u8` dispatch loop; the
//! four 14-bit fields carry frame-slot indices, pre-resolved CFG-edge
//! indices, or indices into a per-function 64-bit immediate pool (cast
//! masks, `gep` element sizes). Code indices are identical to the
//! [`ExecImage`] instruction indices — each decoded instruction lowers
//! to exactly one word — so branch targets, entry points and the
//! observer metadata (event `pc`, result id, operand list) carry over
//! unchanged into side tables the dispatch loop only touches when an
//! instruction retires.
//!
//! All slot / edge / immediate indices are validated once at lowering
//! time ([`BcImage::lower`] returns [`LowerError`] when a function
//! exceeds a 14-bit capacity, and asserts internal consistency), which
//! is what lets the dispatch loop use unchecked accesses — the same
//! decode-time-validation contract as `exec::validate_image`.
//!
//! # Superinstructions
//!
//! On top of the flat encoding, lowering runs a peephole pass that
//! *fuses* frequent adjacent instruction pairs (mined from the
//! swpf-trace corpus across all seven workloads — see the `mine_pairs`
//! bin in `swpf-bench` and DESIGN.md for the frequency table). Fusion
//! only rewrites the opcode byte of the *first* word of a pair; its
//! operand fields and the entire second word stay intact. A fused
//! handler executes both halves — two architectural effects, two retire
//! events, one dispatch. Because the second word is untouched, a branch
//! into the middle of a pair executes it standalone, and the
//! single-stepping entry point ([`BcEngine::step`]) simply demotes a
//! fused opcode to its first component ([`unfuse`]) — so stepped
//! execution (multicore interleaving, trace step boundaries) retires
//! exactly one instruction per call and one fused image serves both
//! paths with bit-identical event streams.
//!
//! The tier is reached through the [`crate::interp::Interp`] facade
//! (`SWPF_TIER=bytecode`, the default); the classic tree-walker and the
//! exec engine remain as differential oracles.

use crate::exec::{self, rd, wr, ExecImage, Op};
use crate::function::FuncId;
use crate::inst::{BinOp, Pred};
use crate::interp::{
    decode_scalar, encode_scalar, eval_binary, eval_icmp, Event, EventKind, ExecObserver, Memory,
    RtVal, Step, Trap,
};
use crate::types::Type;
use crate::value::ValueId;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Whether the opt-in `SWPF_OPCODE_STATS=1` retired-opcode statistics
/// are active. Read once per process — flipping the variable after the
/// first bytecode run has no effect.
fn opcode_stats_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("SWPF_OPCODE_STATS").is_some_and(|v| v != "0"))
}

/// Width of each packed operand field.
pub const FIELD_BITS: u32 = 14;
/// Mask (and maximum value) of a packed operand field.
pub const FIELD_MASK: u32 = (1 << FIELD_BITS) - 1;
/// In-word sentinel for "no slot" (void `ret`). Lowering guarantees no
/// real slot index reaches this value.
pub const BC_NO_SLOT: u32 = FIELD_MASK;

const A_SHIFT: u32 = 8;
const B_SHIFT: u32 = 22;
const C_SHIFT: u32 = 36;
const D_SHIFT: u32 = 50;

/// Pack an instruction word.
#[inline]
#[must_use]
pub fn encode_word(opcode: u8, a: u32, b: u32, c: u32, d: u32) -> u64 {
    debug_assert!(a <= FIELD_MASK && b <= FIELD_MASK && c <= FIELD_MASK && d <= FIELD_MASK);
    u64::from(opcode)
        | (u64::from(a) << A_SHIFT)
        | (u64::from(b) << B_SHIFT)
        | (u64::from(c) << C_SHIFT)
        | (u64::from(d) << D_SHIFT)
}

#[inline(always)]
fn fa(w: u64) -> u32 {
    ((w >> A_SHIFT) as u32) & FIELD_MASK
}
#[inline(always)]
fn fb(w: u64) -> u32 {
    ((w >> B_SHIFT) as u32) & FIELD_MASK
}
#[inline(always)]
fn fc(w: u64) -> u32 {
    ((w >> C_SHIFT) as u32) & FIELD_MASK
}
#[inline(always)]
fn fd(w: u64) -> u32 {
    ((w >> D_SHIFT) as u32) & FIELD_MASK
}

/// The opcode space. Base opcodes below [`op::FUSED_BASE`], fused
/// superinstruction opcodes at and above it.
#[allow(missing_docs)]
pub mod op {
    pub const RET: u8 = 0; // a = value slot | BC_NO_SLOT
    pub const BR: u8 = 1; // a = edge index
    pub const CBR: u8 = 2; // a = cond, b = then edge, c = else edge
    pub const ADD: u8 = 3; // binaries: a = lhs, b = rhs, c = dst
    pub const SUB: u8 = 4;
    pub const MUL: u8 = 5;
    pub const SDIV: u8 = 6;
    pub const UDIV: u8 = 7;
    pub const SREM: u8 = 8;
    pub const UREM: u8 = 9;
    pub const AND: u8 = 10;
    pub const OR: u8 = 11;
    pub const XOR: u8 = 12;
    pub const SHL: u8 = 13;
    pub const LSHR: u8 = 14;
    pub const ASHR: u8 = 15;
    pub const FADD: u8 = 16;
    pub const FSUB: u8 = 17;
    pub const FMUL: u8 = 18;
    pub const FDIV: u8 = 19;
    pub const ICMP: u8 = 20; // a = lhs, b = rhs, c = dst, d = predicate code
    pub const SELECT: u8 = 21; // a = cond, b = then, c = else, d = dst
    pub const MASK: u8 = 22; // a = src, b = dst, c = imm index (mask)
    pub const SEXT: u8 = 23; // a = src, b = dst, c = shift amount
    pub const COPY: u8 = 24; // a = src, b = dst
    pub const ALLOC: u8 = 25; // a = count, b = dst, c = imm index (elem size)
    pub const GEP: u8 = 26; // a = base, b = index, c = dst, d = imm pair index
    pub const LD_I1: u8 = 27; // loads: a = addr, b = dst; type in opcode
    pub const LD_I8: u8 = 28;
    pub const LD_I16: u8 = 29;
    pub const LD_I32: u8 = 30;
    pub const LD_I64: u8 = 31;
    pub const LD_F64: u8 = 32;
    pub const ST_1: u8 = 33; // stores: a = addr, b = value; width in opcode
    pub const ST_2: u8 = 34;
    pub const ST_4: u8 = 35;
    pub const ST_8: u8 = 36;
    pub const PREFETCH: u8 = 37; // a = addr
    pub const CALL: u8 = 38; // a = callee function index, b = dst
    pub const FALLOFF: u8 = 39; // block without terminator (panics)

    /// First fused opcode; everything below is a base opcode.
    pub const FUSED_BASE: u8 = 64;
    // The superinstruction catalogue: the 12 most frequent fusible
    // adjacent pairs mined from the swpf-trace corpus across all 7
    // workloads x {baseline, manual, auto} by `mine_pairs` in
    // swpf-bench (see DESIGN.md for the full frequency table).
    pub const GEP_LD64: u8 = 64; // gep ; ld_i64     (indirect access)
    pub const LD64_GEP: u8 = 65; // ld_i64 ; gep     (index load -> address)
    pub const ICMP_CBR: u8 = 66; // icmp ; cbr       (loop back-edge test)
    pub const GEP_PF: u8 = 67; // gep ; prefetch   (prefetch address gen)
    pub const ICMP_SEL: u8 = 68; // icmp ; select    (branchless min/max)
    pub const LD64_ICMP: u8 = 69; // ld_i64 ; icmp    (loaded-value test)
    pub const SEL_GEP: u8 = 70; // select ; gep     (clamped index -> address)
    pub const ADD_SUB: u8 = 71; // add ; sub        (paired index arithmetic)
    pub const PF_ADD: u8 = 72; // prefetch ; add   (prefetch then induction)
    pub const LD64_MUL: u8 = 73; // ld_i64 ; mul     (hash mixing)
    pub const MUL_LSHR: u8 = 74; // mul ; lshr       (multiplicative hash)
    pub const ADD_ICMP: u8 = 75; // add ; icmp       (increment then test)
    pub const GEP_LDF64: u8 = 76; // gep ; ld_f64     (float gather, CG)

    /// Mnemonic of an opcode (base or fused), for tooling and the
    /// `SWPF_OPCODE_STATS` retired-opcode report.
    #[must_use]
    pub fn name(opcode: u8) -> &'static str {
        match opcode {
            RET => "ret",
            BR => "br",
            CBR => "cbr",
            ADD => "add",
            SUB => "sub",
            MUL => "mul",
            SDIV => "sdiv",
            UDIV => "udiv",
            SREM => "srem",
            UREM => "urem",
            AND => "and",
            OR => "or",
            XOR => "xor",
            SHL => "shl",
            LSHR => "lshr",
            ASHR => "ashr",
            FADD => "fadd",
            FSUB => "fsub",
            FMUL => "fmul",
            FDIV => "fdiv",
            ICMP => "icmp",
            SELECT => "select",
            MASK => "mask",
            SEXT => "sext",
            COPY => "copy",
            ALLOC => "alloc",
            GEP => "gep",
            LD_I1 => "ld_i1",
            LD_I8 => "ld_i8",
            LD_I16 => "ld_i16",
            LD_I32 => "ld_i32",
            LD_I64 => "ld_i64",
            LD_F64 => "ld_f64",
            ST_1 => "st_1",
            ST_2 => "st_2",
            ST_4 => "st_4",
            ST_8 => "st_8",
            PREFETCH => "prefetch",
            CALL => "call",
            FALLOFF => "falloff",
            GEP_LD64 => "gep+ld_i64",
            LD64_GEP => "ld_i64+gep",
            ICMP_CBR => "icmp+cbr",
            GEP_PF => "gep+prefetch",
            ICMP_SEL => "icmp+select",
            LD64_ICMP => "ld_i64+icmp",
            SEL_GEP => "select+gep",
            ADD_SUB => "add+sub",
            PF_ADD => "prefetch+add",
            LD64_MUL => "ld_i64+mul",
            MUL_LSHR => "mul+lshr",
            ADD_ICMP => "add+icmp",
            GEP_LDF64 => "gep+ld_f64",
            _ => "invalid",
        }
    }
}

/// The fusion catalogue: `(first opcode, second opcode, fused opcode)`.
/// Lowering fuses a pair by replacing the first word's opcode byte; the
/// second word is left intact.
pub const FUSE_TABLE: &[(u8, u8, u8)] = &[
    (op::GEP, op::LD_I64, op::GEP_LD64),
    (op::LD_I64, op::GEP, op::LD64_GEP),
    (op::ICMP, op::CBR, op::ICMP_CBR),
    (op::GEP, op::PREFETCH, op::GEP_PF),
    (op::ICMP, op::SELECT, op::ICMP_SEL),
    (op::LD_I64, op::ICMP, op::LD64_ICMP),
    (op::SELECT, op::GEP, op::SEL_GEP),
    (op::ADD, op::SUB, op::ADD_SUB),
    (op::PREFETCH, op::ADD, op::PF_ADD),
    (op::LD_I64, op::MUL, op::LD64_MUL),
    (op::MUL, op::LSHR, op::MUL_LSHR),
    (op::ADD, op::ICMP, op::ADD_ICMP),
    (op::GEP, op::LD_F64, op::GEP_LDF64),
];

/// Demote an opcode to its first component: identity for base opcodes,
/// the first half for fused opcodes. [`BcEngine::step`] dispatches on
/// the demoted opcode so stepped execution stays single-instruction
/// granular (the second half has kept its own opcode and runs on the
/// next step).
#[inline]
#[must_use]
pub fn unfuse(opcode: u8) -> u8 {
    if opcode < op::FUSED_BASE {
        return opcode;
    }
    for &(first, _, fused) in FUSE_TABLE {
        if fused == opcode {
            return first;
        }
    }
    opcode
}

/// Predicate codes for the `d` field of `ICMP`, in table order.
const PREDS: [Pred; 10] = [
    Pred::Eq,
    Pred::Ne,
    Pred::Slt,
    Pred::Sle,
    Pred::Sgt,
    Pred::Sge,
    Pred::Ult,
    Pred::Ule,
    Pred::Ugt,
    Pred::Uge,
];

fn pred_code(p: Pred) -> u32 {
    PREDS.iter().position(|&q| q == p).expect("pred in table") as u32
}

/// A lowering failure: the function exceeds a capacity of the 14-bit
/// packed-field encoding. The [`crate::interp::Interp`] facade falls
/// back to the engine tier when lowering fails; nothing is ever
/// rejected (or trusted) at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerError {
    /// A function has more values than slot indices can express.
    TooManySlots {
        /// Function index.
        func: usize,
        /// Its frame-slot count.
        slots: usize,
    },
    /// A function has more CFG edges than edge indices can express.
    TooManyEdges {
        /// Function index.
        func: usize,
        /// Its edge count.
        edges: usize,
    },
    /// A function needs more pooled immediates than indices can express.
    TooManyImms {
        /// Function index.
        func: usize,
        /// Its immediate-pool length.
        imms: usize,
    },
    /// The module has more functions than callee indices can express.
    TooManyFuncs {
        /// The function count.
        funcs: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = FIELD_MASK;
        match self {
            LowerError::TooManySlots { func, slots } => {
                write!(f, "function {func} has {slots} slots (max {cap})")
            }
            LowerError::TooManyEdges { func, edges } => {
                write!(f, "function {func} has {edges} CFG edges (max {})", cap + 1)
            }
            LowerError::TooManyImms { func, imms } => {
                write!(
                    f,
                    "function {func} needs {imms} pooled immediates (max {})",
                    cap + 1
                )
            }
            LowerError::TooManyFuncs { funcs } => {
                write!(f, "module has {funcs} functions (max {})", cap + 1)
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Per-word observer metadata, parallel to [`BcFunc::code`]; only read
/// when the instruction retires.
#[derive(Debug, Clone, Copy)]
struct BcMeta {
    /// Static event pc: `(function index << 32) | value index`.
    pc: u64,
    /// The instruction's own value id.
    result: ValueId,
    /// Range into [`BcFunc::operands`].
    ops_at: u32,
    ops_len: u32,
}

/// A pre-compiled CFG edge (same shape as the exec engine's).
#[derive(Debug, Clone, Copy)]
struct BcEdge {
    target: u32,
    moves_at: u32,
    moves_len: u32,
}

/// One function in bytecode form.
#[derive(Debug)]
pub struct BcFunc {
    /// Fixed-width instruction words; indices coincide with the
    /// [`ExecImage`] instruction indices of the same function.
    code: Vec<u64>,
    /// Observer metadata, parallel to `code`.
    meta: Vec<BcMeta>,
    edges: Vec<BcEdge>,
    moves: Vec<exec::PhiMove>,
    operands: Vec<ValueId>,
    /// Pooled 64-bit immediates (cast masks, alloc/gep element sizes,
    /// gep offsets) referenced by 14-bit in-word indices.
    imms: Vec<u64>,
    consts: Vec<(u32, RtVal)>,
    num_slots: u32,
    num_params: u32,
    entry_ip: u32,
}

impl BcFunc {
    /// A fresh frame register file: zeroed, constants materialised, the
    /// leading slots filled from `args`.
    fn new_regs(&self, args: &[RtVal]) -> Vec<RtVal> {
        let mut regs = vec![RtVal::Int(0); self.num_slots as usize];
        for (i, a) in args.iter().enumerate() {
            regs[i] = *a;
        }
        for &(slot, v) in &self.consts {
            regs[slot as usize] = v;
        }
        regs
    }

    /// The raw instruction words (tooling / tests).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.code
    }

    /// Number of fused superinstruction heads in this function.
    #[must_use]
    pub fn fused_count(&self) -> usize {
        self.code
            .iter()
            .filter(|&&w| (w as u8) >= op::FUSED_BASE)
            .count()
    }
}

/// A module in bytecode form: one [`BcFunc`] per function, same
/// indices as the source [`ExecImage`].
#[derive(Debug)]
pub struct BcImage {
    funcs: Vec<BcFunc>,
}

impl BcImage {
    /// Lower a decoded image to bytecode, fuse the superinstruction
    /// catalogue, and validate every encoded index (slots, edges,
    /// immediates) so the dispatch loop can run unchecked.
    ///
    /// # Errors
    /// [`LowerError`] when the image exceeds a 14-bit field capacity.
    ///
    /// # Panics
    /// If the source image violates its own validation invariants
    /// (internal consistency; cannot happen for [`ExecImage::build`]
    /// output).
    pub fn lower(image: &ExecImage) -> Result<BcImage, LowerError> {
        Self::lower_impl(image, true)
    }

    /// [`BcImage::lower`] without the superinstruction pass — every word
    /// keeps its base opcode. Used by tests and by the throughput bench
    /// to isolate the fusion contribution.
    ///
    /// # Errors
    /// [`LowerError`] when the image exceeds a 14-bit field capacity.
    pub fn lower_unfused(image: &ExecImage) -> Result<BcImage, LowerError> {
        Self::lower_impl(image, false)
    }

    fn lower_impl(image: &ExecImage, fuse: bool) -> Result<BcImage, LowerError> {
        let _span = swpf_obs::span("bc:lower");
        if image.funcs.len() > FIELD_MASK as usize + 1 {
            return Err(LowerError::TooManyFuncs {
                funcs: image.funcs.len(),
            });
        }
        let mut funcs = Vec::with_capacity(image.funcs.len());
        for (fidx, fi) in image.funcs.iter().enumerate() {
            let mut bf = lower_function(fidx, fi)?;
            validate_bc(fidx, &bf, image.funcs.len());
            if fuse {
                fuse_function(&mut bf);
            }
            funcs.push(bf);
        }
        if swpf_obs::enabled() {
            swpf_obs::count("bc.lowered_funcs", funcs.len() as u64);
            swpf_obs::count(
                "bc.lowered_words",
                funcs.iter().map(|f| f.code.len() as u64).sum(),
            );
            swpf_obs::count(
                "bc.fused_heads",
                funcs.iter().map(|f| f.fused_count() as u64).sum(),
            );
        }
        Ok(BcImage { funcs })
    }

    /// Number of lowered functions.
    #[must_use]
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// The bytecode of `func` (tooling / tests).
    #[must_use]
    pub fn func(&self, func: FuncId) -> &BcFunc {
        &self.funcs[func.index()]
    }
}

/// Lower one function. Instruction indices are preserved 1:1, so edges,
/// entry point and observer metadata copy over unchanged.
#[allow(clippy::too_many_lines)]
fn lower_function(fidx: usize, fi: &exec::FuncImage) -> Result<BcFunc, LowerError> {
    if fi.num_slots > FIELD_MASK {
        return Err(LowerError::TooManySlots {
            func: fidx,
            slots: fi.num_slots as usize,
        });
    }
    if fi.edges.len() > FIELD_MASK as usize + 1 {
        return Err(LowerError::TooManyEdges {
            func: fidx,
            edges: fi.edges.len(),
        });
    }

    let mut imms: Vec<u64> = Vec::new();
    let mut single_pool: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut pair_pool: std::collections::HashMap<(u64, u64), u32> =
        std::collections::HashMap::new();
    let mut imm_of = |imms: &mut Vec<u64>, v: u64| -> u32 {
        *single_pool.entry(v).or_insert_with(|| {
            imms.push(v);
            (imms.len() - 1) as u32
        })
    };
    let mut imm_pair_of = |imms: &mut Vec<u64>, a: u64, b: u64| -> u32 {
        *pair_pool.entry((a, b)).or_insert_with(|| {
            imms.push(a);
            imms.push(b);
            (imms.len() - 2) as u32
        })
    };

    let mut code = Vec::with_capacity(fi.code.len());
    let mut meta = Vec::with_capacity(fi.code.len());
    for d in &fi.code {
        let w = match d.op {
            Op::Bin { op, lhs, rhs, dst } => {
                let opc = match op {
                    BinOp::Add => op::ADD,
                    BinOp::Sub => op::SUB,
                    BinOp::Mul => op::MUL,
                    BinOp::Sdiv => op::SDIV,
                    BinOp::Udiv => op::UDIV,
                    BinOp::Srem => op::SREM,
                    BinOp::Urem => op::UREM,
                    BinOp::And => op::AND,
                    BinOp::Or => op::OR,
                    BinOp::Xor => op::XOR,
                    BinOp::Shl => op::SHL,
                    BinOp::Lshr => op::LSHR,
                    BinOp::Ashr => op::ASHR,
                    BinOp::Fadd => op::FADD,
                    BinOp::Fsub => op::FSUB,
                    BinOp::Fmul => op::FMUL,
                    BinOp::Fdiv => op::FDIV,
                };
                encode_word(opc, lhs, rhs, dst, 0)
            }
            Op::ICmp {
                pred,
                lhs,
                rhs,
                dst,
            } => encode_word(op::ICMP, lhs, rhs, dst, pred_code(pred)),
            Op::Select {
                cond,
                then_val,
                else_val,
                dst,
            } => encode_word(op::SELECT, cond, then_val, else_val, dst),
            Op::Mask { src, mask, dst } => {
                let idx = imm_of(&mut imms, mask as u64);
                if idx > FIELD_MASK {
                    return Err(LowerError::TooManyImms {
                        func: fidx,
                        imms: imms.len(),
                    });
                }
                encode_word(op::MASK, src, dst, idx, 0)
            }
            Op::SignExtend { src, shift, dst } => encode_word(op::SEXT, src, dst, shift, 0),
            Op::Copy { src, dst } => encode_word(op::COPY, src, dst, 0, 0),
            Op::Alloc {
                count,
                elem_size,
                dst,
            } => {
                let idx = imm_of(&mut imms, elem_size);
                if idx > FIELD_MASK {
                    return Err(LowerError::TooManyImms {
                        func: fidx,
                        imms: imms.len(),
                    });
                }
                encode_word(op::ALLOC, count, dst, idx, 0)
            }
            Op::Gep {
                base,
                index,
                elem_size,
                offset,
                dst,
            } => {
                let idx = imm_pair_of(&mut imms, elem_size, offset);
                if idx > FIELD_MASK {
                    return Err(LowerError::TooManyImms {
                        func: fidx,
                        imms: imms.len(),
                    });
                }
                encode_word(op::GEP, base, index, dst, idx)
            }
            Op::Load { addr, ty, dst, .. } => {
                let opc = match ty {
                    Type::I1 => op::LD_I1,
                    Type::I8 => op::LD_I8,
                    Type::I16 => op::LD_I16,
                    Type::I32 => op::LD_I32,
                    Type::I64 | Type::Ptr => op::LD_I64,
                    Type::F64 => op::LD_F64,
                };
                encode_word(opc, addr, dst, 0, 0)
            }
            Op::Store { addr, val, size } => {
                let opc = match size {
                    1 => op::ST_1,
                    2 => op::ST_2,
                    4 => op::ST_4,
                    8 => op::ST_8,
                    other => panic!("unsupported store width {other}"),
                };
                encode_word(opc, addr, val, 0, 0)
            }
            Op::Prefetch { addr } => encode_word(op::PREFETCH, addr, 0, 0, 0),
            Op::Call { callee, dst } => {
                if callee > FIELD_MASK {
                    return Err(LowerError::TooManyFuncs {
                        funcs: callee as usize + 1,
                    });
                }
                encode_word(op::CALL, callee, dst, 0, 0)
            }
            Op::Br { edge } => encode_word(op::BR, edge, 0, 0, 0),
            Op::CondBr {
                cond,
                then_edge,
                else_edge,
            } => encode_word(op::CBR, cond, then_edge, else_edge, 0),
            Op::Ret { val } => {
                let a = if val == exec::NO_SLOT {
                    BC_NO_SLOT
                } else {
                    val
                };
                encode_word(op::RET, a, 0, 0, 0)
            }
            Op::FallOff => encode_word(op::FALLOFF, 0, 0, 0, 0),
        };
        code.push(w);
        meta.push(BcMeta {
            pc: d.pc,
            result: d.result,
            ops_at: d.ops_at,
            ops_len: d.ops_len,
        });
    }

    Ok(BcFunc {
        code,
        meta,
        edges: fi
            .edges
            .iter()
            .map(|e| BcEdge {
                target: e.target,
                moves_at: e.moves_at,
                moves_len: e.moves_len,
            })
            .collect(),
        moves: fi.moves.clone(),
        operands: fi.operands.clone(),
        imms,
        consts: fi.consts.clone(),
        num_slots: fi.num_slots,
        num_params: fi.num_params,
        entry_ip: fi.entry_ip,
    })
}

/// The superinstruction peephole: greedy left-to-right scan replacing
/// the opcode byte of the first word of every catalogued pair. After a
/// fusion the scan skips past the pair, so a word is only ever
/// rewritten as a head and second words always keep their original
/// opcode (fused handlers re-decode them, and branches into the middle
/// of a pair execute them standalone).
fn fuse_function(bf: &mut BcFunc) {
    let mut ip = 0;
    while ip + 1 < bf.code.len() {
        let first = bf.code[ip] as u8;
        let second = bf.code[ip + 1] as u8;
        let fused = FUSE_TABLE
            .iter()
            .find(|&&(f, s, _)| f == first && s == second)
            .map(|&(_, _, z)| z);
        if let Some(z) = fused {
            bf.code[ip] = (bf.code[ip] & !0xFF) | u64::from(z);
            ip += 2;
        } else {
            ip += 1;
        }
    }
}

/// Lowering-time validation establishing the dispatch loop's safety
/// invariant: every encoded slot index is within the frame register
/// file, every edge/immediate index is within its pool, every edge
/// target and the entry point are valid code indices, and every pool
/// range is in bounds. Runs on the unfused lowering (fusion only
/// rewrites opcode bytes). Violations are internal lowering bugs, so
/// they panic rather than surface as [`LowerError`].
#[allow(clippy::too_many_lines)]
fn validate_bc(fidx: usize, bf: &BcFunc, num_funcs: usize) {
    assert_eq!(bf.code.len(), bf.meta.len(), "meta not parallel to code");
    let ns = bf.num_slots;
    let slot = |s: u32| assert!(s < ns, "fn {fidx}: slot {s} out of range ({ns} slots)");
    let edge = |e: u32| {
        assert!(
            (e as usize) < bf.edges.len(),
            "fn {fidx}: edge {e} out of range"
        );
    };
    let imm = |i: u32, span: u32| {
        assert!(
            (i as usize) + (span as usize) <= bf.imms.len(),
            "fn {fidx}: imm {i}+{span} out of pool"
        );
    };
    for (m, &w) in bf.meta.iter().zip(&bf.code) {
        assert!(
            m.ops_at as usize + m.ops_len as usize <= bf.operands.len(),
            "fn {fidx}: operand range out of pool"
        );
        let (a, b, c, d) = (fa(w), fb(w), fc(w), fd(w));
        match w as u8 {
            op::RET => assert!(
                a == BC_NO_SLOT || a < ns,
                "fn {fidx}: ret slot out of range"
            ),
            op::BR => edge(a),
            op::CBR => {
                slot(a);
                edge(b);
                edge(c);
            }
            op::ADD..=op::FDIV => {
                slot(a);
                slot(b);
                slot(c);
            }
            op::ICMP => {
                slot(a);
                slot(b);
                slot(c);
                assert!((d as usize) < PREDS.len(), "fn {fidx}: bad predicate code");
            }
            op::SELECT => {
                slot(a);
                slot(b);
                slot(c);
                slot(d);
            }
            op::MASK | op::ALLOC => {
                slot(a);
                slot(b);
                imm(c, 1);
            }
            op::SEXT => {
                slot(a);
                slot(b);
                assert!(c < 64, "fn {fidx}: sext shift out of range");
            }
            op::COPY => {
                slot(a);
                slot(b);
            }
            op::GEP => {
                slot(a);
                slot(b);
                slot(c);
                imm(d, 2);
            }
            op::LD_I1..=op::LD_F64 => {
                slot(a);
                slot(b);
            }
            op::ST_1..=op::ST_8 => {
                slot(a);
                slot(b);
            }
            op::PREFETCH => slot(a),
            op::CALL => {
                assert!((a as usize) < num_funcs, "fn {fidx}: callee out of range");
                slot(b);
            }
            op::FALLOFF => {}
            other => panic!("fn {fidx}: invalid opcode {other} in unfused code"),
        }
    }
    // Event operand ids double as caller-frame slots for call arguments.
    for v in &bf.operands {
        slot(v.0);
    }
    for e in &bf.edges {
        assert!(
            (e.target as usize) < bf.code.len(),
            "fn {fidx}: edge target OOB"
        );
        assert!(
            e.moves_at as usize + e.moves_len as usize <= bf.moves.len(),
            "fn {fidx}: move range out of pool"
        );
    }
    for mv in &bf.moves {
        slot(mv.dst);
        slot(mv.src);
    }
    assert!(
        (bf.entry_ip as usize) < bf.code.len(),
        "fn {fidx}: entry ip out of range"
    );
    assert!(bf.num_params <= ns, "fn {fidx}: more params than slots");
}

/// One activation record.
#[derive(Debug)]
struct BcFrame {
    func: u32,
    frame_id: u64,
    ip: u32,
    /// Slot in the *caller's* frame receiving our return value
    /// ([`exec::NO_SLOT`] for the top-level frame).
    ret_slot: u32,
    regs: Vec<RtVal>,
}

/// Mutable execution state, split from the image handle so stepping
/// borrows the image and the state disjointly (same split as the exec
/// engine).
#[derive(Debug)]
struct BcState {
    frames: Vec<BcFrame>,
    next_frame_id: u64,
    fuel: u64,
    retired: u64,
    max_depth: usize,
    move_buf: Vec<RtVal>,
}

/// How one dispatched instruction left the control state.
enum Flow {
    /// Stay in the current frame (ip already updated).
    Next,
    /// Push a callee frame (the call event has been emitted).
    Call {
        callee: u32,
        dst: u32,
        regs: Vec<RtVal>,
    },
    /// Pop the current frame (the ret event has been emitted).
    Ret { val: Option<RtVal> },
}

/// The bytecode execute layer: a resumable cursor over a [`BcImage`],
/// API-compatible with [`exec::Engine`].
#[derive(Debug)]
pub struct BcEngine {
    image: Option<Arc<BcImage>>,
    st: BcState,
}

impl Default for BcEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl BcEngine {
    /// An idle engine with no image and no cursor.
    #[must_use]
    pub fn new() -> Self {
        BcEngine {
            image: None,
            st: BcState {
                frames: Vec::new(),
                next_frame_id: 0,
                fuel: u64::MAX,
                retired: 0,
                max_depth: 1 << 10,
                move_buf: Vec::new(),
            },
        }
    }

    /// Total instructions retired since construction.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.st.retired
    }

    /// Limit the number of instructions that may retire before
    /// [`Trap::OutOfFuel`]; defaults to unlimited.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.st.fuel = fuel;
    }

    /// Begin executing `func` with `args`. Any previous cursor state is
    /// discarded; the retired count and frame-id sequence continue.
    ///
    /// # Panics
    /// If the argument count does not match the function's arity.
    pub fn start(&mut self, image: Arc<BcImage>, func: FuncId, args: &[RtVal]) {
        let bf = &image.funcs[func.index()];
        assert_eq!(
            args.len(),
            bf.num_params as usize,
            "argument count mismatch"
        );
        let regs = bf.new_regs(args);
        let entry_ip = bf.entry_ip;
        self.st.frames.clear();
        let id = self.st.next_frame_id;
        self.st.next_frame_id += 1;
        self.st.frames.push(BcFrame {
            func: func.0,
            frame_id: id,
            ip: entry_ip,
            ret_slot: exec::NO_SLOT,
            regs,
        });
        self.image = Some(image);
    }

    /// Execute and retire exactly one instruction (plus the phi copies
    /// of a taken branch, which retire with it). Fused heads are
    /// demoted to their first component, so stepping never retires two
    /// instructions at once — multicore interleavings and trace step
    /// boundaries match the exec engine exactly.
    ///
    /// # Errors
    /// Any [`Trap`] raised by the instruction.
    ///
    /// # Panics
    /// If called without an active cursor (no `start`, or after `Done`).
    #[inline]
    pub fn step(
        &mut self,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Step, Trap> {
        let image = self.image.as_deref().expect("step() without an image");
        self.st.step(image, mem, obs)
    }

    /// Run the current cursor to completion through the fused fast
    /// loop.
    ///
    /// # Errors
    /// Any [`Trap`] raised during execution.
    ///
    /// # Panics
    /// If called without an active cursor.
    pub fn run_to_done(
        &mut self,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Option<RtVal>, Trap> {
        let image = self.image.as_deref().expect("run without an image");
        self.st.run_to_done(image, mem, obs)
    }
}

/// Execute the instruction at the current ip. With `STEPPING`, fused
/// opcodes are demoted to their first component so exactly one
/// instruction retires; without, fused handlers execute both halves
/// back to back (checking fuel in between, so an exhausted budget
/// leaves the cursor parked on the second half exactly like the exec
/// engine would).
///
/// Slot/edge/imm/meta accesses are unchecked: `validate_bc` established
/// their bounds at lowering time.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
#[inline(always)]
fn exec_one<const STEPPING: bool>(
    image: &BcImage,
    bf: &BcFunc,
    regs: &mut [RtVal],
    ip: &mut u32,
    frame_id: u64,
    depth: usize,
    max_depth: usize,
    retired: &mut u64,
    fuel: u64,
    move_buf: &mut Vec<RtVal>,
    mem: &mut Memory,
    obs: &mut (impl ExecObserver + ?Sized),
) -> Result<Flow, Trap> {
    let cur = *ip as usize;
    debug_assert!(cur < bf.code.len(), "ip out of range");
    let w = unsafe { *bf.code.get_unchecked(cur) };
    let opc = if STEPPING { unfuse(w as u8) } else { w as u8 };

    /// Retire the instruction at code index `$i` with event kind `$k`.
    macro_rules! emit {
        ($i:expr, $k:expr) => {{
            *retired += 1;
            let m = unsafe { bf.meta.get_unchecked($i) };
            let ops = unsafe {
                bf.operands
                    .get_unchecked(m.ops_at as usize..(m.ops_at + m.ops_len) as usize)
            };
            obs.on_event(&Event {
                pc: m.pc,
                frame: frame_id,
                result: m.result,
                kind: $k,
                operands: ops,
            });
        }};
    }

    /// Apply a CFG edge: parallel phi copy, jump, phi retire events
    /// (after the copy, before the branch's own event), with the exec
    /// engine's exact fuel accounting.
    macro_rules! take_edge {
        ($e:expr) => {{
            let e = unsafe { *bf.edges.get_unchecked($e as usize) };
            let moves = unsafe {
                bf.moves
                    .get_unchecked(e.moves_at as usize..(e.moves_at + e.moves_len) as usize)
            };
            if !moves.is_empty() {
                move_buf.clear();
                move_buf.extend(moves.iter().map(|mv| rd(regs, mv.src)));
                for (mv, &v) in moves.iter().zip(move_buf.iter()) {
                    wr(regs, mv.dst, v);
                }
            }
            *ip = e.target;
            for mv in moves {
                *retired += 1;
                if *retired > fuel {
                    return Err(Trap::OutOfFuel);
                }
                let ops = [mv.incoming];
                obs.on_event(&Event {
                    pc: mv.pc,
                    frame: frame_id,
                    result: mv.result,
                    kind: EventKind::Alu,
                    operands: &ops,
                });
            }
        }};
    }

    // Micro-op bodies. Each takes its own word `$w` and code index `$i`
    // so fused handlers can compose them for both halves of a pair.
    macro_rules! bin {
        ($w:expr, $i:expr, $op:expr) => {{
            let r = eval_binary($op, rd(regs, fa($w)), rd(regs, fb($w)))?;
            wr(regs, fc($w), r);
            *ip = $i as u32 + 1;
            emit!($i, EventKind::Alu);
        }};
    }
    macro_rules! icmp {
        ($w:expr, $i:expr) => {{
            let p = PREDS[fd($w) as usize];
            let r = eval_icmp(p, rd(regs, fa($w)).as_int(), rd(regs, fb($w)).as_int());
            wr(regs, fc($w), RtVal::Int(i64::from(r)));
            *ip = $i as u32 + 1;
            emit!($i, EventKind::Alu);
        }};
    }
    macro_rules! sel {
        ($w:expr, $i:expr) => {{
            let c = rd(regs, fa($w)).as_int() != 0;
            let v = if c {
                rd(regs, fb($w))
            } else {
                rd(regs, fc($w))
            };
            wr(regs, fd($w), v);
            *ip = $i as u32 + 1;
            emit!($i, EventKind::Alu);
        }};
    }
    macro_rules! gep {
        ($w:expr, $i:expr) => {{
            let base = rd(regs, fa($w)).as_int() as u64;
            let idx = rd(regs, fb($w)).as_int();
            let at = fd($w) as usize;
            let elem = unsafe { *bf.imms.get_unchecked(at) };
            let off = unsafe { *bf.imms.get_unchecked(at + 1) };
            let addr = base
                .wrapping_add((idx as u64).wrapping_mul(elem))
                .wrapping_add(off);
            wr(regs, fc($w), RtVal::Int(addr as i64));
            *ip = $i as u32 + 1;
            emit!($i, EventKind::Alu);
        }};
    }
    macro_rules! load {
        ($w:expr, $i:expr, $ty:expr, $size:expr) => {{
            let a = rd(regs, fa($w)).as_int() as u64;
            let raw = mem.read(a, $size)?;
            wr(regs, fb($w), decode_scalar(raw, $ty));
            *ip = $i as u32 + 1;
            emit!(
                $i,
                EventKind::Load {
                    addr: a,
                    size: $size
                }
            );
        }};
    }
    macro_rules! store {
        ($w:expr, $i:expr, $size:expr) => {{
            let a = rd(regs, fa($w)).as_int() as u64;
            let v = rd(regs, fb($w));
            mem.write(a, $size, encode_scalar(v))?;
            *ip = $i as u32 + 1;
            emit!(
                $i,
                EventKind::Store {
                    addr: a,
                    size: $size
                }
            );
        }};
    }
    macro_rules! prefetch {
        ($w:expr, $i:expr) => {{
            let a = rd(regs, fa($w)).as_int() as u64;
            // Prefetches never fault: an unmapped hint is dropped.
            let valid = mem.is_valid(a, 1);
            *ip = $i as u32 + 1;
            emit!($i, EventKind::Prefetch { addr: a, valid });
        }};
    }
    macro_rules! br {
        ($w:expr, $i:expr) => {{
            take_edge!(fa($w));
            emit!($i, EventKind::Branch { taken: true });
        }};
    }
    macro_rules! cbr {
        ($w:expr, $i:expr) => {{
            let c = rd(regs, fa($w)).as_int() != 0;
            take_edge!(if c { fb($w) } else { fc($w) });
            emit!($i, EventKind::Branch { taken: c });
        }};
    }
    /// Between the halves of a fused pair: if the first half consumed
    /// the last fuel, park on the second half (the next step/iteration
    /// raises `OutOfFuel`, matching the unfused engines).
    macro_rules! fuel_gate {
        () => {{
            if *retired >= fuel {
                return Ok(Flow::Next);
            }
        }};
    }

    match opc {
        op::RET => {
            let a = fa(w);
            let rv = if a == BC_NO_SLOT {
                None
            } else {
                Some(rd(regs, a))
            };
            emit!(cur, EventKind::Ret);
            return Ok(Flow::Ret { val: rv });
        }
        op::BR => br!(w, cur),
        op::CBR => cbr!(w, cur),
        op::ADD => bin!(w, cur, BinOp::Add),
        op::SUB => bin!(w, cur, BinOp::Sub),
        op::MUL => bin!(w, cur, BinOp::Mul),
        op::SDIV => bin!(w, cur, BinOp::Sdiv),
        op::UDIV => bin!(w, cur, BinOp::Udiv),
        op::SREM => bin!(w, cur, BinOp::Srem),
        op::UREM => bin!(w, cur, BinOp::Urem),
        op::AND => bin!(w, cur, BinOp::And),
        op::OR => bin!(w, cur, BinOp::Or),
        op::XOR => bin!(w, cur, BinOp::Xor),
        op::SHL => bin!(w, cur, BinOp::Shl),
        op::LSHR => bin!(w, cur, BinOp::Lshr),
        op::ASHR => bin!(w, cur, BinOp::Ashr),
        op::FADD => bin!(w, cur, BinOp::Fadd),
        op::FSUB => bin!(w, cur, BinOp::Fsub),
        op::FMUL => bin!(w, cur, BinOp::Fmul),
        op::FDIV => bin!(w, cur, BinOp::Fdiv),
        op::ICMP => icmp!(w, cur),
        op::SELECT => sel!(w, cur),
        op::MASK => {
            let x = rd(regs, fa(w)).as_int();
            let mask = unsafe { *bf.imms.get_unchecked(fc(w) as usize) } as i64;
            wr(regs, fb(w), RtVal::Int(x & mask));
            *ip = cur as u32 + 1;
            emit!(cur, EventKind::Alu);
        }
        op::SEXT => {
            let x = rd(regs, fa(w)).as_int();
            let shift = fc(w);
            wr(regs, fb(w), RtVal::Int((x << shift) >> shift));
            *ip = cur as u32 + 1;
            emit!(cur, EventKind::Alu);
        }
        op::COPY => {
            let x = rd(regs, fa(w)).as_int();
            wr(regs, fb(w), RtVal::Int(x));
            *ip = cur as u32 + 1;
            emit!(cur, EventKind::Alu);
        }
        op::ALLOC => {
            let n = rd(regs, fa(w)).as_int();
            let elem = unsafe { *bf.imms.get_unchecked(fc(w) as usize) };
            let size = u64::try_from(n.max(0)).expect("non-negative") * elem;
            let addr = mem.alloc(size)?;
            wr(regs, fb(w), RtVal::Int(addr as i64));
            *ip = cur as u32 + 1;
            emit!(cur, EventKind::Alloc);
        }
        op::GEP => gep!(w, cur),
        op::LD_I1 => load!(w, cur, Type::I1, 1),
        op::LD_I8 => load!(w, cur, Type::I8, 1),
        op::LD_I16 => load!(w, cur, Type::I16, 2),
        op::LD_I32 => load!(w, cur, Type::I32, 4),
        op::LD_I64 => load!(w, cur, Type::I64, 8),
        op::LD_F64 => load!(w, cur, Type::F64, 8),
        op::ST_1 => store!(w, cur, 1),
        op::ST_2 => store!(w, cur, 2),
        op::ST_4 => store!(w, cur, 4),
        op::ST_8 => store!(w, cur, 8),
        op::PREFETCH => prefetch!(w, cur),
        op::CALL => {
            if depth >= max_depth {
                return Err(Trap::StackOverflow);
            }
            let callee = fa(w);
            let dst = fb(w);
            let cf = &image.funcs[callee as usize];
            let m = &bf.meta[cur];
            let args = &bf.operands[m.ops_at as usize..(m.ops_at + m.ops_len) as usize];
            let mut new_regs = vec![RtVal::Int(0); cf.num_slots as usize];
            for (k, &arg) in args.iter().enumerate() {
                new_regs[k] = rd(regs, arg.0);
            }
            for &(slot, v) in &cf.consts {
                new_regs[slot as usize] = v;
            }
            *ip = cur as u32 + 1; // resume after the call on return
            emit!(cur, EventKind::Call);
            return Ok(Flow::Call {
                callee,
                dst,
                regs: new_regs,
            });
        }
        op::FALLOFF => panic!("fell off block end"),

        // Fused superinstructions: first half from the head word (whose
        // operand fields are intact), second half from the untouched
        // next word.
        op::GEP_LD64 => {
            gep!(w, cur);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            load!(w2, cur + 1, Type::I64, 8);
        }
        op::LD64_GEP => {
            load!(w, cur, Type::I64, 8);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            gep!(w2, cur + 1);
        }
        op::ICMP_CBR => {
            icmp!(w, cur);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            cbr!(w2, cur + 1);
        }
        op::GEP_PF => {
            gep!(w, cur);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            prefetch!(w2, cur + 1);
        }
        op::ICMP_SEL => {
            icmp!(w, cur);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            sel!(w2, cur + 1);
        }
        op::LD64_ICMP => {
            load!(w, cur, Type::I64, 8);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            icmp!(w2, cur + 1);
        }
        op::SEL_GEP => {
            sel!(w, cur);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            gep!(w2, cur + 1);
        }
        op::ADD_SUB => {
            bin!(w, cur, BinOp::Add);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            bin!(w2, cur + 1, BinOp::Sub);
        }
        op::PF_ADD => {
            prefetch!(w, cur);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            bin!(w2, cur + 1, BinOp::Add);
        }
        op::LD64_MUL => {
            load!(w, cur, Type::I64, 8);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            bin!(w2, cur + 1, BinOp::Mul);
        }
        op::MUL_LSHR => {
            bin!(w, cur, BinOp::Mul);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            bin!(w2, cur + 1, BinOp::Lshr);
        }
        op::ADD_ICMP => {
            bin!(w, cur, BinOp::Add);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            icmp!(w2, cur + 1);
        }
        op::GEP_LDF64 => {
            gep!(w, cur);
            fuel_gate!();
            let w2 = unsafe { *bf.code.get_unchecked(cur + 1) };
            load!(w2, cur + 1, Type::F64, 8);
        }
        other => unreachable!("invalid opcode {other}"),
    }
    Ok(Flow::Next)
}

impl BcState {
    /// One observable step (see [`BcEngine::step`]).
    #[inline]
    fn step(
        &mut self,
        image: &BcImage,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Step, Trap> {
        if self.retired >= self.fuel {
            return Err(Trap::OutOfFuel);
        }
        let depth = self.frames.len();
        assert!(depth > 0, "step() without an active cursor");
        let frame = self.frames.last_mut().expect("non-empty");
        let bf = &image.funcs[frame.func as usize];
        let frame_id = frame.frame_id;
        let BcFrame { ip, regs, .. } = &mut *frame;
        let flow = exec_one::<true>(
            image,
            bf,
            regs.as_mut_slice(),
            ip,
            frame_id,
            depth,
            self.max_depth,
            &mut self.retired,
            self.fuel,
            &mut self.move_buf,
            mem,
            obs,
        )?;
        match flow {
            Flow::Next => Ok(Step::Continue),
            Flow::Call { callee, dst, regs } => {
                self.push_frame(image, callee, dst, regs);
                Ok(Step::Continue)
            }
            Flow::Ret { val } => Ok(self.pop_frame(val)),
        }
    }

    /// The fused fast loop: frame state (code, register file, ip) is
    /// re-acquired only on calls and returns, and fused heads dispatch
    /// once for two instructions.
    ///
    /// With `SWPF_OPCODE_STATS=1` the run is diverted up front to a
    /// separate stepping-based loop that tallies dispatched opcodes —
    /// the flag is checked once per run, before the loop, so the
    /// default fast path carries no per-instruction cost for it.
    fn run_to_done(
        &mut self,
        image: &BcImage,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Option<RtVal>, Trap> {
        if opcode_stats_enabled() {
            return self.run_to_done_counted(image, mem, obs);
        }
        'frames: loop {
            let depth = self.frames.len();
            let frame = self
                .frames
                .last_mut()
                .expect("run_to_done() without an active cursor");
            let bf = &image.funcs[frame.func as usize];
            let frame_id = frame.frame_id;
            let BcFrame { ip, regs, .. } = &mut *frame;
            let regs = regs.as_mut_slice();
            loop {
                if self.retired >= self.fuel {
                    return Err(Trap::OutOfFuel);
                }
                match exec_one::<false>(
                    image,
                    bf,
                    regs,
                    ip,
                    frame_id,
                    depth,
                    self.max_depth,
                    &mut self.retired,
                    self.fuel,
                    &mut self.move_buf,
                    mem,
                    obs,
                )? {
                    Flow::Next => {}
                    Flow::Call { callee, dst, regs } => {
                        self.push_frame(image, callee, dst, regs);
                        continue 'frames;
                    }
                    Flow::Ret { val } => match self.pop_frame(val) {
                        Step::Done(v) => return Ok(v),
                        Step::Continue => continue 'frames,
                    },
                }
            }
        }
    }

    /// The `SWPF_OPCODE_STATS=1` diagnostic loop: before every step it
    /// reads the raw opcode byte at the cursor and tallies it (a fused
    /// head tallies as the fused opcode — one dispatch), then steps.
    /// The tally flushes into `swpf-obs` counters (`bc.op.<mnemonic>`)
    /// when the run completes or traps. Stepped execution demotes fused
    /// heads, so the dispatch *behaviour* measured here differs from
    /// the fast loop only in speed, never in architectural effect.
    #[cold]
    fn run_to_done_counted(
        &mut self,
        image: &BcImage,
        mem: &mut Memory,
        obs: &mut (impl ExecObserver + ?Sized),
    ) -> Result<Option<RtVal>, Trap> {
        let mut tally = vec![0u64; 256];
        let result = loop {
            let frame = self
                .frames
                .last()
                .expect("run_to_done() without an active cursor");
            let w = image.funcs[frame.func as usize].code[frame.ip as usize];
            tally[(w as u8) as usize] += 1;
            match self.step(image, mem, obs) {
                Ok(Step::Continue) => {}
                Ok(Step::Done(v)) => break Ok(v),
                Err(t) => break Err(t),
            }
        };
        if swpf_obs::enabled() {
            for (opcode, &n) in tally.iter().enumerate() {
                if n > 0 {
                    #[allow(clippy::cast_possible_truncation)]
                    swpf_obs::count(format!("bc.op.{}", op::name(opcode as u8)), n);
                }
            }
        }
        result
    }

    fn push_frame(&mut self, image: &BcImage, callee: u32, dst: u32, regs: Vec<RtVal>) {
        let id = self.next_frame_id;
        self.next_frame_id += 1;
        self.frames.push(BcFrame {
            func: callee,
            frame_id: id,
            ip: image.funcs[callee as usize].entry_ip,
            ret_slot: dst,
            regs,
        });
    }

    fn pop_frame(&mut self, val: Option<RtVal>) -> Step {
        let finished = self.frames.pop().expect("non-empty");
        if let Some(parent) = self.frames.last_mut() {
            if let (true, Some(v)) = (finished.ret_slot != exec::NO_SLOT, val) {
                parent.regs[finished.ret_slot as usize] = v;
            }
            Step::Continue
        } else {
            Step::Done(val)
        }
    }
}

/// A decoded view of one instruction word, for tooling and the
/// round-trip tests. Decoding a *fused* word yields its first
/// component (the head word's fields are intact); the second half of
/// the pair is the next word, which kept its own opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DecodedOp {
    Ret {
        val: Option<u32>,
    },
    Br {
        edge: u32,
    },
    CondBr {
        cond: u32,
        then_edge: u32,
        else_edge: u32,
    },
    Bin {
        opcode: u8,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    ICmp {
        lhs: u32,
        rhs: u32,
        dst: u32,
        pred: u32,
    },
    Select {
        cond: u32,
        then_val: u32,
        else_val: u32,
        dst: u32,
    },
    Mask {
        src: u32,
        dst: u32,
        imm: u32,
    },
    SignExtend {
        src: u32,
        dst: u32,
        shift: u32,
    },
    Copy {
        src: u32,
        dst: u32,
    },
    Alloc {
        count: u32,
        dst: u32,
        imm: u32,
    },
    Gep {
        base: u32,
        index: u32,
        dst: u32,
        imm: u32,
    },
    Load {
        opcode: u8,
        addr: u32,
        dst: u32,
    },
    Store {
        opcode: u8,
        addr: u32,
        val: u32,
    },
    Prefetch {
        addr: u32,
    },
    Call {
        callee: u32,
        dst: u32,
    },
    FallOff,
}

impl DecodedOp {
    /// Re-encode to the (unfused) instruction word.
    #[must_use]
    pub fn encode(&self) -> u64 {
        match *self {
            DecodedOp::Ret { val } => encode_word(op::RET, val.unwrap_or(BC_NO_SLOT), 0, 0, 0),
            DecodedOp::Br { edge } => encode_word(op::BR, edge, 0, 0, 0),
            DecodedOp::CondBr {
                cond,
                then_edge,
                else_edge,
            } => encode_word(op::CBR, cond, then_edge, else_edge, 0),
            DecodedOp::Bin {
                opcode,
                lhs,
                rhs,
                dst,
            } => encode_word(opcode, lhs, rhs, dst, 0),
            DecodedOp::ICmp {
                lhs,
                rhs,
                dst,
                pred,
            } => encode_word(op::ICMP, lhs, rhs, dst, pred),
            DecodedOp::Select {
                cond,
                then_val,
                else_val,
                dst,
            } => encode_word(op::SELECT, cond, then_val, else_val, dst),
            DecodedOp::Mask { src, dst, imm } => encode_word(op::MASK, src, dst, imm, 0),
            DecodedOp::SignExtend { src, dst, shift } => encode_word(op::SEXT, src, dst, shift, 0),
            DecodedOp::Copy { src, dst } => encode_word(op::COPY, src, dst, 0, 0),
            DecodedOp::Alloc { count, dst, imm } => encode_word(op::ALLOC, count, dst, imm, 0),
            DecodedOp::Gep {
                base,
                index,
                dst,
                imm,
            } => encode_word(op::GEP, base, index, dst, imm),
            DecodedOp::Load { opcode, addr, dst } => encode_word(opcode, addr, dst, 0, 0),
            DecodedOp::Store { opcode, addr, val } => encode_word(opcode, addr, val, 0, 0),
            DecodedOp::Prefetch { addr } => encode_word(op::PREFETCH, addr, 0, 0, 0),
            DecodedOp::Call { callee, dst } => encode_word(op::CALL, callee, dst, 0, 0),
            DecodedOp::FallOff => encode_word(op::FALLOFF, 0, 0, 0, 0),
        }
    }
}

/// Decode one instruction word (fused opcodes decode as their first
/// component; see [`DecodedOp`]).
///
/// # Panics
/// On an opcode byte outside the defined space.
#[must_use]
pub fn decode_word(w: u64) -> DecodedOp {
    let (a, b, c, d) = (fa(w), fb(w), fc(w), fd(w));
    match unfuse(w as u8) {
        op::RET => DecodedOp::Ret {
            val: (a != BC_NO_SLOT).then_some(a),
        },
        op::BR => DecodedOp::Br { edge: a },
        op::CBR => DecodedOp::CondBr {
            cond: a,
            then_edge: b,
            else_edge: c,
        },
        opc @ op::ADD..=op::FDIV => DecodedOp::Bin {
            opcode: opc,
            lhs: a,
            rhs: b,
            dst: c,
        },
        op::ICMP => DecodedOp::ICmp {
            lhs: a,
            rhs: b,
            dst: c,
            pred: d,
        },
        op::SELECT => DecodedOp::Select {
            cond: a,
            then_val: b,
            else_val: c,
            dst: d,
        },
        op::MASK => DecodedOp::Mask {
            src: a,
            dst: b,
            imm: c,
        },
        op::SEXT => DecodedOp::SignExtend {
            src: a,
            dst: b,
            shift: c,
        },
        op::COPY => DecodedOp::Copy { src: a, dst: b },
        op::ALLOC => DecodedOp::Alloc {
            count: a,
            dst: b,
            imm: c,
        },
        op::GEP => DecodedOp::Gep {
            base: a,
            index: b,
            dst: c,
            imm: d,
        },
        opc @ op::LD_I1..=op::LD_F64 => DecodedOp::Load {
            opcode: opc,
            addr: a,
            dst: b,
        },
        opc @ op::ST_1..=op::ST_8 => DecodedOp::Store {
            opcode: opc,
            addr: a,
            val: b,
        },
        op::PREFETCH => DecodedOp::Prefetch { addr: a },
        op::CALL => DecodedOp::Call { callee: a, dst: b },
        op::FALLOFF => DecodedOp::FallOff,
        other => panic!("invalid opcode {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::NullObserver;
    use crate::module::Module;

    fn sum_module() -> Module {
        let mut m = Module::new("t");
        let fid = m.declare_function("sum", &[Type::Ptr, Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let (a, n) = (b.arg(0), b.arg(1));
            let entry = b.entry_block();
            let header = b.create_block("h");
            let body = b.create_block("b");
            let exit = b.create_block("x");
            let zero = b.const_i64(0);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, &[(entry, zero)]);
            let acc = b.phi(Type::I64, &[(entry, zero)]);
            let c = b.icmp(Pred::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let addr = b.gep(a, i, 8);
            let v = b.load(Type::I64, addr);
            let acc2 = b.add(acc, v);
            let one = b.const_i64(1);
            let i2 = b.add(i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to(exit);
            b.ret(Some(acc));
        }
        m
    }

    #[test]
    fn word_roundtrip_all_fields() {
        let w = encode_word(op::SELECT, 1, 2, 3, 16000);
        assert_eq!(w as u8, op::SELECT);
        assert_eq!((fa(w), fb(w), fc(w), fd(w)), (1, 2, 3, 16000));
        let dec = decode_word(w);
        assert_eq!(dec.encode(), w);
    }

    #[test]
    fn lowering_preserves_code_indices_and_roundtrips() {
        let m = sum_module();
        let image = ExecImage::build(&m);
        let bc = BcImage::lower_unfused(&image).unwrap();
        let bf = bc.func(FuncId(0));
        assert_eq!(bf.words().len(), image.code_len(FuncId(0)));
        assert_eq!(bf.fused_count(), 0);
        for &w in bf.words() {
            assert_eq!(decode_word(w).encode(), w, "word is not canonical");
        }
    }

    #[test]
    fn fusion_rewrites_heads_only() {
        let m = sum_module();
        let image = ExecImage::build(&m);
        let plain = BcImage::lower_unfused(&image).unwrap();
        let fused = BcImage::lower(&image).unwrap();
        let (p, f) = (plain.func(FuncId(0)), fused.func(FuncId(0)));
        assert_eq!(p.words().len(), f.words().len());
        assert!(f.fused_count() > 0, "loop body should fuse something");
        for (&pw, &fw) in p.words().iter().zip(f.words()) {
            // Fields never change; only head opcode bytes do.
            assert_eq!(pw >> 8, fw >> 8);
            assert_eq!(unfuse(fw as u8), pw as u8);
        }
    }

    #[test]
    fn bytecode_runs_the_sum_loop() {
        let m = sum_module();
        let image = ExecImage::build(&m);
        let bc = Arc::new(BcImage::lower(&image).unwrap());
        let mut mem = Memory::with_limit(1 << 20);
        let base = mem.alloc(10 * 8).unwrap();
        for i in 0..10u64 {
            mem.write(base + i * 8, 8, i + 1).unwrap();
        }
        let mut eng = BcEngine::new();
        eng.start(bc, FuncId(0), &[RtVal::Int(base as i64), RtVal::Int(10)]);
        let r = eng.run_to_done(&mut mem, &mut NullObserver).unwrap();
        assert_eq!(r, Some(RtVal::Int(55)));
    }

    #[test]
    fn stepped_and_fused_execution_agree() {
        let m = sum_module();
        let image = ExecImage::build(&m);
        let bc = Arc::new(BcImage::lower(&image).unwrap());
        let mut mem_a = Memory::with_limit(1 << 20);
        let base = mem_a.alloc(10 * 8).unwrap();
        for i in 0..10u64 {
            mem_a.write(base + i * 8, 8, 7 * i + 1).unwrap();
        }
        let mut mem_b = mem_a.clone();
        let args = [RtVal::Int(base as i64), RtVal::Int(10)];

        let mut fast = BcEngine::new();
        fast.start(Arc::clone(&bc), FuncId(0), &args);
        let fast_r = fast.run_to_done(&mut mem_a, &mut NullObserver).unwrap();

        let mut slow = BcEngine::new();
        slow.start(bc, FuncId(0), &args);
        let slow_r = loop {
            match slow.step(&mut mem_b, &mut NullObserver).unwrap() {
                Step::Continue => {}
                Step::Done(v) => break v,
            }
        };
        assert_eq!(fast_r, slow_r);
        assert_eq!(fast.retired(), slow.retired());
    }

    #[test]
    fn every_defined_opcode_has_a_unique_mnemonic() {
        let mut seen = std::collections::HashSet::new();
        for opc in (0..=op::FALLOFF).chain(op::FUSED_BASE..=op::GEP_LDF64) {
            let n = op::name(opc);
            assert_ne!(n, "invalid", "opcode {opc} has no mnemonic");
            assert!(seen.insert(n), "duplicate mnemonic {n}");
        }
        assert_eq!(op::name(50), "invalid");
    }

    #[test]
    fn opcode_stats_loop_matches_fast_loop_and_flushes_counters() {
        let m = sum_module();
        let image = ExecImage::build(&m);
        let bc = Arc::new(BcImage::lower(&image).unwrap());
        let mut mem_a = Memory::with_limit(1 << 20);
        let base = mem_a.alloc(10 * 8).unwrap();
        for i in 0..10u64 {
            mem_a.write(base + i * 8, 8, i + 1).unwrap();
        }
        let mut mem_b = mem_a.clone();
        let args = [RtVal::Int(base as i64), RtVal::Int(10)];

        let mut fast = BcEngine::new();
        fast.start(Arc::clone(&bc), FuncId(0), &args);
        let fast_r = fast.run_to_done(&mut mem_a, &mut NullObserver).unwrap();

        swpf_obs::enable();
        let mut counted = BcEngine::new();
        counted.start(Arc::clone(&bc), FuncId(0), &args);
        let r = counted
            .st
            .run_to_done_counted(&bc, &mut mem_b, &mut NullObserver)
            .unwrap();
        let profile = swpf_obs::snapshot();
        swpf_obs::disable();

        assert_eq!(r, fast_r);
        assert_eq!(counted.retired(), fast.retired());
        let dispatched: u64 = profile
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("bc.op."))
            .map(|(_, &v)| v)
            .sum();
        // One tally per step; phi copies of taken branches retire with
        // their branch, so dispatches never exceed retirements.
        assert!(dispatched > 0 && dispatched <= counted.retired());
        assert!(
            profile
                .counters
                .keys()
                .any(|k| k.starts_with("bc.op.") && k.contains('+')),
            "sum kernel dispatches at least one fused head"
        );
    }

    #[test]
    fn oversized_function_rejected_at_lowering() {
        let mut m = Module::new("big");
        let fid = m.declare_function("f", &[Type::I64], Type::I64);
        {
            let mut b = FunctionBuilder::new(m.function_mut(fid));
            let mut v = b.arg(0);
            for _ in 0..FIELD_MASK {
                v = b.add(v, v);
            }
            b.ret(Some(v));
        }
        let image = ExecImage::build(&m);
        assert!(matches!(
            BcImage::lower(&image),
            Err(LowerError::TooManySlots { .. })
        ));
        // The facade path degrades to the engine tier instead of
        // trusting the encoding at dispatch.
        assert!(image.bytecode().is_none());
    }

    #[test]
    fn invalid_slot_encoding_is_a_lowering_panic_not_a_dispatch_hazard() {
        // Hand-corrupt a word to reference an out-of-range slot: the
        // lowering validator must reject it before any engine sees it.
        let m = sum_module();
        let image = ExecImage::build(&m);
        let mut bc = BcImage::lower_unfused(&image).unwrap();
        let bf = &mut bc.funcs[0];
        bf.code[bf.entry_ip as usize] = encode_word(op::COPY, FIELD_MASK - 1, 0, 0, 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            validate_bc(0, &bc.funcs[0], 1);
        }));
        assert!(caught.is_err(), "corrupt slot must fail validation");
    }
}
